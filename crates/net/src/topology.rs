//! Node placement and range-based connectivity.

use serde::{Deserialize, Serialize};
use zeiot_core::error::{require_positive, ConfigError, Result};
use zeiot_core::geometry::Point2;
use zeiot_core::id::NodeId;
use zeiot_core::rng::SeedRng;

/// A static wireless sensor network layout: node positions plus an
/// undirected connectivity relation (nodes within communication range).
///
/// # Example
///
/// ```
/// # fn main() -> Result<(), zeiot_core::ConfigError> {
/// use zeiot_net::topology::Topology;
/// use zeiot_core::id::NodeId;
///
/// let topo = Topology::grid(3, 3, 1.0, 1.5)?;
/// assert_eq!(topo.len(), 9);
/// // The centre node neighbours its 4 orthogonal + 4 diagonal peers
/// // (diagonal distance √2 ≈ 1.41 < 1.5).
/// assert_eq!(topo.neighbors(NodeId::new(4)).len(), 8);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Topology {
    positions: Vec<Point2>,
    range_m: f64,
    adjacency: Vec<Vec<NodeId>>,
}

impl Topology {
    /// Builds a topology from explicit positions and a communication
    /// range.
    ///
    /// # Errors
    ///
    /// Returns an error if `positions` is empty or `range_m` is not
    /// strictly positive.
    pub fn from_positions(positions: Vec<Point2>, range_m: f64) -> Result<Self> {
        if positions.is_empty() {
            return Err(ConfigError::new("positions", "must be non-empty"));
        }
        let range_m = require_positive("range_m", range_m)?;
        let n = positions.len();
        let mut adjacency = vec![Vec::new(); n];
        for i in 0..n {
            for j in (i + 1)..n {
                if positions[i].distance(positions[j]) <= range_m {
                    adjacency[i].push(NodeId::new(j as u32));
                    adjacency[j].push(NodeId::new(i as u32));
                }
            }
        }
        Ok(Self {
            positions,
            range_m,
            adjacency,
        })
    }

    /// A regular `cols × rows` grid with `spacing_m` between neighbours.
    ///
    /// # Errors
    ///
    /// Returns an error if either dimension is zero or spacing/range are
    /// not strictly positive.
    pub fn grid(cols: usize, rows: usize, spacing_m: f64, range_m: f64) -> Result<Self> {
        if cols == 0 || rows == 0 {
            return Err(ConfigError::new("cols/rows", "must be non-zero"));
        }
        let spacing_m = require_positive("spacing_m", spacing_m)?;
        let mut positions = Vec::with_capacity(cols * rows);
        for row in 0..rows {
            for col in 0..cols {
                positions.push(Point2::new(col as f64 * spacing_m, row as f64 * spacing_m));
            }
        }
        Self::from_positions(positions, range_m)
    }

    /// Builds a topology whose connectivity respects a floor plan: a
    /// wall's attenuation is converted to the equivalent extra distance
    /// under the given path-loss exponent (`d_eff = d · 10^(A / 10n)`),
    /// and a link exists when the effective distance is within range —
    /// the "(a) 3D map and obstacle information" input of paper §III.B.
    ///
    /// # Errors
    ///
    /// Returns an error if `positions` is empty or `range_m`/`exponent`
    /// is not strictly positive.
    pub fn from_positions_with_obstacles(
        positions: Vec<Point2>,
        range_m: f64,
        obstacles: &zeiot_rf::obstacle::ObstacleMap,
        path_loss_exponent: f64,
    ) -> Result<Self> {
        if positions.is_empty() {
            return Err(ConfigError::new("positions", "must be non-empty"));
        }
        let range_m = require_positive("range_m", range_m)?;
        let exponent = require_positive("path_loss_exponent", path_loss_exponent)?;
        let n = positions.len();
        let mut adjacency = vec![Vec::new(); n];
        for i in 0..n {
            for j in (i + 1)..n {
                let d = positions[i].distance(positions[j]);
                let wall_db = obstacles.attenuation(positions[i], positions[j]).value();
                let effective = d * 10f64.powf(wall_db / (10.0 * exponent));
                if effective <= range_m {
                    adjacency[i].push(NodeId::new(j as u32));
                    adjacency[j].push(NodeId::new(i as u32));
                }
            }
        }
        Ok(Self {
            positions,
            range_m,
            adjacency,
        })
    }

    /// `n` nodes placed uniformly at random in a `width_m × height_m`
    /// rectangle.
    ///
    /// # Errors
    ///
    /// Returns an error if `n` is zero or any dimension is not strictly
    /// positive.
    pub fn random(
        n: usize,
        width_m: f64,
        height_m: f64,
        range_m: f64,
        rng: &mut SeedRng,
    ) -> Result<Self> {
        if n == 0 {
            return Err(ConfigError::new("n", "must be non-zero"));
        }
        let width_m = require_positive("width_m", width_m)?;
        let height_m = require_positive("height_m", height_m)?;
        let positions = (0..n)
            .map(|_| {
                Point2::new(
                    rng.uniform_range(0.0, width_m),
                    rng.uniform_range(0.0, height_m),
                )
            })
            .collect();
        Self::from_positions(positions, range_m)
    }

    /// Number of nodes.
    pub fn len(&self) -> usize {
        self.positions.len()
    }

    /// Whether the topology has no nodes (never true for a built one).
    pub fn is_empty(&self) -> bool {
        self.positions.is_empty()
    }

    /// The communication range.
    pub fn range_m(&self) -> f64 {
        self.range_m
    }

    /// Position of a node.
    ///
    /// # Panics
    ///
    /// Panics if the node id is out of range.
    pub fn position(&self, node: NodeId) -> Point2 {
        self.positions[node.index()]
    }

    /// All node positions, indexed by node id.
    pub fn positions(&self) -> &[Point2] {
        &self.positions
    }

    /// Neighbours of a node (within range, excluding itself).
    ///
    /// # Panics
    ///
    /// Panics if the node id is out of range.
    pub fn neighbors(&self, node: NodeId) -> &[NodeId] {
        &self.adjacency[node.index()]
    }

    /// Whether two nodes are directly connected.
    pub fn connected(&self, a: NodeId, b: NodeId) -> bool {
        self.adjacency[a.index()].contains(&b)
    }

    /// Euclidean distance between two nodes.
    pub fn distance(&self, a: NodeId, b: NodeId) -> f64 {
        self.position(a).distance(self.position(b))
    }

    /// Iterates over all node ids.
    pub fn node_ids(&self) -> impl Iterator<Item = NodeId> {
        (0..self.positions.len() as u32).map(NodeId::new)
    }

    /// Iterates over all undirected edges `(a, b)` with `a < b`.
    pub fn edges(&self) -> impl Iterator<Item = (NodeId, NodeId)> + '_ {
        self.adjacency.iter().enumerate().flat_map(|(i, nbrs)| {
            let a = NodeId::new(i as u32);
            nbrs.iter().filter(move |b| a < **b).map(move |&b| (a, b))
        })
    }

    /// Whether the network is connected (every node reachable from node
    /// 0).
    pub fn is_connected(&self) -> bool {
        let n = self.len();
        let mut seen = vec![false; n];
        let mut stack = vec![0usize];
        seen[0] = true;
        let mut visited = 1;
        while let Some(u) = stack.pop() {
            for &v in &self.adjacency[u] {
                if !seen[v.index()] {
                    seen[v.index()] = true;
                    visited += 1;
                    stack.push(v.index());
                }
            }
        }
        visited == n
    }

    /// The node whose position is nearest to `p` (ties to the lower id).
    pub fn nearest_node(&self, p: Point2) -> NodeId {
        let mut best = NodeId::new(0);
        let mut best_d = f64::INFINITY;
        for (i, pos) in self.positions.iter().enumerate() {
            let d = pos.distance_squared(p);
            if d < best_d {
                best_d = d;
                best = NodeId::new(i as u32);
            }
        }
        best
    }

    /// Removes nodes (marks them failed) and returns the induced
    /// sub-topology with the same ids but no edges to failed nodes.
    /// Used by resilience experiments (paper §V: "a part of tiny IoT
    /// devices may be broken").
    pub fn without_nodes(&self, failed: &[NodeId]) -> Self {
        let mut adjacency = self.adjacency.clone();
        for f in failed {
            adjacency[f.index()].clear();
        }
        for (i, nbrs) in adjacency.iter_mut().enumerate() {
            let _ = i;
            nbrs.retain(|n| !failed.contains(n));
        }
        Self {
            positions: self.positions.clone(),
            range_m: self.range_m,
            adjacency,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn grid_positions_and_counts() {
        let t = Topology::grid(4, 3, 2.0, 2.1).unwrap();
        assert_eq!(t.len(), 12);
        assert_eq!(t.position(NodeId::new(0)), Point2::new(0.0, 0.0));
        assert_eq!(t.position(NodeId::new(5)), Point2::new(2.0, 2.0));
    }

    #[test]
    fn grid_connectivity_orthogonal_only_with_tight_range() {
        let t = Topology::grid(3, 3, 1.0, 1.1).unwrap();
        // Corner: 2 neighbors; edge: 3; centre: 4.
        assert_eq!(t.neighbors(NodeId::new(0)).len(), 2);
        assert_eq!(t.neighbors(NodeId::new(1)).len(), 3);
        assert_eq!(t.neighbors(NodeId::new(4)).len(), 4);
    }

    #[test]
    fn connectivity_is_symmetric() {
        let mut rng = SeedRng::new(1);
        let t = Topology::random(30, 20.0, 20.0, 6.0, &mut rng).unwrap();
        for a in t.node_ids() {
            for &b in t.neighbors(a) {
                assert!(t.connected(b, a), "asymmetric link {a}–{b}");
            }
        }
    }

    #[test]
    fn edges_enumerated_once() {
        let t = Topology::grid(3, 3, 1.0, 1.1).unwrap();
        let edges: Vec<_> = t.edges().collect();
        // 3×3 grid with orthogonal links: 12 edges.
        assert_eq!(edges.len(), 12);
        for (a, b) in &edges {
            assert!(a < b);
        }
    }

    #[test]
    fn connectedness_detection() {
        let connected = Topology::grid(3, 3, 1.0, 1.1).unwrap();
        assert!(connected.is_connected());
        // Two clusters too far apart.
        let split = Topology::from_positions(
            vec![
                Point2::new(0.0, 0.0),
                Point2::new(1.0, 0.0),
                Point2::new(100.0, 0.0),
            ],
            2.0,
        )
        .unwrap();
        assert!(!split.is_connected());
    }

    #[test]
    fn nearest_node_picks_closest() {
        let t = Topology::grid(3, 3, 2.0, 2.1).unwrap();
        assert_eq!(t.nearest_node(Point2::new(0.1, 0.2)), NodeId::new(0));
        assert_eq!(t.nearest_node(Point2::new(3.9, 3.8)), NodeId::new(8));
        assert_eq!(t.nearest_node(Point2::new(2.0, 2.0)), NodeId::new(4));
    }

    #[test]
    fn without_nodes_cuts_edges_both_ways() {
        let t = Topology::grid(3, 1, 1.0, 1.1).unwrap(); // chain 0-1-2
        let cut = t.without_nodes(&[NodeId::new(1)]);
        assert!(cut.neighbors(NodeId::new(1)).is_empty());
        assert!(!cut.connected(NodeId::new(0), NodeId::new(1)));
        assert!(!cut.is_connected());
        // Original untouched.
        assert!(t.connected(NodeId::new(0), NodeId::new(1)));
    }

    #[test]
    fn degenerate_inputs_rejected() {
        assert!(Topology::from_positions(vec![], 1.0).is_err());
        assert!(Topology::grid(0, 3, 1.0, 1.0).is_err());
        assert!(Topology::grid(3, 3, 0.0, 1.0).is_err());
        assert!(Topology::grid(3, 3, 1.0, 0.0).is_err());
        let mut rng = SeedRng::new(2);
        assert!(Topology::random(0, 1.0, 1.0, 1.0, &mut rng).is_err());
    }

    #[test]
    fn obstacles_cut_links_through_walls() {
        use zeiot_rf::obstacle::{ObstacleMap, Wall};
        // Two nodes 4 m apart; a concrete wall between them.
        let positions = vec![Point2::new(0.0, 0.0), Point2::new(4.0, 0.0)];
        let wall = ObstacleMap::new(vec![Wall::new(
            Point2::new(2.0, -5.0),
            Point2::new(2.0, 5.0),
            12.0,
        )
        .unwrap()]);
        // Range 6 m, exponent 3: without the wall they connect...
        let open = Topology::from_positions_with_obstacles(
            positions.clone(),
            6.0,
            &ObstacleMap::empty(),
            3.0,
        )
        .unwrap();
        assert!(open.connected(NodeId::new(0), NodeId::new(1)));
        // ...with it, the 12 dB penalty (≈2.5× effective distance at
        // n = 3) pushes them out of range.
        let blocked = Topology::from_positions_with_obstacles(positions, 6.0, &wall, 3.0).unwrap();
        assert!(!blocked.connected(NodeId::new(0), NodeId::new(1)));
    }

    #[test]
    fn obstacle_topology_with_empty_map_matches_plain() {
        use zeiot_rf::obstacle::ObstacleMap;
        let plain = Topology::grid(4, 4, 2.0, 3.0).unwrap();
        let same = Topology::from_positions_with_obstacles(
            plain.positions().to_vec(),
            3.0,
            &ObstacleMap::empty(),
            3.0,
        )
        .unwrap();
        for a in plain.node_ids() {
            for b in plain.node_ids() {
                assert_eq!(plain.connected(a, b), same.connected(a, b));
            }
        }
    }

    #[test]
    fn four_room_office_remains_connected_through_doors() {
        use zeiot_rf::obstacle::ObstacleMap;
        // Nodes spread across a 20×20 m four-room office; drywall (4 dB)
        // shortens links through walls, doors keep rooms joined.
        let plan = ObstacleMap::four_rooms(20.0, 20.0);
        // Sensors are mounted inside rooms, not inside walls: the grid
        // pitch avoids the wall lines at x = 10 / y = 10.
        let mut positions = Vec::new();
        for row in 0..5 {
            for col in 0..5 {
                positions.push(Point2::new(2.0 + col as f64 * 3.9, 2.0 + row as f64 * 3.9));
            }
        }
        let topo = Topology::from_positions_with_obstacles(positions, 6.0, &plan, 3.0).unwrap();
        assert!(topo.is_connected(), "office mesh split by walls");
    }

    #[test]
    fn random_layout_is_within_bounds() {
        let mut rng = SeedRng::new(3);
        let t = Topology::random(50, 10.0, 5.0, 3.0, &mut rng).unwrap();
        for p in t.positions() {
            assert!((0.0..=10.0).contains(&p.x));
            assert!((0.0..=5.0).contains(&p.y));
        }
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        #[test]
        fn adjacency_matches_distance_predicate(
            seed in 0u64..1000,
            n in 2usize..25,
            range in 1.0f64..10.0,
        ) {
            let mut rng = SeedRng::new(seed);
            let t = Topology::random(n, 15.0, 15.0, range, &mut rng).unwrap();
            for a in t.node_ids() {
                for b in t.node_ids() {
                    if a == b { continue; }
                    let within = t.distance(a, b) <= range;
                    prop_assert_eq!(t.connected(a, b), within);
                }
            }
        }
    }
}
