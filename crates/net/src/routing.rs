//! Shortest-path routing over the mesh.
//!
//! MicroDeep's communication cost between two units on different nodes is
//! the number of per-hop transmissions along the route, so the assignment
//! algorithms need all-pairs hop distances and concrete paths.

use crate::topology::Topology;
use std::collections::VecDeque;
use zeiot_core::id::NodeId;

/// All-pairs shortest paths by hop count (BFS per source — all links have
/// equal cost in the mesh abstraction).
///
/// See the crate-level example.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RoutingTable {
    n: usize,
    /// `next[src][dst]` = next hop from src toward dst (usize::MAX when
    /// unreachable or src == dst).
    next: Vec<Vec<usize>>,
    /// `dist[src][dst]` = hop count (usize::MAX when unreachable).
    dist: Vec<Vec<usize>>,
}

impl RoutingTable {
    /// Computes shortest paths over `topology`.
    pub fn shortest_paths(topology: &Topology) -> Self {
        let n = topology.len();
        let mut next = vec![vec![usize::MAX; n]; n];
        let mut dist = vec![vec![usize::MAX; n]; n];
        for src in 0..n {
            // BFS from src; record parent pointers, then derive next hops.
            let mut parent = vec![usize::MAX; n];
            let mut d = vec![usize::MAX; n];
            d[src] = 0;
            let mut queue = VecDeque::new();
            queue.push_back(src);
            while let Some(u) = queue.pop_front() {
                for &v in topology.neighbors(NodeId::new(u as u32)) {
                    let v = v.index();
                    if d[v] == usize::MAX {
                        d[v] = d[u] + 1;
                        parent[v] = u;
                        queue.push_back(v);
                    }
                }
            }
            for dst in 0..n {
                dist[src][dst] = d[dst];
                if dst == src || d[dst] == usize::MAX {
                    continue;
                }
                // Walk back from dst to the first hop after src.
                let mut cur = dst;
                while parent[cur] != src {
                    cur = parent[cur];
                }
                next[src][dst] = cur;
            }
        }
        Self { n, next, dist }
    }

    /// Hop distance from `src` to `dst`, `None` when unreachable.
    ///
    /// # Panics
    ///
    /// Panics if either id is out of range.
    pub fn hop_distance(&self, src: NodeId, dst: NodeId) -> Option<usize> {
        let d = self.dist[src.index()][dst.index()];
        (d != usize::MAX).then_some(d)
    }

    /// The full path from `src` to `dst` inclusive, `None` when
    /// unreachable.
    ///
    /// # Panics
    ///
    /// Panics if either id is out of range.
    pub fn path(&self, src: NodeId, dst: NodeId) -> Option<Vec<NodeId>> {
        if src == dst {
            return Some(vec![src]);
        }
        self.hop_distance(src, dst)?;
        let mut path = vec![src];
        let mut cur = src.index();
        while cur != dst.index() {
            cur = self.next[cur][dst.index()];
            debug_assert!(cur != usize::MAX, "broken next-hop chain");
            path.push(NodeId::new(cur as u32));
        }
        Some(path)
    }

    /// Mean hop distance over all connected ordered pairs (a network
    /// compactness measure used in assignment quality reports).
    pub fn mean_hop_distance(&self) -> f64 {
        let mut total = 0usize;
        let mut count = 0usize;
        for s in 0..self.n {
            for d in 0..self.n {
                if s != d && self.dist[s][d] != usize::MAX {
                    total += self.dist[s][d];
                    count += 1;
                }
            }
        }
        if count == 0 {
            0.0
        } else {
            total as f64 / count as f64
        }
    }

    /// The network diameter in hops (`None` if disconnected).
    pub fn diameter(&self) -> Option<usize> {
        let mut max = 0;
        for s in 0..self.n {
            for d in 0..self.n {
                if s == d {
                    continue;
                }
                if self.dist[s][d] == usize::MAX {
                    return None;
                }
                max = max.max(self.dist[s][d]);
            }
        }
        Some(max)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use zeiot_core::geometry::Point2;

    fn chain(n: usize) -> Topology {
        let positions = (0..n).map(|i| Point2::new(i as f64, 0.0)).collect();
        Topology::from_positions(positions, 1.1).unwrap()
    }

    #[test]
    fn chain_distances() {
        let routes = RoutingTable::shortest_paths(&chain(5));
        assert_eq!(routes.hop_distance(NodeId::new(0), NodeId::new(4)), Some(4));
        assert_eq!(routes.hop_distance(NodeId::new(2), NodeId::new(2)), Some(0));
    }

    #[test]
    fn chain_path_is_sequential() {
        let routes = RoutingTable::shortest_paths(&chain(4));
        let path = routes.path(NodeId::new(0), NodeId::new(3)).unwrap();
        let expect: Vec<NodeId> = (0..4).map(NodeId::new).collect();
        assert_eq!(path, expect);
    }

    #[test]
    fn self_path_is_singleton() {
        let routes = RoutingTable::shortest_paths(&chain(3));
        assert_eq!(
            routes.path(NodeId::new(1), NodeId::new(1)),
            Some(vec![NodeId::new(1)])
        );
    }

    #[test]
    fn grid_diagonal_distance() {
        let topo = Topology::grid(5, 5, 1.0, 1.1).unwrap(); // orthogonal links
        let routes = RoutingTable::shortest_paths(&topo);
        // Manhattan distance in an orthogonal grid: 4 + 4 = 8.
        assert_eq!(
            routes.hop_distance(NodeId::new(0), NodeId::new(24)),
            Some(8)
        );
        assert_eq!(routes.diameter(), Some(8));
    }

    #[test]
    fn disconnected_pairs_are_none() {
        let topo =
            Topology::from_positions(vec![Point2::new(0.0, 0.0), Point2::new(100.0, 0.0)], 1.0)
                .unwrap();
        let routes = RoutingTable::shortest_paths(&topo);
        assert_eq!(routes.hop_distance(NodeId::new(0), NodeId::new(1)), None);
        assert_eq!(routes.path(NodeId::new(0), NodeId::new(1)), None);
        assert_eq!(routes.diameter(), None);
    }

    #[test]
    fn paths_are_consistent_with_distances() {
        let mut rng = zeiot_core::rng::SeedRng::new(9);
        let topo = crate::topology::Topology::random(25, 12.0, 12.0, 4.0, &mut rng).unwrap();
        let routes = RoutingTable::shortest_paths(&topo);
        for a in topo.node_ids() {
            for b in topo.node_ids() {
                match routes.path(a, b) {
                    Some(p) => {
                        assert_eq!(p.len() - 1, routes.hop_distance(a, b).unwrap());
                        // Every consecutive pair is an actual link.
                        for w in p.windows(2) {
                            assert!(topo.connected(w[0], w[1]) || w[0] == w[1]);
                        }
                    }
                    None => assert_eq!(routes.hop_distance(a, b), None),
                }
            }
        }
    }

    #[test]
    fn mean_hop_distance_of_chain() {
        // Chain of 3: distances 1,2,1,1,2,1 → mean 8/6.
        let routes = RoutingTable::shortest_paths(&chain(3));
        assert!((routes.mean_hop_distance() - 8.0 / 6.0).abs() < 1e-12);
    }
}
