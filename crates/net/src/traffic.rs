//! Per-node communication-cost accounting.
//!
//! The paper's Fig. 10 plots "communication cost of sensor node" per node
//! and reports the *maximum* (360 for the optimal-parameter CNN, 210 for
//! the heuristic assignment). Cost is counted in message-units: one unit
//! per value a node transmits, with relays charged to every forwarding
//! node along the route — equalizing this maximum is MicroDeep's goal,
//! because the hottest node drains its harvested energy first.

use crate::routing::RoutingTable;
use serde::{Deserialize, Serialize};
use zeiot_core::id::NodeId;

/// Accumulates per-node transmit/receive/relay counts.
///
/// # Example
///
/// ```
/// # fn main() -> Result<(), zeiot_core::ConfigError> {
/// use zeiot_net::{Topology, RoutingTable, TrafficLedger};
/// use zeiot_core::id::NodeId;
///
/// let topo = Topology::grid(3, 1, 1.0, 1.1)?; // chain 0-1-2
/// let routes = RoutingTable::shortest_paths(&topo);
/// let mut ledger = TrafficLedger::new(topo.len());
/// ledger.send(&routes, NodeId::new(0), NodeId::new(2), 1);
/// // Node 0 transmits, node 1 relays (receives + transmits), node 2 receives.
/// assert_eq!(ledger.tx(NodeId::new(0)), 1);
/// assert_eq!(ledger.tx(NodeId::new(1)), 1);
/// assert_eq!(ledger.rx(NodeId::new(2)), 1);
/// assert_eq!(ledger.max_cost(), 2); // node 1: 1 rx + 1 tx
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct TrafficLedger {
    tx: Vec<u64>,
    rx: Vec<u64>,
}

impl TrafficLedger {
    /// Creates a ledger for `n` nodes.
    ///
    /// # Panics
    ///
    /// Panics if `n` is zero.
    pub fn new(n: usize) -> Self {
        assert!(n > 0, "need at least one node");
        Self {
            tx: vec![0; n],
            rx: vec![0; n],
        }
    }

    /// Number of nodes tracked.
    pub fn len(&self) -> usize {
        self.tx.len()
    }

    /// Whether the ledger tracks no nodes (never true).
    pub fn is_empty(&self) -> bool {
        self.tx.is_empty()
    }

    /// Records a `units`-message transfer from `src` to `dst` along the
    /// shortest path, charging each hop's transmitter and receiver.
    /// Local delivery (`src == dst`) is free. Returns the number of hops
    /// used, or `None` when `dst` is unreachable (nothing is charged).
    pub fn send(
        &mut self,
        routes: &RoutingTable,
        src: NodeId,
        dst: NodeId,
        units: u64,
    ) -> Option<usize> {
        if src == dst {
            return Some(0);
        }
        let path = routes.path(src, dst)?;
        for hop in path.windows(2) {
            self.tx[hop[0].index()] += units;
            self.rx[hop[1].index()] += units;
        }
        Some(path.len() - 1)
    }

    /// Adds raw transmit/receive units to a node's counters, for merging
    /// ledgers or importing externally computed traffic.
    pub fn add_raw(&mut self, node: NodeId, tx: u64, rx: u64) {
        self.tx[node.index()] += tx;
        self.rx[node.index()] += rx;
    }

    /// Records a single-hop broadcast from `src` heard by `receivers`.
    pub fn broadcast(&mut self, src: NodeId, receivers: &[NodeId], units: u64) {
        self.tx[src.index()] += units;
        for r in receivers {
            self.rx[r.index()] += units;
        }
    }

    /// Units transmitted by a node (including relays).
    pub fn tx(&self, node: NodeId) -> u64 {
        self.tx[node.index()]
    }

    /// Units received by a node (including relayed traffic).
    pub fn rx(&self, node: NodeId) -> u64 {
        self.rx[node.index()]
    }

    /// Total communication cost of a node: transmissions + receptions
    /// (both cost energy on a sensor radio).
    pub fn cost(&self, node: NodeId) -> u64 {
        self.tx[node.index()] + self.rx[node.index()]
    }

    /// Per-node costs, indexed by node id — the Fig. 10 bar chart.
    pub fn costs(&self) -> Vec<u64> {
        (0..self.tx.len())
            .map(|i| self.tx[i] + self.rx[i])
            .collect()
    }

    /// The maximum per-node cost — the paper's headline metric.
    pub fn max_cost(&self) -> u64 {
        self.costs().into_iter().max().unwrap_or(0)
    }

    /// Total cost across all nodes.
    pub fn total_cost(&self) -> u64 {
        self.tx.iter().sum::<u64>() + self.rx.iter().sum::<u64>()
    }

    /// Mean per-node cost.
    pub fn mean_cost(&self) -> f64 {
        self.total_cost() as f64 / self.tx.len() as f64
    }

    /// Resets all counters.
    pub fn clear(&mut self) {
        self.tx.fill(0);
        self.rx.fill(0);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::topology::Topology;
    use zeiot_core::geometry::Point2;

    fn chain_routes(n: usize) -> (Topology, RoutingTable) {
        let positions = (0..n).map(|i| Point2::new(i as f64, 0.0)).collect();
        let topo = Topology::from_positions(positions, 1.1).unwrap();
        let routes = RoutingTable::shortest_paths(&topo);
        (topo, routes)
    }

    #[test]
    fn single_hop_charges_both_ends() {
        let (_, routes) = chain_routes(2);
        let mut ledger = TrafficLedger::new(2);
        let hops = ledger.send(&routes, NodeId::new(0), NodeId::new(1), 3);
        assert_eq!(hops, Some(1));
        assert_eq!(ledger.tx(NodeId::new(0)), 3);
        assert_eq!(ledger.rx(NodeId::new(1)), 3);
        assert_eq!(ledger.total_cost(), 6);
    }

    #[test]
    fn relay_nodes_pay_twice() {
        let (_, routes) = chain_routes(4);
        let mut ledger = TrafficLedger::new(4);
        ledger.send(&routes, NodeId::new(0), NodeId::new(3), 1);
        // Middle nodes 1 and 2 both rx and tx.
        assert_eq!(ledger.cost(NodeId::new(1)), 2);
        assert_eq!(ledger.cost(NodeId::new(2)), 2);
        assert_eq!(ledger.cost(NodeId::new(0)), 1);
        assert_eq!(ledger.cost(NodeId::new(3)), 1);
        assert_eq!(ledger.max_cost(), 2);
    }

    #[test]
    fn local_delivery_is_free() {
        let (_, routes) = chain_routes(3);
        let mut ledger = TrafficLedger::new(3);
        assert_eq!(
            ledger.send(&routes, NodeId::new(1), NodeId::new(1), 10),
            Some(0)
        );
        assert_eq!(ledger.total_cost(), 0);
    }

    #[test]
    fn unreachable_destination_charges_nothing() {
        let topo =
            Topology::from_positions(vec![Point2::new(0.0, 0.0), Point2::new(100.0, 0.0)], 1.0)
                .unwrap();
        let routes = RoutingTable::shortest_paths(&topo);
        let mut ledger = TrafficLedger::new(2);
        assert_eq!(
            ledger.send(&routes, NodeId::new(0), NodeId::new(1), 5),
            None
        );
        assert_eq!(ledger.total_cost(), 0);
    }

    #[test]
    fn broadcast_charges_all_receivers() {
        let mut ledger = TrafficLedger::new(4);
        ledger.broadcast(
            NodeId::new(0),
            &[NodeId::new(1), NodeId::new(2), NodeId::new(3)],
            2,
        );
        assert_eq!(ledger.tx(NodeId::new(0)), 2);
        for i in 1..4 {
            assert_eq!(ledger.rx(NodeId::new(i)), 2);
        }
    }

    #[test]
    fn costs_vector_matches_individual_queries() {
        let (_, routes) = chain_routes(4);
        let mut ledger = TrafficLedger::new(4);
        ledger.send(&routes, NodeId::new(0), NodeId::new(3), 1);
        ledger.send(&routes, NodeId::new(3), NodeId::new(1), 2);
        let costs = ledger.costs();
        for (i, &c) in costs.iter().enumerate() {
            assert_eq!(c, ledger.cost(NodeId::new(i as u32)));
        }
        assert_eq!(ledger.max_cost(), *costs.iter().max().unwrap());
        let mean = ledger.mean_cost();
        assert!((mean - ledger.total_cost() as f64 / 4.0).abs() < 1e-12);
    }

    #[test]
    fn clear_resets() {
        let (_, routes) = chain_routes(2);
        let mut ledger = TrafficLedger::new(2);
        ledger.send(&routes, NodeId::new(0), NodeId::new(1), 1);
        ledger.clear();
        assert_eq!(ledger.total_cost(), 0);
        assert_eq!(ledger.max_cost(), 0);
    }
}
