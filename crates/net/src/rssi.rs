//! RSSI sampling over the mesh.
//!
//! Ref \[66\] measures two RSSI kinds on an already-deployed 802.15.4 WSN:
//!
//! * **inter-node RSSI** — the strength at which node *j* hears node
//!   *i*'s transmission; people standing between the nodes attenuate it;
//! * **surrounding RSSI** — ambient 2.4 GHz energy a node hears when no
//!   sensor node transmits; each personal device (phone) in the room
//!   raises it.
//!
//! This module synthesizes both from the topology, an RF link budget,
//! body shadowing, and the positions of people/devices — the simulation
//! substrate standing in for the paper's deployed laboratory testbed.

use crate::topology::Topology;
use zeiot_core::error::Result;
use zeiot_core::geometry::Point2;
use zeiot_core::id::NodeId;
use zeiot_core::rng::SeedRng;
use zeiot_core::units::{Dbm, Decibel, Hertz};
use zeiot_rf::body::BodyShadowing;
use zeiot_rf::link::LinkBudget;
use zeiot_rf::pathloss::{LogDistance, PathLoss};

/// Synthesizes inter-node and surrounding RSSI for a WSN in a room with
/// people.
///
/// # Example
///
/// ```
/// # fn main() -> Result<(), zeiot_core::ConfigError> {
/// use zeiot_net::rssi::RssiSampler;
/// use zeiot_net::topology::Topology;
/// use zeiot_core::geometry::Point2;
/// use zeiot_core::rng::SeedRng;
/// use zeiot_core::id::NodeId;
///
/// let topo = Topology::grid(2, 1, 5.0, 6.0)?;
/// let sampler = RssiSampler::ieee802154(topo)?;
/// let mut rng = SeedRng::new(1);
/// let empty = sampler.inter_node_rssi(&[], &mut rng);
/// let person = vec![Point2::new(2.5, 0.0)]; // standing on the link
/// let mut rng = SeedRng::new(1);
/// let blocked = sampler.inter_node_rssi(&person, &mut rng);
/// let a = empty[0][1].unwrap();
/// let b = blocked[0][1].unwrap();
/// assert!(b < a); // the body attenuates
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct RssiSampler {
    topology: Topology,
    budget: LinkBudget<LogDistance>,
    body: BodyShadowing,
    noise_sigma_db: f64,
    ambient_floor_dbm: f64,
    device_tx_dbm: f64,
}

impl RssiSampler {
    /// Creates a sampler with an 802.15.4-typical profile: 0 dBm transmit
    /// power, indoor log-distance loss, default body shadowing, 2 dB
    /// measurement noise, −95 dBm ambient floor, phones at 0 dBm.
    ///
    /// # Errors
    ///
    /// Propagates construction errors from the RF models (none occur for
    /// these constants).
    pub fn ieee802154(topology: Topology) -> Result<Self> {
        let budget = LinkBudget::builder()
            .tx_power(Dbm::new(0.0))
            .frequency(Hertz::from_ghz(2.4))
            .path_loss(LogDistance::indoor_2_4ghz()?)
            .build()?;
        Ok(Self {
            topology,
            budget,
            body: BodyShadowing::default_2_4ghz()?,
            noise_sigma_db: 2.0,
            ambient_floor_dbm: -95.0,
            device_tx_dbm: 0.0,
        })
    }

    /// Overrides the measurement-noise standard deviation (dB).
    ///
    /// # Errors
    ///
    /// Returns an error if `sigma_db` is negative.
    pub fn with_noise_sigma(mut self, sigma_db: f64) -> Result<Self> {
        zeiot_core::error::require_non_negative("sigma_db", sigma_db)?;
        self.noise_sigma_db = sigma_db;
        Ok(self)
    }

    /// The underlying topology.
    pub fn topology(&self) -> &Topology {
        &self.topology
    }

    /// Samples the inter-node RSSI matrix: entry `[i][j]` is the RSSI (in
    /// dBm) at node `j` of node `i`'s transmission, `None` when the nodes
    /// are out of range. People between a pair attenuate that pair's
    /// entries.
    pub fn inter_node_rssi(&self, people: &[Point2], rng: &mut SeedRng) -> Vec<Vec<Option<f64>>> {
        let n = self.topology.len();
        let mut matrix = vec![vec![None; n]; n];
        for (i, row) in matrix.iter_mut().enumerate() {
            let a = NodeId::new(i as u32);
            for &b in self.topology.neighbors(a) {
                let pa = self.topology.position(a);
                let pb = self.topology.position(b);
                let base = self.budget.received_power(pa.distance(pb));
                let shadow = self.body.attenuation(pa, pb, people);
                let noise = Decibel::new(rng.normal_with(0.0, self.noise_sigma_db));
                let rssi = base - shadow + noise;
                row[b.index()] = Some(rssi.value());
            }
        }
        matrix
    }

    /// Samples the surrounding RSSI per node: the ambient floor plus the
    /// aggregate power of personal devices at `device_positions`, each
    /// transmitting at the configured device power with intermittent
    /// activity `duty` in `[0, 1]`.
    ///
    /// # Panics
    ///
    /// Panics if `duty` is outside `[0, 1]`.
    pub fn surrounding_rssi(
        &self,
        device_positions: &[Point2],
        duty: f64,
        rng: &mut SeedRng,
    ) -> Vec<f64> {
        assert!((0.0..=1.0).contains(&duty), "duty must be in [0,1]");
        let n = self.topology.len();
        let mut out = Vec::with_capacity(n);
        for i in 0..n {
            let node_pos = self.topology.position(NodeId::new(i as u32));
            // Sum device contributions in linear milliwatts over the floor.
            let mut total_mw = Dbm::new(self.ambient_floor_dbm).to_milliwatt().value();
            for dev in device_positions {
                if !rng.chance(duty) {
                    continue;
                }
                let d = node_pos.distance(*dev).max(0.3);
                let rx = Dbm::new(self.device_tx_dbm) - self.budget.path_loss_model().loss(d);
                total_mw += rx.to_milliwatt().value();
            }
            let noise = rng.normal_with(0.0, self.noise_sigma_db);
            out.push(10.0 * total_mw.log10() + noise);
        }
        out
    }

    /// Mean inter-node RSSI over all connected ordered pairs of one
    /// sampled matrix; `None` when the topology has no links.
    pub fn mean_inter_node(matrix: &[Vec<Option<f64>>]) -> Option<f64> {
        let values: Vec<f64> = matrix
            .iter()
            .flat_map(|row| row.iter().flatten().copied())
            .collect();
        if values.is_empty() {
            None
        } else {
            Some(values.iter().sum::<f64>() / values.len() as f64)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lab() -> RssiSampler {
        // 4×4 grid, 3 m spacing — roughly a laboratory deployment.
        let topo = Topology::grid(4, 4, 3.0, 4.5).unwrap();
        RssiSampler::ieee802154(topo).unwrap()
    }

    #[test]
    fn matrix_respects_connectivity() {
        let s = lab();
        let mut rng = SeedRng::new(1);
        let m = s.inter_node_rssi(&[], &mut rng);
        for (i, row) in m.iter().enumerate() {
            for (j, entry) in row.iter().enumerate() {
                let connected = s
                    .topology()
                    .connected(NodeId::new(i as u32), NodeId::new(j as u32));
                assert_eq!(entry.is_some(), connected, "pair {i},{j}");
            }
        }
    }

    #[test]
    fn crowding_lowers_mean_inter_node_rssi() {
        let s = lab().with_noise_sigma(0.5).unwrap();
        let mut rng = SeedRng::new(2);
        let empty = RssiSampler::mean_inter_node(&s.inter_node_rssi(&[], &mut rng)).unwrap();
        // 20 people scattered across the room.
        let mut people = Vec::new();
        let mut prng = SeedRng::new(3);
        for _ in 0..20 {
            people.push(Point2::new(
                prng.uniform_range(0.0, 9.0),
                prng.uniform_range(0.0, 9.0),
            ));
        }
        let crowded = RssiSampler::mean_inter_node(&s.inter_node_rssi(&people, &mut rng)).unwrap();
        assert!(crowded < empty, "crowded={crowded} empty={empty}");
    }

    #[test]
    fn more_devices_raise_surrounding_rssi() {
        let s = lab().with_noise_sigma(0.5).unwrap();
        let mut rng = SeedRng::new(4);
        let quiet = s.surrounding_rssi(&[], 1.0, &mut rng);
        let mut devices = Vec::new();
        let mut prng = SeedRng::new(5);
        for _ in 0..15 {
            devices.push(Point2::new(
                prng.uniform_range(0.0, 9.0),
                prng.uniform_range(0.0, 9.0),
            ));
        }
        let busy = s.surrounding_rssi(&devices, 1.0, &mut rng);
        let quiet_mean: f64 = quiet.iter().sum::<f64>() / quiet.len() as f64;
        let busy_mean: f64 = busy.iter().sum::<f64>() / busy.len() as f64;
        assert!(
            busy_mean > quiet_mean + 3.0,
            "busy={busy_mean} quiet={quiet_mean}"
        );
    }

    #[test]
    fn zero_duty_devices_are_silent() {
        let s = lab().with_noise_sigma(0.0).unwrap();
        let mut rng = SeedRng::new(6);
        let devices = vec![Point2::new(4.0, 4.0)];
        let silent = s.surrounding_rssi(&devices, 0.0, &mut rng);
        for v in silent {
            assert!((v - (-95.0)).abs() < 0.5, "v={v}");
        }
    }

    #[test]
    fn noise_sigma_zero_is_deterministic_given_people() {
        let s = lab().with_noise_sigma(0.0).unwrap();
        let mut r1 = SeedRng::new(7);
        let mut r2 = SeedRng::new(8);
        let a = s.inter_node_rssi(&[], &mut r1);
        let b = s.inter_node_rssi(&[], &mut r2);
        assert_eq!(a, b);
    }

    #[test]
    fn mean_of_empty_matrix_is_none() {
        let topo =
            Topology::from_positions(vec![Point2::new(0.0, 0.0), Point2::new(100.0, 0.0)], 1.0)
                .unwrap();
        let s = RssiSampler::ieee802154(topo).unwrap();
        let mut rng = SeedRng::new(9);
        let m = s.inter_node_rssi(&[], &mut rng);
        assert!(RssiSampler::mean_inter_node(&m).is_none());
    }

    #[test]
    fn negative_noise_sigma_rejected() {
        let r = lab().with_noise_sigma(-1.0);
        assert!(r.is_err());
    }
}
