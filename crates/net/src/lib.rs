//! # zeiot-net
//!
//! The wireless-sensor-network substrate MicroDeep runs on.
//!
//! The paper (§IV.C) installs sensor nodes "in 2D (or 3D) space ... close
//! to each other to form a mesh-like network" and assigns CNN units to
//! them; every cross-node data dependency costs radio messages, possibly
//! over multiple hops. This crate provides:
//!
//! - [`topology`] — node placement (grids, random layouts) and
//!   range-based connectivity;
//! - [`routing`] — shortest-path routes and hop-distance matrices
//!   (Dijkstra over link costs);
//! - [`traffic`] — per-node communication-cost accounting, the metric of
//!   the paper's Fig. 10;
//! - [`flooding`] — Choco-style synchronized flooding rounds (ref \[66\])
//!   with the two RSSI kinds (inter-node and surrounding) used for
//!   crowd counting;
//! - [`rssi`] — RSSI sampling over links with body shadowing, feeding the
//!   wireless-sensing estimators.
//!
//! # Example: a 5×5 mesh and a multi-hop message
//!
//! ```
//! # fn main() -> Result<(), zeiot_core::ConfigError> {
//! use zeiot_net::topology::Topology;
//! use zeiot_net::routing::RoutingTable;
//! use zeiot_core::id::NodeId;
//!
//! let topo = Topology::grid(5, 5, 2.0, 2.9)?; // 2 m spacing, 2.9 m range
//! let routes = RoutingTable::shortest_paths(&topo);
//! let path = routes.path(NodeId::new(0), NodeId::new(24)).unwrap();
//! assert_eq!(path.first(), Some(&NodeId::new(0)));
//! assert_eq!(path.last(), Some(&NodeId::new(24)));
//! // Diagonal links (2√2 ≈ 2.83 m < 2.9 m) make the diagonal 4 hops.
//! assert_eq!(path.len() - 1, 4);
//! # Ok(())
//! # }
//! ```

pub mod flooding;
pub mod routing;
pub mod rssi;
pub mod topology;
pub mod traffic;

pub use routing::RoutingTable;
pub use topology::Topology;
pub use traffic::TrafficLedger;
