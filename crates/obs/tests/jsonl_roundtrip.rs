//! JSONL hardening: round-trip losslessness for every record kind and
//! typed (non-panicking) errors on truncated or garbage lines.

use proptest::prelude::*;
use zeiot_core::id::{DeviceId, NodeId};
use zeiot_core::rng::splitmix64;
use zeiot_core::time::SimTime;
use zeiot_obs::jsonl::{from_jsonl, records, to_jsonl};
use zeiot_obs::{Label, Recorder, Severity, Snapshot};

/// A deterministic snapshot exercising **all five** record kinds
/// (counter, gauge, histogram, series point, trace event) with values
/// derived from `seed`.
fn synth_snapshot(seed: u64, labels: u32, points: u64) -> Snapshot {
    let mut rec = Recorder::new();
    for i in 0..labels {
        let h = splitmix64(seed ^ u64::from(i));
        let label = match h % 4 {
            0 => Label::Global,
            1 => Label::node(NodeId::new(i)),
            2 => Label::device(DeviceId::new(i)),
            _ => Label::part(format!("part-{i}")),
        };
        rec.add("net.tx", label.clone(), h % 100_000);
        rec.set_gauge("drift", label.clone(), (h % 4093) as f64 / 4093.0);
        for k in 0..points {
            let v = splitmix64(h ^ k);
            rec.observe("serve.latency", label.clone(), (v % 10_000) as f64 / 1e4);
            // Globally monotone clock: labels can collide across `i`,
            // and series are append-only in time order.
            rec.sample(
                "volts",
                label.clone(),
                SimTime::from_nanos((u64::from(i) * points + k) * 1_000),
                (v % 500) as f64 / 100.0,
            );
        }
        let severity = match h % 4 {
            0 => Severity::Debug,
            1 => Severity::Info,
            2 => Severity::Warn,
            _ => Severity::Error,
        };
        // Trace buffers enforce time order; index the clock by `i`.
        rec.trace(
            SimTime::from_nanos(u64::from(i) * 1_000),
            severity,
            label,
            format!("event {i} ({h})"),
        );
    }
    rec.snapshot()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// `from_jsonl(to_jsonl(s))` is lossless for every record kind.
    #[test]
    fn round_trip_is_lossless(seed in 0u64..100_000, labels in 1u32..6, points in 1u64..6) {
        let snapshot = synth_snapshot(seed, labels, points);
        let text = to_jsonl(&snapshot);
        let back = from_jsonl(&text).expect("own dump parses");
        prop_assert_eq!(back, records(&snapshot));
        // And the re-serialization is byte-identical (stable export).
        prop_assert_eq!(to_jsonl(&snapshot), text);
    }

    /// Truncating the dump mid-line yields a typed error naming the cut
    /// line — never a panic, never silent data loss.
    #[test]
    fn truncated_dump_is_a_typed_error(
        seed in 0u64..100_000,
        labels in 1u32..4,
        cut in 1usize..40,
    ) {
        let text = to_jsonl(&synth_snapshot(seed, labels, 2));
        let last = text.lines().count();
        let last_line = text.lines().last().expect("non-empty dump");
        // Cut somewhere strictly inside the final line (on a char
        // boundary; the dump is ASCII).
        let keep = cut.min(last_line.len().saturating_sub(1)).max(1);
        let truncated = format!(
            "{}{}",
            &text[..text.len() - last_line.len() - 1],
            &last_line[..keep]
        );
        let err = from_jsonl(&truncated).expect_err("truncated line must fail");
        prop_assert_eq!(err.line(), last);
        prop_assert!(!err.message().is_empty());
    }

    /// A garbage line anywhere is reported with its 1-based number.
    #[test]
    fn garbage_line_is_located(seed in 0u64..100_000, labels in 1u32..4) {
        let good = to_jsonl(&synth_snapshot(seed, labels, 1));
        let n = good.lines().count();
        let text = format!("{good}!!not json!!\n");
        let err = from_jsonl(&text).expect_err("garbage must fail");
        prop_assert_eq!(err.line(), n + 1);
    }
}

#[test]
fn unknown_record_kind_is_a_typed_error() {
    let err = from_jsonl("{\"Mystery\":{\"x\":1}}\n").expect_err("unknown kind");
    assert_eq!(err.line(), 1);
}
