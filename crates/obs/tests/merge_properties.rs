//! Property coverage for [`Snapshot::merge_in_order`] — the primitive
//! the parallel sweep layer leans on for thread-invariant metric
//! merging.
//!
//! Pinned properties:
//!
//! * **empty identity** — merging no snapshots yields the default
//!   snapshot, and empty snapshots interleaved anywhere are no-ops;
//! * **disjoint label sets** — entries from points that touch different
//!   `(name, label)` keys all survive, totals are conserved, and the
//!   merged entry lists are sorted;
//! * **histogram merge commutativity** — for key-disjoint points the
//!   in-order merge is order-independent (`a ⊕ b == b ⊕ a`), histogram
//!   summaries included;
//! * **point-order stability** — for key-colliding points the merge
//!   keeps entries in point order (the stable-sort contract the
//!   `--threads` invariance tests build on).

use proptest::prelude::*;
use zeiot_core::id::NodeId;
use zeiot_core::rng::splitmix64;
use zeiot_core::time::SimTime;
use zeiot_obs::{Label, Recorder, Snapshot};

/// A deterministic pseudo-random snapshot: instruments and values are
/// pure functions of `seed`, labels drawn from `node_base..node_base+n`
/// so two generators with non-overlapping ranges produce key-disjoint
/// snapshots.
fn synth_snapshot(seed: u64, node_base: u32, labels: u32, observations: u64) -> Snapshot {
    let mut rec = Recorder::new();
    for i in 0..labels {
        let label = Label::node(NodeId::new(node_base + i));
        let h = splitmix64(seed ^ u64::from(i));
        rec.add("net.tx", label.clone(), h % 1000);
        rec.set_gauge("drift", label.clone(), (h % 997) as f64 / 997.0);
        for k in 0..observations {
            let v = splitmix64(h ^ k) % 10_000;
            rec.observe("serve.latency", label.clone(), v as f64 / 1e4);
        }
        rec.sample(
            "volts",
            label,
            SimTime::from_millis(u64::from(i) + 1),
            (h % 500) as f64 / 100.0,
        );
    }
    rec.snapshot()
}

fn is_sorted_by_key(snapshot: &Snapshot) -> bool {
    snapshot
        .counters
        .windows(2)
        .all(|w| (&w[0].name, &w[0].label) <= (&w[1].name, &w[1].label))
        && snapshot
            .histograms
            .windows(2)
            .all(|w| (&w[0].name, &w[0].label) <= (&w[1].name, &w[1].label))
        && snapshot
            .series
            .windows(2)
            .all(|w| (&w[0].name, &w[0].label) <= (&w[1].name, &w[1].label))
}

#[test]
fn merge_of_nothing_is_the_default_snapshot() {
    assert_eq!(
        Snapshot::merge_in_order(Vec::<Snapshot>::new()),
        Snapshot::default()
    );
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Empty snapshots are identity elements wherever they appear.
    #[test]
    fn empty_snapshots_are_identity(seed in 0u64..10_000, labels in 1u32..6, obs in 1u64..8) {
        let point = synth_snapshot(seed, 0, labels, obs);
        let plain = Snapshot::merge_in_order([point.clone()]);
        let padded = Snapshot::merge_in_order([
            Snapshot::default(),
            point.clone(),
            Snapshot::default(),
        ]);
        prop_assert_eq!(&plain, &padded);
        prop_assert_eq!(&plain, &point);
    }

    /// Merging key-disjoint points loses nothing: every entry survives,
    /// counter totals are conserved, and the result stays sorted.
    #[test]
    fn disjoint_label_sets_are_conserved(
        seed in 0u64..10_000,
        la in 1u32..5,
        lb in 1u32..5,
        obs in 1u64..6,
    ) {
        let a = synth_snapshot(seed, 0, la, obs);
        let b = synth_snapshot(seed.wrapping_add(1), 100, lb, obs);
        let merged = Snapshot::merge_in_order([a.clone(), b.clone()]);
        prop_assert_eq!(merged.counters.len(), a.counters.len() + b.counters.len());
        prop_assert_eq!(
            merged.histograms.len(),
            a.histograms.len() + b.histograms.len()
        );
        prop_assert_eq!(
            merged.counter_total("net.tx"),
            a.counter_total("net.tx") + b.counter_total("net.tx")
        );
        prop_assert!(is_sorted_by_key(&merged));
        for entry in &a.histograms {
            prop_assert!(merged.histograms.contains(entry));
        }
        for entry in &b.histograms {
            prop_assert!(merged.histograms.contains(entry));
        }
    }

    /// For key-disjoint points the in-order merge commutes — histogram
    /// summaries included — because the `(name, label)` sort fully
    /// determines entry positions when no keys collide.
    #[test]
    fn histogram_merge_commutes_for_disjoint_keys(
        seed in 0u64..10_000,
        la in 1u32..5,
        lb in 1u32..5,
        obs in 1u64..6,
    ) {
        let a = synth_snapshot(seed, 0, la, obs);
        let b = synth_snapshot(seed.wrapping_add(1), 100, lb, obs);
        let ab = Snapshot::merge_in_order([a.clone(), b.clone()]);
        let ba = Snapshot::merge_in_order([b, a]);
        prop_assert_eq!(ab.histograms, ba.histograms);
        prop_assert_eq!(ab.counters, ba.counters);
        prop_assert_eq!(ab.series, ba.series);
    }

    /// For key-*colliding* points (every sweep point records the same
    /// instruments) the merge preserves point order — the stable-sort
    /// contract thread invariance rests on — and re-merging reproduces
    /// the same bytes.
    #[test]
    fn colliding_keys_keep_point_order(
        seed in 0u64..10_000,
        points in 2usize..6,
        obs in 1u64..6,
    ) {
        let parts: Vec<Snapshot> = (0..points)
            .map(|p| synth_snapshot(seed ^ p as u64, 0, 2, obs))
            .collect();
        let merged = Snapshot::merge_in_order(parts.clone());
        prop_assert_eq!(&merged, &Snapshot::merge_in_order(parts.clone()));
        let label = Label::node(NodeId::new(0));
        let expected: Vec<u64> = parts
            .iter()
            .map(|s| s.counter_value("net.tx", &label))
            .collect();
        let got: Vec<u64> = merged
            .counters_named("net.tx")
            .filter(|e| e.label == label)
            .map(|e| e.value)
            .collect();
        prop_assert_eq!(got, expected, "point order lost for colliding keys");
        let hists: usize = merged
            .histograms
            .iter()
            .filter(|e| e.name == "serve.latency" && e.label == label)
            .count();
        prop_assert_eq!(hists, points, "histogram instance per point");
    }
}
