//! Timing spans that record into a [`Recorder`] histogram when finished.
//!
//! [`WallSpan`] measures host wall-clock time (profiling the simulator
//! itself); [`SimSpan`] measures simulated time (profiling the modeled
//! system). Both record their duration in seconds under the span's metric
//! name when [`finish`](WallSpan::finish)ed, so repeated spans build a
//! latency distribution per `(name, label)`.

use crate::label::Label;
use crate::recorder::Recorder;
use std::time::{Duration, Instant};
use zeiot_core::time::{SimDuration, SimTime};

/// A wall-clock timing span. Dropping it without `finish` records nothing.
#[must_use = "a span records nothing unless finished"]
#[derive(Debug)]
pub struct WallSpan {
    name: String,
    label: Label,
    start: Instant,
}

impl WallSpan {
    /// Starts timing now.
    pub fn start(name: impl Into<String>, label: Label) -> Self {
        Self {
            name: name.into(),
            label,
            // zeiot-audit: allow(d2) -- WallSpan's purpose is host wall-clock profiling of the simulator itself; elapsed times land only in observability histograms, never in simulated state
            start: Instant::now(),
        }
    }

    /// Stops timing and records the elapsed seconds into `recorder`'s
    /// histogram for this span's `(name, label)`.
    pub fn finish(self, recorder: &mut Recorder) -> Duration {
        let elapsed = self.start.elapsed();
        recorder.observe(&self.name, self.label, elapsed.as_secs_f64());
        elapsed
    }
}

/// A simulated-time span. Dropping it without `finish` records nothing.
#[must_use = "a span records nothing unless finished"]
#[derive(Debug)]
pub struct SimSpan {
    name: String,
    label: Label,
    start: SimTime,
}

impl SimSpan {
    /// Starts a span at simulated time `now`.
    pub fn start(name: impl Into<String>, label: Label, now: SimTime) -> Self {
        Self {
            name: name.into(),
            label,
            start: now,
        }
    }

    /// Stops the span at simulated time `now` and records the elapsed
    /// simulated seconds into `recorder`'s histogram.
    ///
    /// # Panics
    ///
    /// Panics if `now` is earlier than the span's start time.
    pub fn finish(self, recorder: &mut Recorder, now: SimTime) -> SimDuration {
        let elapsed = now - self.start;
        recorder.observe(&self.name, self.label, elapsed.as_secs_f64());
        elapsed
    }

    /// Like [`SimSpan::finish`], but clamps to a zero-length span when
    /// `now` is earlier than the span's start instead of panicking —
    /// for analysis code replaying clocks it does not control (e.g.
    /// trace post-processing), where a malformed input must degrade to
    /// a zero sample, not abort the report.
    pub fn finish_clamped(self, recorder: &mut Recorder, now: SimTime) -> SimDuration {
        let elapsed = now
            .as_nanos()
            .checked_sub(self.start.as_nanos())
            .map(SimDuration::from_nanos)
            .unwrap_or(SimDuration::ZERO);
        recorder.observe(&self.name, self.label, elapsed.as_secs_f64());
        elapsed
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn wall_span_records_a_sample() {
        let mut rec = Recorder::new();
        let span = WallSpan::start("phase.secs", Label::Global);
        let elapsed = span.finish(&mut rec);
        let hist = rec.histogram_ref("phase.secs", &Label::Global).unwrap();
        assert_eq!(hist.len(), 1);
        assert!(hist.sum() >= 0.0);
        assert!(elapsed.as_secs_f64() >= 0.0);
    }

    #[test]
    fn sim_span_measures_simulated_time() {
        let mut rec = Recorder::new();
        let span = SimSpan::start("round.secs", Label::Global, SimTime::from_secs(10));
        let elapsed = span.finish(&mut rec, SimTime::from_secs(13));
        assert_eq!(elapsed, SimDuration::from_secs(3));
        let hist = rec.histogram_ref("round.secs", &Label::Global).unwrap();
        assert_eq!(hist.len(), 1);
        assert!((hist.sum() - 3.0).abs() < 1e-12);
    }

    #[test]
    fn finish_clamped_records_zero_when_clock_runs_backwards() {
        let mut rec = Recorder::new();
        let span = SimSpan::start("round.secs", Label::Global, SimTime::from_secs(10));
        // `now` earlier than start: must clamp to a zero-length span,
        // not abort (regression for the finish() panic path).
        let elapsed = span.finish_clamped(&mut rec, SimTime::from_secs(7));
        assert_eq!(elapsed, SimDuration::ZERO);
        let hist = rec.histogram_ref("round.secs", &Label::Global).unwrap();
        assert_eq!(hist.len(), 1);
        assert_eq!(hist.sum(), 0.0);
    }

    #[test]
    fn finish_clamped_matches_finish_on_well_ordered_clocks() {
        let mut rec = Recorder::new();
        let span = SimSpan::start("round.secs", Label::Global, SimTime::from_secs(1));
        let elapsed = span.finish_clamped(&mut rec, SimTime::from_secs(4));
        assert_eq!(elapsed, SimDuration::from_secs(3));
    }

    #[test]
    fn repeated_spans_build_a_distribution() {
        let mut rec = Recorder::new();
        for i in 0..4u64 {
            let span = SimSpan::start("round.secs", Label::Global, SimTime::from_secs(i));
            span.finish(&mut rec, SimTime::from_secs(i + 1));
        }
        let hist = rec.histogram_ref("round.secs", &Label::Global).unwrap();
        assert_eq!(hist.len(), 4);
    }
}
