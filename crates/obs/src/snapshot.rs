//! Serializable point-in-time views of a [`Recorder`].
//!
//! A [`Snapshot`] flattens the recorder's labeled families into plain
//! entry lists (so it serializes without map-key tricks) and renders a
//! human-readable console summary via `Display`: one row per metric
//! family, aggregated across labels.

use crate::label::Label;
use crate::recorder::{Recorder, Severity, TraceEvent};
use serde::{Deserialize, Serialize};
use std::fmt;
use zeiot_core::time::SimTime;
use zeiot_sim::metrics::HistogramSummary;

/// One counter instance.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CounterEntry {
    /// Metric family name (`subsystem.metric`).
    pub name: String,
    /// Entity the count belongs to.
    pub label: Label,
    /// Final count.
    pub value: u64,
}

/// One gauge instance.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct GaugeEntry {
    /// Metric family name.
    pub name: String,
    /// Entity the gauge belongs to.
    pub label: Label,
    /// Last written value.
    pub value: f64,
}

/// One histogram instance, reduced to its summary statistics.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct HistogramEntry {
    /// Metric family name.
    pub name: String,
    /// Entity the distribution belongs to.
    pub label: Label,
    /// Summary statistics (quantiles by nearest rank).
    pub summary: HistogramSummary,
}

/// One time-series instance with its full point list.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SeriesEntry {
    /// Metric family name.
    pub name: String,
    /// Entity the series belongs to.
    pub label: Label,
    /// Timestamped points in record order.
    pub points: Vec<(SimTime, f64)>,
}

/// One retained trace event.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TraceEntry {
    /// Simulated time of the event.
    pub time: SimTime,
    /// The event payload.
    pub event: TraceEvent,
}

/// A serializable point-in-time copy of everything a [`Recorder`] holds.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct Snapshot {
    /// All counters, sorted by `(name, label)`.
    pub counters: Vec<CounterEntry>,
    /// All gauges, sorted by `(name, label)`.
    pub gauges: Vec<GaugeEntry>,
    /// All non-empty histograms, sorted by `(name, label)`.
    pub histograms: Vec<HistogramEntry>,
    /// All series, sorted by `(name, label)`.
    pub series: Vec<SeriesEntry>,
    /// Retained trace events, oldest first.
    pub trace: Vec<TraceEntry>,
    /// Trace events evicted before the snapshot was taken.
    pub trace_dropped: u64,
}

impl Recorder {
    /// Captures a serializable snapshot of all instruments.
    pub fn snapshot(&self) -> Snapshot {
        Snapshot {
            counters: self
                .counters()
                .map(|(name, label, value)| CounterEntry {
                    name: name.to_owned(),
                    label: label.clone(),
                    value,
                })
                .collect(),
            gauges: self
                .gauges()
                .map(|(name, label, value)| GaugeEntry {
                    name: name.to_owned(),
                    label: label.clone(),
                    value,
                })
                .collect(),
            histograms: self
                .histograms()
                .filter_map(|(name, label, histogram)| {
                    histogram.summary().map(|summary| HistogramEntry {
                        name: name.to_owned(),
                        label: label.clone(),
                        summary,
                    })
                })
                .collect(),
            series: self
                .series_iter()
                .map(|(name, label, series)| SeriesEntry {
                    name: name.to_owned(),
                    label: label.clone(),
                    points: series.points().to_vec(),
                })
                .collect(),
            trace: self
                .trace_buffer()
                .iter()
                .map(|(time, event)| TraceEntry {
                    time: *time,
                    event: event.clone(),
                })
                .collect(),
            trace_dropped: self.trace_buffer().dropped(),
        }
    }
}

impl Snapshot {
    /// Merges another snapshot into this one.
    ///
    /// Metric entries are appended and re-sorted by `(name, label)`;
    /// entries sharing both name and label are kept side by side, so this
    /// is meant for combining **disjoint** subsystems (e.g. separate
    /// recorders for MAC and energy runs). Traces are interleaved by
    /// timestamp — meaningful only to the extent the two snapshots share
    /// a simulation clock.
    pub fn merge(&mut self, other: Snapshot) {
        self.counters.extend(other.counters);
        self.counters
            .sort_by(|a, b| (&a.name, &a.label).cmp(&(&b.name, &b.label)));
        self.gauges.extend(other.gauges);
        self.gauges
            .sort_by(|a, b| (&a.name, &a.label).cmp(&(&b.name, &b.label)));
        self.histograms.extend(other.histograms);
        self.histograms
            .sort_by(|a, b| (&a.name, &a.label).cmp(&(&b.name, &b.label)));
        self.series.extend(other.series);
        self.series
            .sort_by(|a, b| (&a.name, &a.label).cmp(&(&b.name, &b.label)));
        self.trace.extend(other.trace);
        self.trace.sort_by_key(|t| t.time);
        self.trace_dropped += other.trace_dropped;
    }

    /// Merges per-sweep-point snapshots in point-index order.
    ///
    /// Parallel sweep harnesses record each point into its own
    /// [`Recorder`] and hand the snapshots here **in point order**; since
    /// [`Snapshot::merge`] uses stable sorts, entries that share a
    /// `(name, label)` key keep that point order, so the merged snapshot
    /// is byte-identical no matter how many threads evaluated the points
    /// or in what order they finished.
    pub fn merge_in_order(points: impl IntoIterator<Item = Snapshot>) -> Snapshot {
        let mut merged = Snapshot::default();
        for snapshot in points {
            merged.merge(snapshot);
        }
        merged
    }

    /// All counter entries of one family.
    pub fn counters_named<'a>(&'a self, name: &'a str) -> impl Iterator<Item = &'a CounterEntry> {
        self.counters.iter().filter(move |e| e.name == name)
    }

    /// Sum of a counter family across labels.
    pub fn counter_total(&self, name: &str) -> u64 {
        self.counters_named(name).map(|e| e.value).sum()
    }

    /// The largest instance of a counter family, if any.
    pub fn counter_max(&self, name: &str) -> Option<&CounterEntry> {
        self.counters
            .iter()
            .filter(|e| e.name == name)
            .max_by_key(|e| e.value)
    }

    /// Mean per-label value of a counter family, if any.
    pub fn counter_mean(&self, name: &str) -> Option<f64> {
        let mut count = 0u64;
        let mut total = 0u64;
        for e in self.counters_named(name) {
            count += 1;
            total += e.value;
        }
        (count > 0).then(|| total as f64 / count as f64)
    }

    /// The counter value for one `(name, label)` instance (zero if absent).
    pub fn counter_value(&self, name: &str, label: &Label) -> u64 {
        self.counters
            .iter()
            .find(|e| e.name == name && &e.label == label)
            .map_or(0, |e| e.value)
    }

    /// All series entries of one family.
    pub fn series_named<'a>(&'a self, name: &'a str) -> impl Iterator<Item = &'a SeriesEntry> {
        self.series.iter().filter(move |e| e.name == name)
    }

    /// Value statistics `(min, mean, max)` over every point of a series
    /// family, if it has any points.
    pub fn series_value_stats(&self, name: &str) -> Option<(f64, f64, f64)> {
        let mut min = f64::INFINITY;
        let mut max = f64::NEG_INFINITY;
        let mut sum = 0.0;
        let mut n = 0usize;
        for entry in self.series_named(name) {
            for &(_, v) in &entry.points {
                min = min.min(v);
                max = max.max(v);
                sum += v;
                n += 1;
            }
        }
        (n > 0).then(|| (min, sum / n as f64, max))
    }
}

/// Groups entries by family name, preserving name order.
fn family_names<'a, T>(entries: &'a [T], name_of: impl Fn(&T) -> &str + 'a) -> Vec<&'a str> {
    let mut names: Vec<&str> = entries.iter().map(name_of).collect();
    names.dedup();
    names
}

impl fmt::Display for Snapshot {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "== observability summary ==")?;
        if !self.counters.is_empty() {
            writeln!(f, "counters:")?;
            for name in family_names(&self.counters, |e| e.name.as_str()) {
                let total = self.counter_total(name);
                let mean = self.counter_mean(name).unwrap_or(0.0);
                let max = self.counter_max(name).expect("family is non-empty");
                let labels = self.counters_named(name).count();
                writeln!(
                    f,
                    "  {name:<34} {labels:>4} labels  total {total:>10}  \
                     mean {mean:>10.1}  max {:>8} @{}",
                    max.value, max.label
                )?;
            }
        }
        if !self.gauges.is_empty() {
            writeln!(f, "gauges:")?;
            for name in family_names(&self.gauges, |e| e.name.as_str()) {
                let values: Vec<f64> = self
                    .gauges
                    .iter()
                    .filter(|e| e.name == name)
                    .map(|e| e.value)
                    .collect();
                let min = values.iter().copied().fold(f64::INFINITY, f64::min);
                let max = values.iter().copied().fold(f64::NEG_INFINITY, f64::max);
                let mean = values.iter().sum::<f64>() / values.len() as f64;
                writeln!(
                    f,
                    "  {name:<34} {:>4} labels  min {min:>12.4}  mean {mean:>12.4}  \
                     max {max:>12.4}",
                    values.len()
                )?;
            }
        }
        if !self.histograms.is_empty() {
            writeln!(f, "histograms:")?;
            for entry in &self.histograms {
                let s = &entry.summary;
                writeln!(
                    f,
                    "  {:<34} @{:<10} n={:<6} mean {:>10.3}  p50 {:>10.3}  \
                     p99 {:>10.3}  max {:>10.3}",
                    entry.name, entry.label, s.count, s.mean, s.p50, s.p99, s.max
                )?;
            }
        }
        if !self.series.is_empty() {
            writeln!(f, "series:")?;
            for name in family_names(&self.series, |e| e.name.as_str()) {
                let instances = self.series_named(name).count();
                let points: usize = self.series_named(name).map(|e| e.points.len()).sum();
                match self.series_value_stats(name) {
                    Some((min, mean, max)) => writeln!(
                        f,
                        "  {name:<34} {instances:>4} series  {points:>7} pts  \
                         min {min:>10.4}  mean {mean:>10.4}  max {max:>10.4}",
                    )?,
                    None => writeln!(f, "  {name:<34} {instances:>4} series  {points:>7} pts",)?,
                }
            }
        }
        let warns = self
            .trace
            .iter()
            .filter(|t| t.event.severity == Severity::Warn)
            .count();
        let errors = self
            .trace
            .iter()
            .filter(|t| t.event.severity == Severity::Error)
            .count();
        writeln!(
            f,
            "trace: {} events retained ({} dropped), {} warn, {} error",
            self.trace.len(),
            self.trace_dropped,
            warns,
            errors
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use zeiot_core::id::NodeId;

    fn sample_recorder() -> Recorder {
        let mut rec = Recorder::new();
        rec.add("net.tx", Label::node(NodeId::new(0)), 4);
        rec.add("net.tx", Label::node(NodeId::new(1)), 10);
        rec.set_gauge("drift", Label::Global, 0.125);
        rec.observe("cost", Label::Global, 1.0);
        rec.observe("cost", Label::Global, 3.0);
        rec.sample(
            "volts",
            Label::device(zeiot_core::id::DeviceId::new(0)),
            SimTime::from_secs(1),
            2.5,
        );
        rec.trace(
            SimTime::from_secs(1),
            Severity::Warn,
            Label::Global,
            "brownout",
        );
        rec
    }

    #[test]
    fn snapshot_captures_all_instruments() {
        let snap = sample_recorder().snapshot();
        assert_eq!(snap.counters.len(), 2);
        assert_eq!(snap.gauges.len(), 1);
        assert_eq!(snap.histograms.len(), 1);
        assert_eq!(snap.series.len(), 1);
        assert_eq!(snap.trace.len(), 1);
        assert_eq!(snap.counter_total("net.tx"), 14);
        assert_eq!(snap.counter_max("net.tx").unwrap().value, 10);
        assert_eq!(snap.counter_mean("net.tx"), Some(7.0));
        assert_eq!(
            snap.counter_value("net.tx", &Label::node(NodeId::new(0))),
            4
        );
        assert_eq!(snap.series_value_stats("volts"), Some((2.5, 2.5, 2.5)));
    }

    #[test]
    fn empty_histograms_are_omitted() {
        let mut rec = Recorder::new();
        rec.histogram("empty", Label::Global);
        assert!(rec.snapshot().histograms.is_empty());
    }

    #[test]
    fn snapshot_serde_round_trip() {
        let snap = sample_recorder().snapshot();
        let json = serde_json::to_string(&snap).unwrap();
        let back: Snapshot = serde_json::from_str(&json).unwrap();
        assert_eq!(back, snap);
    }

    #[test]
    fn merge_combines_disjoint_subsystems() {
        let mut snap = sample_recorder().snapshot();
        let mut other = Recorder::new();
        other.inc("mac.grants", Label::Global);
        // Earlier timestamp than the base snapshot's trace entry: merge
        // must interleave, not append.
        other.trace(SimTime::ZERO, Severity::Info, Label::Global, "power on");
        snap.merge(other.snapshot());
        assert_eq!(snap.counter_total("net.tx"), 14);
        assert_eq!(snap.counter_total("mac.grants"), 1);
        assert!(snap
            .counters
            .windows(2)
            .all(|w| { (&w[0].name, &w[0].label) <= (&w[1].name, &w[1].label) }));
        assert_eq!(snap.trace.len(), 2);
        assert!(snap.trace[0].time <= snap.trace[1].time);
    }

    #[test]
    fn merge_in_order_is_deterministic_for_colliding_keys() {
        // Three "sweep points" that all record the same (name, label)
        // instruments — as parallel experiment points do. Merging in
        // point order must keep the entries in point order (stable
        // sorts), so a parallel run that merges point snapshots by index
        // reproduces the serial run byte for byte.
        let point = |value: u64, volts: f64| {
            let mut rec = Recorder::new();
            rec.add("energy.harvested_uj", Label::Global, value);
            rec.sample("volts", Label::Global, SimTime::from_secs(1), volts);
            rec.snapshot()
        };
        let parts: Vec<Snapshot> = vec![point(1, 1.0), point(2, 2.0), point(3, 3.0)];
        let merged = Snapshot::merge_in_order(parts.clone());
        let again = Snapshot::merge_in_order(parts);
        assert_eq!(merged, again);
        let values: Vec<u64> = merged
            .counters_named("energy.harvested_uj")
            .map(|e| e.value)
            .collect();
        assert_eq!(values, vec![1, 2, 3], "point order lost in merge");
        let volts: Vec<f64> = merged
            .series_named("volts")
            .map(|e| e.points[0].1)
            .collect();
        assert_eq!(volts, vec![1.0, 2.0, 3.0]);
    }

    #[test]
    fn summary_mentions_every_family() {
        let text = sample_recorder().snapshot().to_string();
        for needle in ["net.tx", "drift", "cost", "volts", "1 warn"] {
            assert!(text.contains(needle), "missing {needle} in:\n{text}");
        }
    }
}
