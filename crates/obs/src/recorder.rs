//! The [`Recorder`]: one facade over every observability instrument.
//!
//! Subsystems take `&mut Recorder` (usually as an `Option`) and report
//! through labeled metric families — a family is all instruments sharing a
//! metric name (`subsystem.metric`), keyed by the [`Label`] of the entity
//! being measured. The recorder also owns a severity-tagged bounded trace
//! built on [`TraceBuffer`].

use crate::label::Label;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use std::fmt;
use zeiot_core::time::SimTime;
use zeiot_sim::metrics::{Counter, Histogram, TimeSeries};
use zeiot_sim::trace::TraceBuffer;

/// How noteworthy a trace event is.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Serialize, Deserialize)]
pub enum Severity {
    Debug,
    Info,
    Warn,
    Error,
}

impl fmt::Display for Severity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            Severity::Debug => "DEBUG",
            Severity::Info => "INFO",
            Severity::Warn => "WARN",
            Severity::Error => "ERROR",
        })
    }
}

/// One entry in the recorder's bounded trace.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TraceEvent {
    /// Severity tag.
    pub severity: Severity,
    /// The entity the event concerns.
    pub label: Label,
    /// Human-readable description.
    pub message: String,
}

/// Default number of trace entries retained.
pub const DEFAULT_TRACE_CAPACITY: usize = 4096;

/// Labeled metric families plus a severity-tagged trace.
///
/// # Example
///
/// ```
/// use zeiot_obs::{Label, Recorder};
/// use zeiot_core::id::NodeId;
///
/// let mut rec = Recorder::new();
/// rec.add("microdeep.tx_messages", Label::node(NodeId::new(0)), 3);
/// rec.observe("fault.recovery_latency_hops", Label::Global, 2.0);
/// assert_eq!(rec.counter_value("microdeep.tx_messages", &Label::node(NodeId::new(0))), 3);
/// ```
#[derive(Debug, Clone)]
pub struct Recorder {
    counters: BTreeMap<(String, Label), Counter>,
    gauges: BTreeMap<(String, Label), f64>,
    histograms: BTreeMap<(String, Label), Histogram>,
    series: BTreeMap<(String, Label), TimeSeries>,
    trace: TraceBuffer<TraceEvent>,
    min_severity: Severity,
}

impl Default for Recorder {
    fn default() -> Self {
        Self::new()
    }
}

impl Recorder {
    /// Creates an empty recorder with the default trace capacity.
    pub fn new() -> Self {
        Self::with_trace_capacity(DEFAULT_TRACE_CAPACITY)
    }

    /// Creates an empty recorder retaining at most `capacity` trace
    /// entries.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    pub fn with_trace_capacity(capacity: usize) -> Self {
        Self {
            counters: BTreeMap::new(),
            gauges: BTreeMap::new(),
            histograms: BTreeMap::new(),
            series: BTreeMap::new(),
            trace: TraceBuffer::new(capacity),
            min_severity: Severity::Debug,
        }
    }

    /// Drops future trace events below `severity` (metrics are unaffected).
    pub fn set_min_severity(&mut self, severity: Severity) {
        self.min_severity = severity;
    }

    // -- counters ----------------------------------------------------------

    /// The counter `(name, label)`, created at zero on first access.
    pub fn counter(&mut self, name: &str, label: Label) -> &mut Counter {
        self.counters.entry((name.to_owned(), label)).or_default()
    }

    /// Adds `n` to a counter.
    pub fn add(&mut self, name: &str, label: Label, n: u64) {
        self.counter(name, label).add(n);
    }

    /// Adds one to a counter.
    pub fn inc(&mut self, name: &str, label: Label) {
        self.counter(name, label).increment();
    }

    /// Current value of a counter (zero if it was never touched).
    pub fn counter_value(&self, name: &str, label: &Label) -> u64 {
        self.counters
            .get(&(name.to_owned(), label.clone()))
            .map_or(0, |c| c.value())
    }

    /// Iterates all counters as `(name, label, value)`, sorted by key.
    pub fn counters(&self) -> impl Iterator<Item = (&str, &Label, u64)> {
        self.counters
            .iter()
            .map(|((name, label), c)| (name.as_str(), label, c.value()))
    }

    // -- gauges ------------------------------------------------------------

    /// Sets a gauge to `value` (last write wins).
    pub fn set_gauge(&mut self, name: &str, label: Label, value: f64) {
        self.gauges.insert((name.to_owned(), label), value);
    }

    /// Current value of a gauge, if ever set.
    pub fn gauge(&self, name: &str, label: &Label) -> Option<f64> {
        self.gauges.get(&(name.to_owned(), label.clone())).copied()
    }

    /// Iterates all gauges as `(name, label, value)`, sorted by key.
    pub fn gauges(&self) -> impl Iterator<Item = (&str, &Label, f64)> {
        self.gauges
            .iter()
            .map(|((name, label), v)| (name.as_str(), label, *v))
    }

    // -- histograms --------------------------------------------------------

    /// The histogram `(name, label)`, created empty on first access.
    pub fn histogram(&mut self, name: &str, label: Label) -> &mut Histogram {
        self.histograms.entry((name.to_owned(), label)).or_default()
    }

    /// Records one sample into a histogram.
    ///
    /// # Panics
    ///
    /// Panics if `value` is NaN (see [`Histogram::record`]).
    pub fn observe(&mut self, name: &str, label: Label, value: f64) {
        self.histogram(name, label).record(value);
    }

    /// Read-only view of a histogram, if it exists.
    pub fn histogram_ref(&self, name: &str, label: &Label) -> Option<&Histogram> {
        self.histograms.get(&(name.to_owned(), label.clone()))
    }

    /// Iterates all histograms as `(name, label, histogram)`, sorted by key.
    pub fn histograms(&self) -> impl Iterator<Item = (&str, &Label, &Histogram)> {
        self.histograms
            .iter()
            .map(|((name, label), h)| (name.as_str(), label, h))
    }

    // -- time series -------------------------------------------------------

    /// The time series `(name, label)`, created empty on first access.
    pub fn series(&mut self, name: &str, label: Label) -> &mut TimeSeries {
        self.series.entry((name.to_owned(), label)).or_default()
    }

    /// Appends a timestamped point to a series.
    ///
    /// # Panics
    ///
    /// Panics if `time` precedes the series' last point (see
    /// [`TimeSeries::record`]).
    pub fn sample(&mut self, name: &str, label: Label, time: SimTime, value: f64) {
        self.series(name, label).record(time, value);
    }

    /// Read-only view of a series, if it exists.
    pub fn series_ref(&self, name: &str, label: &Label) -> Option<&TimeSeries> {
        self.series.get(&(name.to_owned(), label.clone()))
    }

    /// Iterates all series as `(name, label, series)`, sorted by key.
    pub fn series_iter(&self) -> impl Iterator<Item = (&str, &Label, &TimeSeries)> {
        self.series
            .iter()
            .map(|((name, label), s)| (name.as_str(), label, s))
    }

    // -- tracing -----------------------------------------------------------

    /// Appends a trace event (dropped when below the minimum severity).
    ///
    /// # Panics
    ///
    /// Panics if `time` precedes the newest trace entry (see
    /// [`TraceBuffer::push`]).
    pub fn trace(
        &mut self,
        time: SimTime,
        severity: Severity,
        label: Label,
        message: impl Into<String>,
    ) {
        if severity < self.min_severity {
            return;
        }
        self.trace.push(
            time,
            TraceEvent {
                severity,
                label,
                message: message.into(),
            },
        );
    }

    /// The bounded trace buffer.
    pub fn trace_buffer(&self) -> &TraceBuffer<TraceEvent> {
        &self.trace
    }

    /// Clears all metrics and the trace (capacity and severity filter are
    /// kept).
    pub fn clear(&mut self) {
        self.counters.clear();
        self.gauges.clear();
        self.histograms.clear();
        self.series.clear();
        let capacity = self.trace.capacity();
        self.trace = TraceBuffer::new(capacity);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use zeiot_core::id::NodeId;

    #[test]
    fn counters_are_keyed_by_name_and_label() {
        let mut rec = Recorder::new();
        rec.add("m.tx", Label::node(NodeId::new(0)), 2);
        rec.add("m.tx", Label::node(NodeId::new(1)), 5);
        rec.inc("m.tx", Label::node(NodeId::new(0)));
        assert_eq!(rec.counter_value("m.tx", &Label::node(NodeId::new(0))), 3);
        assert_eq!(rec.counter_value("m.tx", &Label::node(NodeId::new(1))), 5);
        assert_eq!(rec.counter_value("m.tx", &Label::Global), 0);
        assert_eq!(rec.counters().count(), 2);
    }

    #[test]
    fn gauges_last_write_wins() {
        let mut rec = Recorder::new();
        rec.set_gauge("drift", Label::Global, 0.5);
        rec.set_gauge("drift", Label::Global, 0.25);
        assert_eq!(rec.gauge("drift", &Label::Global), Some(0.25));
        assert_eq!(rec.gauge("other", &Label::Global), None);
    }

    #[test]
    fn histograms_and_series_accumulate() {
        let mut rec = Recorder::new();
        rec.observe("h", Label::Global, 1.0);
        rec.observe("h", Label::Global, 3.0);
        rec.sample("v", Label::Global, SimTime::from_secs(1), 2.0);
        rec.sample("v", Label::Global, SimTime::from_secs(2), 4.0);
        assert_eq!(rec.histogram_ref("h", &Label::Global).unwrap().len(), 2);
        assert_eq!(rec.series_ref("v", &Label::Global).unwrap().len(), 2);
    }

    #[test]
    fn trace_respects_min_severity() {
        let mut rec = Recorder::new();
        rec.set_min_severity(Severity::Warn);
        rec.trace(SimTime::ZERO, Severity::Debug, Label::Global, "quiet");
        rec.trace(SimTime::ZERO, Severity::Error, Label::Global, "loud");
        assert_eq!(rec.trace_buffer().len(), 1);
        let (_, event) = rec.trace_buffer().iter().next().unwrap();
        assert_eq!(event.severity, Severity::Error);
        assert_eq!(event.message, "loud");
    }

    #[test]
    fn clear_resets_instruments_but_keeps_capacity() {
        let mut rec = Recorder::with_trace_capacity(2);
        rec.inc("c", Label::Global);
        rec.trace(SimTime::ZERO, Severity::Info, Label::Global, "x");
        rec.clear();
        assert_eq!(rec.counters().count(), 0);
        assert!(rec.trace_buffer().is_empty());
        assert_eq!(rec.trace_buffer().capacity(), 2);
    }
}
