//! An [`Observer`] that records engine health metrics into a [`Recorder`].
//!
//! Attach with [`Engine::with_observer`](zeiot_sim::Engine::with_observer):
//!
//! ```
//! use zeiot_obs::EngineProbe;
//! use zeiot_sim::{Context, Engine, World};
//! use zeiot_core::time::SimTime;
//!
//! struct Nop;
//! impl World for Nop {
//!     type Event = u32;
//!     fn handle(&mut self, _ctx: &mut Context<'_, u32>, _event: u32) {}
//! }
//!
//! let mut engine = Engine::with_observer(Nop, EngineProbe::<u32>::new());
//! engine.schedule_at(SimTime::ZERO, 7);
//! engine.run();
//! let snap = engine.observer().recorder().snapshot();
//! assert_eq!(snap.counter_total("engine.events_dispatched"), 1);
//! ```
//!
//! Recorded metrics (all under the `engine.` prefix):
//!
//! - `engine.events_scheduled` — counter, [`Label::Global`].
//! - `engine.events_dispatched` — counter per event kind
//!   ([`Label::Part`], via the classifier).
//! - `engine.queue_depth` — histogram of queue depth observed at each
//!   dispatch, [`Label::Global`].
//! - `engine.handler_secs` — histogram of wall-clock handler duration per
//!   event kind.
//! - `engine.stop_requests` — counter, [`Label::Global`], plus an info
//!   trace event.

use crate::label::Label;
use crate::recorder::{Recorder, Severity};
use std::time::Duration;
use zeiot_core::time::SimTime;
use zeiot_sim::Observer;

/// Classifies an event into a static kind name for per-type metrics.
pub type EventClassifier<E> = fn(&E) -> &'static str;

/// An engine observer that turns probe callbacks into recorder metrics.
#[derive(Debug)]
pub struct EngineProbe<E> {
    recorder: Recorder,
    classify: EventClassifier<E>,
    /// Kind of the event currently being handled, so `on_event_handled`
    /// (which no longer sees the event) can label its duration sample.
    current_kind: &'static str,
}

impl<E> EngineProbe<E> {
    /// A probe that files every event under the kind `"event"`.
    pub fn new() -> Self {
        Self::with_classifier(|_| "event")
    }

    /// A probe that labels per-event metrics with `classify(event)`.
    pub fn with_classifier(classify: EventClassifier<E>) -> Self {
        Self {
            recorder: Recorder::new(),
            classify,
            current_kind: "event",
        }
    }

    /// The metrics recorded so far.
    pub fn recorder(&self) -> &Recorder {
        &self.recorder
    }

    /// Mutable access, e.g. to add world-level metrics alongside engine ones.
    pub fn recorder_mut(&mut self) -> &mut Recorder {
        &mut self.recorder
    }

    /// Consumes the probe, returning its recorder.
    pub fn into_recorder(self) -> Recorder {
        self.recorder
    }
}

impl<E> Default for EngineProbe<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> Observer<E> for EngineProbe<E> {
    fn on_schedule(&mut self, _now: SimTime, _at: SimTime, _queue_depth: usize) {
        self.recorder.inc("engine.events_scheduled", Label::Global);
    }

    fn on_event_dispatched(&mut self, _now: SimTime, event: &E, queue_depth: usize) {
        self.current_kind = (self.classify)(event);
        self.recorder
            .inc("engine.events_dispatched", Label::part(self.current_kind));
        self.recorder
            .observe("engine.queue_depth", Label::Global, queue_depth as f64);
    }

    fn on_event_handled(&mut self, _now: SimTime, wall: Duration) {
        self.recorder.observe(
            "engine.handler_secs",
            Label::part(self.current_kind),
            wall.as_secs_f64(),
        );
    }

    fn on_stop(&mut self, now: SimTime, dispatched: u64) {
        self.recorder.inc("engine.stop_requests", Label::Global);
        self.recorder.trace(
            now,
            Severity::Info,
            Label::Global,
            format!("stop requested after {dispatched} events"),
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use zeiot_core::time::SimDuration;
    use zeiot_sim::{Context, Engine, World};

    /// Re-schedules itself `remaining` times, then requests a stop.
    struct Countdown {
        remaining: u32,
    }

    impl World for Countdown {
        type Event = u32;
        fn handle(&mut self, ctx: &mut Context<'_, u32>, event: u32) {
            if event > 0 {
                ctx.schedule_in(SimDuration::from_millis(1), event - 1);
            } else {
                ctx.stop();
                self.remaining = 0;
            }
        }
    }

    #[test]
    fn probe_counts_schedules_and_dispatches() {
        let mut engine =
            Engine::with_observer(Countdown { remaining: 3 }, EngineProbe::<u32>::new());
        engine.schedule_at(SimTime::ZERO, 3);
        engine.run();
        let snap = engine.observer().recorder().snapshot();
        // Initial schedule + 3 re-schedules.
        assert_eq!(snap.counter_total("engine.events_scheduled"), 4);
        assert_eq!(snap.counter_total("engine.events_dispatched"), 4);
        assert_eq!(snap.counter_total("engine.stop_requests"), 1);
        let depth = snap
            .histograms
            .iter()
            .find(|h| h.name == "engine.queue_depth")
            .unwrap();
        assert_eq!(depth.summary.count, 4);
        let secs = snap
            .histograms
            .iter()
            .find(|h| h.name == "engine.handler_secs")
            .unwrap();
        assert_eq!(secs.summary.count, 4);
    }

    #[test]
    fn classifier_splits_event_kinds() {
        fn parity(event: &u32) -> &'static str {
            if event.is_multiple_of(2) {
                "even"
            } else {
                "odd"
            }
        }
        let mut engine = Engine::with_observer(
            Countdown { remaining: 2 },
            EngineProbe::with_classifier(parity),
        );
        engine.schedule_at(SimTime::ZERO, 2);
        engine.run();
        let snap = engine.observer().recorder().snapshot();
        assert_eq!(
            snap.counter_value("engine.events_dispatched", &Label::part("even")),
            2
        );
        assert_eq!(
            snap.counter_value("engine.events_dispatched", &Label::part("odd")),
            1
        );
    }

    #[test]
    fn stop_leaves_a_trace_event() {
        let mut engine =
            Engine::with_observer(Countdown { remaining: 1 }, EngineProbe::<u32>::new());
        engine.schedule_at(SimTime::ZERO, 0);
        engine.run();
        let snap = engine.observer().recorder().snapshot();
        assert_eq!(snap.trace.len(), 1);
        assert_eq!(snap.trace[0].event.severity, Severity::Info);
        assert!(snap.trace[0].event.message.contains("stop requested"));
    }
}
