//! Workspace-wide observability: a labeled metric [`Recorder`], severity
//! tagged tracing, timing spans, an engine [`EngineProbe`], and exporters
//! (JSONL dump, serializable [`Snapshot`], console summary table).
//!
//! # Conventions
//!
//! Metric names are `subsystem.metric` (e.g. `microdeep.tx_messages`,
//! `mac.collisions`, `energy.capacitor_v`); the [`Label`] half of the key
//! identifies *which* entity — a [`NodeId`](zeiot_core::id::NodeId), a
//! [`DeviceId`](zeiot_core::id::DeviceId), a named part, or the global
//! scope.

pub mod analysis;
pub mod jsonl;
pub mod label;
pub mod probe;
pub mod recorder;
pub mod registry;
pub mod slo;
pub mod snapshot;
pub mod span;
pub mod trace;

pub use analysis::{attribution, critical_path, Attribution, CriticalStep, LayerRollup};
pub use jsonl::{from_jsonl, to_jsonl, write_jsonl, JsonlError, JsonlRecord};
pub use label::Label;
pub use probe::{EngineProbe, EventClassifier};
pub use recorder::{Recorder, Severity, TraceEvent};
pub use registry::{
    is_registered_metric, is_registered_span, validate_snapshot, validate_traces, UnknownName,
};
pub use slo::{evaluate_all, SloBreach, SloObjective, SloSpec};
pub use snapshot::{CounterEntry, GaugeEntry, HistogramEntry, SeriesEntry, Snapshot, TraceEntry};
pub use span::{SimSpan, WallSpan};
pub use trace::{
    traces_from_jsonl, traces_to_jsonl, write_traces_jsonl, ClockDomain, Span, SpanEvent, SpanId,
    SpanLayer, SpanScope, Trace, TraceId, TraceSampler, Tracer,
};
