//! Workspace-wide observability: a labeled metric [`Recorder`], severity
//! tagged tracing, timing spans, an engine [`EngineProbe`], and exporters
//! (JSONL dump, serializable [`Snapshot`], console summary table).
//!
//! # Conventions
//!
//! Metric names are `subsystem.metric` (e.g. `microdeep.tx_messages`,
//! `mac.collisions`, `energy.capacitor_v`); the [`Label`] half of the key
//! identifies *which* entity — a [`NodeId`](zeiot_core::id::NodeId), a
//! [`DeviceId`](zeiot_core::id::DeviceId), a named part, or the global
//! scope.

pub mod jsonl;
pub mod label;
pub mod probe;
pub mod recorder;
pub mod snapshot;
pub mod span;

pub use jsonl::{from_jsonl, to_jsonl, write_jsonl, JsonlRecord};
pub use label::Label;
pub use probe::{EngineProbe, EventClassifier};
pub use recorder::{Recorder, Severity, TraceEvent};
pub use snapshot::{CounterEntry, GaugeEntry, HistogramEntry, SeriesEntry, Snapshot, TraceEntry};
pub use span::{SimSpan, WallSpan};
