//! Deterministic causal tracing: per-request span trees.
//!
//! A [`Trace`] is the end-to-end story of one request — admission,
//! queueing, batching, inference, and every cross-node transport hop —
//! as a parent/child tree of [`Span`]s. Everything here obeys the
//! workspace determinism contract (DESIGN.md §7b):
//!
//! * **Identity is derived, not generated.** A [`TraceId`] is a pure
//!   [`splitmix64`] mix of the request's `(tenant, seq)` coordinates, so
//!   the same request gets the same id on every run and thread count.
//! * **Sampling is seeded, not random.** A [`TraceSampler`] keeps a
//!   trace iff `splitmix64(seed ^ id)` clears a rate-derived threshold —
//!   a pure per-request function with no shared RNG stream to race on.
//! * **Two clock domains, kept apart.** Serving spans run on the
//!   server's virtual clock ([`ClockDomain::Serve`]); transport hop
//!   spans run on the fault fabric's own clock
//!   ([`ClockDomain::Fabric`]), which only advances on retransmission
//!   backoff. Analysis (see [`crate::analysis`]) never mixes the two:
//!   serve-clock children tile their parents exactly, so per-layer
//!   attribution sums to the end-to-end latency, while fabric-clock
//!   spans ride along as transport annotations.
//!
//! Traces export as JSON Lines (one trace per line) via
//! [`traces_to_jsonl`] / [`traces_from_jsonl`], byte-identical across
//! thread counts when produced in `(tenant, seq)` order.

use crate::jsonl::JsonlError;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use std::io::Write;
use std::path::Path;
use zeiot_core::rng::splitmix64;
use zeiot_core::time::{SimDuration, SimTime};

/// Deterministic identity of one trace.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize, Default,
)]
pub struct TraceId(pub u64);

impl TraceId {
    /// Derives the id for request `(tenant, seq)`:
    /// `splitmix64(splitmix64(tenant) ^ seq)`.
    ///
    /// The outer finalizer is a bijection, so two requests collide iff
    /// `splitmix64(t1) ^ s1 == splitmix64(t2) ^ s2` — impossible within
    /// one tenant and vanishingly unlikely across tenants. The id is
    /// used for sampling and export only; in-flight bookkeeping keys on
    /// `(tenant, seq)` directly.
    pub fn derive(tenant: u64, seq: u64) -> Self {
        Self(splitmix64(splitmix64(tenant) ^ seq))
    }
}

impl std::fmt::Display for TraceId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{:016x}", self.0)
    }
}

/// Index of a span within its trace's `spans` vector.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize, Default,
)]
pub struct SpanId(pub u32);

/// Which clock a span's timestamps belong to (never compare across
/// domains — see the module docs).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Serialize, Deserialize)]
pub enum ClockDomain {
    /// The serving layer's virtual clock (arrival → completion).
    Serve,
    /// The fault fabric's clock (advances on retransmission backoff and
    /// per-pass periods).
    Fabric,
}

/// The layer a span attributes its self-time to.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Serialize, Deserialize)]
pub enum SpanLayer {
    /// The end-to-end request root.
    Request,
    /// Time queued in a shard's EDF queue awaiting dispatch.
    Queue,
    /// Micro-batch residence: dispatch overhead plus waiting on other
    /// batch members' service slots.
    Batch,
    /// The request's own inference service slot.
    Infer,
    /// A cross-node transport hop group (fabric clock).
    Hop,
    /// A backscatter MAC interaction (grants, carriers).
    Mac,
}

impl SpanLayer {
    /// Stable metric suffix: `trace.attr.<suffix>` is the attribution
    /// histogram this layer's self-time lands in.
    pub fn metric_suffix(&self) -> &'static str {
        match self {
            SpanLayer::Request => "request",
            SpanLayer::Queue => "queue",
            SpanLayer::Batch => "batch",
            SpanLayer::Infer => "infer",
            SpanLayer::Hop => "hop",
            SpanLayer::Mac => "mac",
        }
    }

    /// Every layer, in declaration order (for rollup tables).
    pub fn all() -> [SpanLayer; 6] {
        [
            SpanLayer::Request,
            SpanLayer::Queue,
            SpanLayer::Batch,
            SpanLayer::Infer,
            SpanLayer::Hop,
            SpanLayer::Mac,
        ]
    }
}

/// A structured annotation on a span.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum SpanEvent {
    /// Admission control shed the request.
    Shed {
        /// The typed rejection reason's stable label.
        reason: String,
    },
    /// The completion overran the request's deadline.
    DeadlineMiss,
    /// The fabric aborted the inference mid-pass.
    Aborted,
    /// The answer came from the stale-result cache.
    StaleAnswer,
    /// Cross-node messages this hop span transported.
    Messages {
        /// Transmission attempts (including retransmissions).
        sent: u64,
    },
    /// Attempts lost to drops or outages within this span.
    Loss {
        /// Dropped attempts.
        drops: u64,
    },
    /// Retransmission attempts within this span.
    Retransmit {
        /// Retry attempts.
        retries: u64,
    },
    /// Lost values substituted by a degrade policy (or corrupted in
    /// flight) within this span.
    Degraded {
        /// Substituted or corrupted values.
        substituted: u64,
    },
    /// A backscatter MAC grant (dummy carrier) was issued.
    Grant,
    /// Backscatter tags collided on one carrier frame.
    Collision {
        /// How many tags rode the frame.
        tags: u64,
    },
}

/// A [`SpanEvent`] with its timestamp (in the owning span's clock).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct TimedEvent {
    /// When the event happened.
    pub at: SimTime,
    /// What happened.
    pub event: SpanEvent,
}

/// One node of a trace's span tree.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Span {
    /// This span's id (its index in the trace's span list).
    pub id: SpanId,
    /// Parent span, `None` only for the root.
    pub parent: Option<SpanId>,
    /// Attribution layer.
    pub layer: SpanLayer,
    /// Human-readable name (`serve.queue`, `hop.conv`, …).
    pub name: String,
    /// The clock `start`/`end` belong to.
    pub clock: ClockDomain,
    /// Span start.
    pub start: SimTime,
    /// Span end (equals `start` while the span is open).
    pub end: SimTime,
    /// Structured annotations, in record order.
    pub events: Vec<TimedEvent>,
}

impl Span {
    /// The span's duration (zero while open or for instant spans).
    pub fn duration(&self) -> SimDuration {
        self.end.duration_since(self.start)
    }
}

/// One request's complete span tree.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Trace {
    /// Derived identity (see [`TraceId::derive`]).
    pub id: TraceId,
    /// The issuing tenant's index.
    pub tenant: u64,
    /// The request's per-tenant sequence number.
    pub seq: u64,
    /// Spans in creation order; the root is `spans[0]`.
    pub spans: Vec<Span>,
}

impl Trace {
    /// The root span, if the trace has any spans.
    pub fn root(&self) -> Option<&Span> {
        self.spans.first()
    }

    /// Direct children of `parent`, in creation order.
    pub fn children(&self, parent: SpanId) -> impl Iterator<Item = &Span> {
        self.spans.iter().filter(move |s| s.parent == Some(parent))
    }

    /// Looks up a span by id.
    pub fn span(&self, id: SpanId) -> Option<&Span> {
        self.spans.get(id.0 as usize)
    }
}

/// Deterministic keep/drop decision per trace.
///
/// A trace is kept iff `splitmix64(seed ^ id)` falls below a threshold
/// equal to `rate` of the `u64` range — a pure function of `(seed, id)`,
/// so the sampled set is identical across runs, threads, and the order
/// requests happen to be offered in.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceSampler {
    seed: u64,
    threshold: u64,
}

impl TraceSampler {
    /// Keeps every trace.
    pub fn always() -> Self {
        Self {
            seed: 0,
            threshold: u64::MAX,
        }
    }

    /// Keeps no trace (the tracer becomes a no-op).
    pub fn never() -> Self {
        Self {
            seed: 0,
            threshold: 0,
        }
    }

    /// Keeps roughly `rate` of traces, decided per-trace by seeded hash.
    ///
    /// # Panics
    ///
    /// Panics if `rate` is not in `[0, 1]`.
    pub fn rate(seed: u64, rate: f64) -> Self {
        assert!((0.0..=1.0).contains(&rate), "sample rate out of [0,1]");
        let threshold = if rate >= 1.0 {
            u64::MAX
        } else {
            // Deterministic: f64 → u64 saturating cast, same on every
            // platform the workspace targets.
            (rate * u64::MAX as f64) as u64
        };
        Self { seed, threshold }
    }

    /// Whether a trace with this id is kept.
    pub fn keeps(&self, id: TraceId) -> bool {
        self.threshold == u64::MAX || splitmix64(self.seed ^ id.0) < self.threshold
    }
}

/// A borrowed handle for appending spans under a fixed parent — how
/// subsystems that only see "the current request" (the lossy MicroDeep
/// runtime, the MAC) add their hops without knowing the tracer's keys.
#[derive(Debug)]
pub struct SpanScope<'a> {
    trace: &'a mut Trace,
    parent: SpanId,
}

impl SpanScope<'_> {
    /// The parent every [`SpanScope::push_span`] attaches to.
    pub fn parent(&self) -> SpanId {
        self.parent
    }

    /// Appends a completed span under the scope's parent.
    pub fn push_span(
        &mut self,
        layer: SpanLayer,
        name: impl Into<String>,
        clock: ClockDomain,
        start: SimTime,
        end: SimTime,
    ) -> SpanId {
        let id = SpanId(self.trace.spans.len() as u32);
        self.trace.spans.push(Span {
            id,
            parent: Some(self.parent),
            layer,
            name: name.into(),
            clock,
            start,
            end,
            events: Vec::new(),
        });
        id
    }

    /// Appends an event to a span of this trace.
    pub fn event(&mut self, span: SpanId, at: SimTime, event: SpanEvent) {
        if let Some(s) = self.trace.spans.get_mut(span.0 as usize) {
            s.events.push(TimedEvent { at, event });
        }
    }
}

/// Collects traces for in-flight requests keyed by `(tenant, seq)` and
/// retires them into a finished list.
///
/// All storage is ordered ([`BTreeMap`] / creation-order vectors), and
/// [`Tracer::take_finished`] sorts by `(tenant, seq)`, so a tracer fed
/// the same requests produces byte-identical exports regardless of
/// completion order.
#[derive(Debug)]
pub struct Tracer {
    sampler: TraceSampler,
    active: BTreeMap<(u64, u64), Trace>,
    finished: Vec<Trace>,
}

impl Tracer {
    /// An empty tracer with the given sampling policy.
    pub fn new(sampler: TraceSampler) -> Self {
        Self {
            sampler,
            active: BTreeMap::new(),
            finished: Vec::new(),
        }
    }

    /// The sampling policy.
    pub fn sampler(&self) -> TraceSampler {
        self.sampler
    }

    /// Opens the root span for request `(tenant, seq)` at `start`.
    /// Returns the root's id, or `None` when sampling drops the trace
    /// (every later call for this request is then a no-op).
    pub fn begin(
        &mut self,
        tenant: u64,
        seq: u64,
        name: impl Into<String>,
        layer: SpanLayer,
        start: SimTime,
    ) -> Option<SpanId> {
        let id = TraceId::derive(tenant, seq);
        if !self.sampler.keeps(id) {
            return None;
        }
        let root = SpanId(0);
        self.active.insert(
            (tenant, seq),
            Trace {
                id,
                tenant,
                seq,
                spans: vec![Span {
                    id: root,
                    parent: None,
                    layer,
                    name: name.into(),
                    clock: ClockDomain::Serve,
                    start,
                    end: start,
                    events: Vec::new(),
                }],
            },
        );
        Some(root)
    }

    /// Whether request `(tenant, seq)` has an in-flight trace.
    pub fn is_active(&self, tenant: u64, seq: u64) -> bool {
        self.active.contains_key(&(tenant, seq))
    }

    /// The root span id of an in-flight trace.
    pub fn root(&self, tenant: u64, seq: u64) -> Option<SpanId> {
        self.active.get(&(tenant, seq)).map(|_| SpanId(0))
    }

    /// Appends a completed span to an in-flight trace. No-op (returning
    /// `None`) when the request is not traced.
    #[allow(clippy::too_many_arguments)]
    pub fn push_span(
        &mut self,
        tenant: u64,
        seq: u64,
        parent: SpanId,
        layer: SpanLayer,
        name: impl Into<String>,
        clock: ClockDomain,
        start: SimTime,
        end: SimTime,
    ) -> Option<SpanId> {
        let trace = self.active.get_mut(&(tenant, seq))?;
        let id = SpanId(trace.spans.len() as u32);
        trace.spans.push(Span {
            id,
            parent: Some(parent),
            layer,
            name: name.into(),
            clock,
            start,
            end,
            events: Vec::new(),
        });
        Some(id)
    }

    /// Appends an event to a span of an in-flight trace (no-op when the
    /// request is not traced).
    pub fn event(&mut self, tenant: u64, seq: u64, span: SpanId, at: SimTime, event: SpanEvent) {
        if let Some(trace) = self.active.get_mut(&(tenant, seq)) {
            if let Some(s) = trace.spans.get_mut(span.0 as usize) {
                s.events.push(TimedEvent { at, event });
            }
        }
    }

    /// A scope appending children under `parent` of the in-flight trace
    /// for `(tenant, seq)`, or `None` when the request is not traced.
    pub fn scope(&mut self, tenant: u64, seq: u64, parent: SpanId) -> Option<SpanScope<'_>> {
        self.active
            .get_mut(&(tenant, seq))
            .map(|trace| SpanScope { trace, parent })
    }

    /// Closes the root span at `end` and retires the trace to the
    /// finished list (no-op when the request is not traced).
    pub fn finish(&mut self, tenant: u64, seq: u64, end: SimTime) {
        if let Some(mut trace) = self.active.remove(&(tenant, seq)) {
            if let Some(root) = trace.spans.first_mut() {
                root.end = end;
            }
            self.finished.push(trace);
        }
    }

    /// Finished traces, in retirement order.
    pub fn finished(&self) -> &[Trace] {
        &self.finished
    }

    /// Drains the finished traces, sorted by `(tenant, seq)` — the
    /// canonical export order, invariant to completion order.
    pub fn take_finished(&mut self) -> Vec<Trace> {
        let mut out = std::mem::take(&mut self.finished);
        out.sort_by_key(|t| (t.tenant, t.seq));
        out
    }
}

/// Serializes traces as JSON Lines (one trace per line, trailing
/// newline).
pub fn traces_to_jsonl(traces: &[Trace]) -> String {
    let mut out = String::new();
    for trace in traces {
        out.push_str(&serde_json::to_string(trace).expect("traces are serializable"));
        out.push('\n');
    }
    out
}

/// Parses a trace JSONL dump. Blank lines are skipped.
///
/// # Errors
///
/// Returns a [`JsonlError`] naming the first malformed line.
pub fn traces_from_jsonl(text: &str) -> Result<Vec<Trace>, JsonlError> {
    text.lines()
        .enumerate()
        .filter(|(_, line)| !line.trim().is_empty())
        .map(|(i, line)| serde_json::from_str(line).map_err(|e| JsonlError::at_line(i + 1, &e)))
        .collect()
}

/// Writes traces as JSONL to `path`, validating every span name
/// against [`crate::registry`] first.
///
/// # Errors
///
/// Fails with `InvalidData` when a span name is not registered, and
/// propagates filesystem errors.
pub fn write_traces_jsonl(path: &Path, traces: &[Trace]) -> std::io::Result<()> {
    crate::registry::validate_traces(traces)
        .map_err(|e| std::io::Error::new(std::io::ErrorKind::InvalidData, e))?;
    let mut file = std::fs::File::create(path)?;
    file.write_all(traces_to_jsonl(traces).as_bytes())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn trace_ids_are_pure_and_distinct_within_a_tenant() {
        assert_eq!(TraceId::derive(3, 17), TraceId::derive(3, 17));
        let mut seen = std::collections::BTreeSet::new();
        for tenant in 0..4u64 {
            for seq in 0..256u64 {
                assert!(seen.insert(TraceId::derive(tenant, seq)), "collision");
            }
        }
    }

    #[test]
    fn sampler_is_deterministic_and_rate_shaped() {
        let sampler = TraceSampler::rate(42, 0.25);
        let kept: Vec<bool> = (0..4096u64)
            .map(|s| sampler.keeps(TraceId::derive(0, s)))
            .collect();
        let again: Vec<bool> = (0..4096u64)
            .map(|s| sampler.keeps(TraceId::derive(0, s)))
            .collect();
        assert_eq!(kept, again);
        let frac = kept.iter().filter(|&&k| k).count() as f64 / kept.len() as f64;
        assert!((frac - 0.25).abs() < 0.05, "kept fraction {frac}");
        assert!((0..64u64).all(|s| TraceSampler::always().keeps(TraceId::derive(1, s))));
        assert!(!(0..64u64).any(|s| TraceSampler::never().keeps(TraceId::derive(1, s))));
    }

    fn build_one(tracer: &mut Tracer, tenant: u64, seq: u64) {
        let root = tracer
            .begin(
                tenant,
                seq,
                "serve.request",
                SpanLayer::Request,
                SimTime::from_millis(10),
            )
            .expect("always-sampled");
        let q = tracer
            .push_span(
                tenant,
                seq,
                root,
                SpanLayer::Queue,
                "serve.queue",
                ClockDomain::Serve,
                SimTime::from_millis(10),
                SimTime::from_millis(30),
            )
            .unwrap();
        tracer.event(
            tenant,
            seq,
            q,
            SimTime::from_millis(30),
            SpanEvent::DeadlineMiss,
        );
        let mut scope = tracer.scope(tenant, seq, root).unwrap();
        let hop = scope.push_span(
            SpanLayer::Hop,
            "hop.conv",
            ClockDomain::Fabric,
            SimTime::ZERO,
            SimTime::from_millis(2),
        );
        scope.event(
            hop,
            SimTime::from_millis(2),
            SpanEvent::Messages { sent: 5 },
        );
        tracer.finish(tenant, seq, SimTime::from_millis(70));
    }

    #[test]
    fn tracer_builds_a_span_tree_and_closes_the_root() {
        let mut tracer = Tracer::new(TraceSampler::always());
        build_one(&mut tracer, 2, 9);
        assert!(!tracer.is_active(2, 9));
        let traces = tracer.take_finished();
        assert_eq!(traces.len(), 1);
        let t = &traces[0];
        assert_eq!(t.id, TraceId::derive(2, 9));
        let root = t.root().unwrap();
        assert_eq!(root.duration(), SimDuration::from_millis(60));
        assert_eq!(t.children(root.id).count(), 2);
        let hop = t.spans.iter().find(|s| s.layer == SpanLayer::Hop).unwrap();
        assert_eq!(hop.clock, ClockDomain::Fabric);
        assert_eq!(hop.events.len(), 1);
    }

    #[test]
    fn unsampled_requests_are_free_no_ops() {
        let mut tracer = Tracer::new(TraceSampler::never());
        assert!(tracer
            .begin(0, 0, "serve.request", SpanLayer::Request, SimTime::ZERO)
            .is_none());
        assert!(tracer
            .push_span(
                0,
                0,
                SpanId(0),
                SpanLayer::Queue,
                "q",
                ClockDomain::Serve,
                SimTime::ZERO,
                SimTime::ZERO,
            )
            .is_none());
        assert!(tracer.scope(0, 0, SpanId(0)).is_none());
        tracer.finish(0, 0, SimTime::ZERO);
        assert!(tracer.take_finished().is_empty());
    }

    #[test]
    fn take_finished_sorts_by_tenant_then_seq() {
        let mut tracer = Tracer::new(TraceSampler::always());
        build_one(&mut tracer, 1, 5);
        build_one(&mut tracer, 0, 7);
        build_one(&mut tracer, 0, 2);
        let keys: Vec<(u64, u64)> = tracer
            .take_finished()
            .iter()
            .map(|t| (t.tenant, t.seq))
            .collect();
        assert_eq!(keys, vec![(0, 2), (0, 7), (1, 5)]);
    }

    #[test]
    fn trace_jsonl_round_trips_and_is_stable() {
        let mut tracer = Tracer::new(TraceSampler::always());
        build_one(&mut tracer, 0, 0);
        build_one(&mut tracer, 1, 1);
        let traces = tracer.take_finished();
        let text = traces_to_jsonl(&traces);
        assert_eq!(text.lines().count(), 2);
        let back = traces_from_jsonl(&text).unwrap();
        assert_eq!(back, traces);
        assert_eq!(traces_to_jsonl(&back), text);
    }

    #[test]
    fn malformed_trace_line_is_a_typed_error_with_line_number() {
        let err = traces_from_jsonl("\n{\"id\":1,").unwrap_err();
        assert_eq!(err.line(), 2);
        assert!(!err.to_string().is_empty());
    }
}
