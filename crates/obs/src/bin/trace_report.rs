//! `trace-report`: offline analysis of a trace JSONL dump.
//!
//! ```text
//! trace-report <traces.jsonl> [--top N]
//! ```
//!
//! Prints a flame-style per-layer self-time rollup and a critical-path
//! summary (the most frequent root-to-leaf serve-clock chains, with the
//! slowest individual request per chain). Reads only the dump — no
//! clocks, no randomness — so the report is a pure function of its
//! input.

use std::process::ExitCode;
use zeiot_obs::analysis::{attribution, critical_path, LayerRollup};
use zeiot_obs::trace::{traces_from_jsonl, SpanLayer, Trace};

fn usage() -> ExitCode {
    eprintln!("usage: trace-report <traces.jsonl> [--top N]");
    ExitCode::from(2)
}

fn main() -> ExitCode {
    let mut args: Vec<String> = std::env::args().skip(1).collect();
    let mut top = 5usize;
    if let Some(pos) = args.iter().position(|a| a == "--top") {
        if pos + 1 >= args.len() {
            return usage();
        }
        match args[pos + 1].parse() {
            Ok(n) => top = n,
            Err(_) => return usage(),
        }
        args.drain(pos..=pos + 1);
    }
    if args.len() != 1 || args[0].starts_with("--") {
        return usage();
    }
    let text = match std::fs::read_to_string(&args[0]) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("trace-report: cannot read {}: {e}", args[0]);
            return ExitCode::FAILURE;
        }
    };
    let traces = match traces_from_jsonl(&text) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("trace-report: {}: {e}", args[0]);
            return ExitCode::FAILURE;
        }
    };
    // A dump with names outside the registry is not analyzable — the
    // rollup would silently misattribute it — so reject it typed.
    if let Err(e) = zeiot_obs::registry::validate_traces(&traces) {
        eprintln!("trace-report: {}: {e}", args[0]);
        return ExitCode::FAILURE;
    }
    print!("{}", report(&traces, top));
    ExitCode::SUCCESS
}

/// Renders the full report (pure, unit-testable).
fn report(traces: &[Trace], top: usize) -> String {
    use std::fmt::Write;
    let mut out = String::new();
    let rollup = LayerRollup::of(traces);
    let _ = writeln!(out, "traces: {}", rollup.traces);
    let total_spans: u64 = rollup.spans.iter().sum();
    let _ = writeln!(out, "spans:  {total_spans}");
    let serve_total: f64 = rollup.self_time.iter().map(|d| d.as_secs_f64()).sum();
    let _ = writeln!(out, "\nper-layer self time (serve clock):");
    for (i, layer) in SpanLayer::all().iter().enumerate() {
        if rollup.spans[i] == 0 {
            continue;
        }
        let secs = rollup.self_time[i].as_secs_f64();
        let share = if serve_total > 0.0 {
            100.0 * secs / serve_total
        } else {
            0.0
        };
        let bar = "#".repeat((share / 5.0).round() as usize);
        let _ = writeln!(
            out,
            "  {:<8} {:>10.6}s {:>5.1}% {:>6} spans  {bar}",
            layer.metric_suffix(),
            secs,
            share,
            rollup.spans[i],
        );
    }
    let _ = writeln!(
        out,
        "\nfabric: {} hop messages, {:.6}s retransmit backoff (fabric clock)",
        rollup.hop_messages,
        rollup.retransmit.as_secs_f64()
    );

    // Critical-path signatures: group traces by the name chain that
    // bounded their completion.
    let mut chains: std::collections::BTreeMap<String, (u64, f64, (u64, u64))> =
        std::collections::BTreeMap::new();
    for trace in traces {
        let path = critical_path(trace);
        if path.is_empty() {
            continue;
        }
        let sig = path
            .iter()
            .map(|s| s.name.as_str())
            .collect::<Vec<_>>()
            .join(" -> ");
        let latency = attribution(trace).total().as_secs_f64();
        let entry = chains.entry(sig).or_insert((0, 0.0, (0, 0)));
        entry.0 += 1;
        if latency >= entry.1 {
            entry.1 = latency;
            entry.2 = (trace.tenant, trace.seq);
        }
    }
    let mut ranked: Vec<_> = chains.iter().collect();
    ranked.sort_by(|a, b| b.1 .0.cmp(&a.1 .0).then_with(|| a.0.cmp(b.0)));
    let _ = writeln!(out, "\ncritical paths (top {top} by frequency):");
    for (sig, (count, worst, (tenant, seq))) in ranked.into_iter().take(top) {
        let _ = writeln!(
            out,
            "  {count:>6}x  worst {worst:.6}s (tenant {tenant}, seq {seq})  {sig}"
        );
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use zeiot_core::time::SimTime;
    use zeiot_obs::trace::{ClockDomain, SpanEvent, TraceSampler, Tracer};

    fn sample_traces() -> Vec<Trace> {
        let mut tracer = Tracer::new(TraceSampler::always());
        for seq in 0..3u64 {
            let root = tracer
                .begin(
                    0,
                    seq,
                    "serve.request",
                    SpanLayer::Request,
                    SimTime::from_millis(seq * 10),
                )
                .unwrap();
            tracer
                .push_span(
                    0,
                    seq,
                    root,
                    SpanLayer::Queue,
                    "serve.queue",
                    ClockDomain::Serve,
                    SimTime::from_millis(seq * 10),
                    SimTime::from_millis(seq * 10 + 5),
                )
                .unwrap();
            let mut scope = tracer.scope(0, seq, root).unwrap();
            let hop = scope.push_span(
                SpanLayer::Hop,
                "hop.conv",
                ClockDomain::Fabric,
                SimTime::ZERO,
                SimTime::from_millis(1),
            );
            scope.event(
                hop,
                SimTime::from_millis(1),
                SpanEvent::Messages { sent: 4 },
            );
            tracer.finish(0, seq, SimTime::from_millis(seq * 10 + 20));
        }
        tracer.take_finished()
    }

    #[test]
    fn report_is_a_pure_function_of_the_traces() {
        let traces = sample_traces();
        let a = report(&traces, 5);
        let b = report(&traces, 5);
        assert_eq!(a, b);
        assert!(a.contains("traces: 3"));
        assert!(a.contains("12 hop messages"));
        assert!(a.contains("serve.request -> serve.queue"));
    }

    #[test]
    fn empty_dump_reports_zero_traces() {
        let text = report(&[], 5);
        assert!(text.contains("traces: 0"));
    }
}
