//! Metric labels: who a measurement is about.
//!
//! Every metric family in the [`Recorder`](crate::Recorder) is keyed by
//! `(name, Label)`, so one logical metric (say `microdeep.tx_messages`)
//! fans out into per-node instances that can still be aggregated by name.

use serde::{Deserialize, Serialize};
use std::fmt;
use zeiot_core::id::{DeviceId, NodeId};

/// The entity a metric sample is attributed to.
///
/// Ordering is derived so labels can key `BTreeMap`s; the variant order
/// (global, node, device, subsystem) also fixes the display order in
/// console summaries.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Serialize, Deserialize)]
pub enum Label {
    /// Not attributed to any particular entity.
    Global,
    /// A mesh sensor node.
    Node {
        /// Raw node id (`NodeId::raw`).
        id: u32,
    },
    /// A backscatter device.
    Device {
        /// Raw device id (`DeviceId::raw`).
        id: u32,
    },
    /// A named subsystem (e.g. `"mac"`, `"engine"`).
    Part {
        /// Subsystem name.
        name: String,
    },
}

impl Label {
    /// Label for a mesh node.
    pub fn node(id: NodeId) -> Self {
        Label::Node { id: id.raw() }
    }

    /// Label for a backscatter device.
    pub fn device(id: DeviceId) -> Self {
        Label::Device { id: id.raw() }
    }

    /// Label for a named subsystem.
    pub fn part(name: impl Into<String>) -> Self {
        Label::Part { name: name.into() }
    }

    /// The node id, if this labels a node.
    pub fn as_node(&self) -> Option<NodeId> {
        match self {
            Label::Node { id } => Some(NodeId::new(*id)),
            _ => None,
        }
    }

    /// The device id, if this labels a device.
    pub fn as_device(&self) -> Option<DeviceId> {
        match self {
            Label::Device { id } => Some(DeviceId::new(*id)),
            _ => None,
        }
    }
}

impl fmt::Display for Label {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Label::Global => f.write_str("global"),
            Label::Node { id } => write!(f, "node-{id}"),
            Label::Device { id } => write!(f, "dev-{id}"),
            Label::Part { name } => f.write_str(name),
        }
    }
}

impl From<NodeId> for Label {
    fn from(id: NodeId) -> Self {
        Label::node(id)
    }
}

impl From<DeviceId> for Label {
    fn from(id: DeviceId) -> Self {
        Label::device(id)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_forms() {
        assert_eq!(Label::Global.to_string(), "global");
        assert_eq!(Label::node(NodeId::new(3)).to_string(), "node-3");
        assert_eq!(Label::device(DeviceId::new(7)).to_string(), "dev-7");
        assert_eq!(Label::part("mac").to_string(), "mac");
    }

    #[test]
    fn ordering_groups_by_kind() {
        let mut labels = [
            Label::part("mac"),
            Label::node(NodeId::new(1)),
            Label::Global,
            Label::node(NodeId::new(0)),
        ];
        labels.sort();
        assert_eq!(labels[0], Label::Global);
        assert_eq!(labels[1], Label::node(NodeId::new(0)));
        assert_eq!(labels[2], Label::node(NodeId::new(1)));
    }

    #[test]
    fn accessors_round_trip() {
        assert_eq!(Label::node(NodeId::new(5)).as_node(), Some(NodeId::new(5)));
        assert_eq!(Label::Global.as_node(), None);
        assert_eq!(
            Label::device(DeviceId::new(2)).as_device(),
            Some(DeviceId::new(2))
        );
    }

    #[test]
    fn serde_round_trip() {
        for label in [
            Label::Global,
            Label::node(NodeId::new(9)),
            Label::part("engine"),
        ] {
            let json = serde_json::to_string(&label).unwrap();
            let back: Label = serde_json::from_str(&json).unwrap();
            assert_eq!(back, label);
        }
    }
}
