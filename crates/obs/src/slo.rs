//! Declarative service-level objectives with virtual-time burn-rate
//! windows.
//!
//! An [`SloSpec`] names a target — p99 latency, deadline-miss rate, or
//! shed rate — a scope ([`Label`]), an evaluation window, and a **burn
//! threshold**. Evaluation runs over per-window [`Snapshot`]s (each
//! covering exactly one window of virtual time, not cumulative): for
//! each window the observed value is divided by the target to get a
//! *burn rate* — 1.0 means consuming error budget exactly as fast as
//! the objective allows, 2.0 means twice as fast. A window whose burn
//! rate reaches the spec's threshold emits a structured [`SloBreach`].
//!
//! Everything is pure arithmetic over snapshots on the virtual clock,
//! so breach streams are byte-reproducible across runs and thread
//! counts.

use crate::label::Label;
use crate::snapshot::Snapshot;
use serde::{Deserialize, Serialize};
use zeiot_core::time::{SimDuration, SimTime};

/// What an [`SloSpec`] constrains.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum SloObjective {
    /// Window p99 of the `serve.latency` histogram must stay at or
    /// below `target` seconds.
    P99LatencySecs {
        /// Latency ceiling in seconds.
        target: f64,
    },
    /// `serve.deadline_miss / serve.served` per window must stay at or
    /// below `target`.
    DeadlineMissRate {
        /// Allowed miss fraction in `[0, 1]`.
        target: f64,
    },
    /// Shed requests over offered requests per window must stay at or
    /// below `target`.
    ShedRate {
        /// Allowed shed fraction in `[0, 1]`.
        target: f64,
    },
}

impl SloObjective {
    /// The target value of the objective.
    pub fn target(&self) -> f64 {
        match *self {
            SloObjective::P99LatencySecs { target }
            | SloObjective::DeadlineMissRate { target }
            | SloObjective::ShedRate { target } => target,
        }
    }

    /// Stable kind tag for reports.
    pub fn kind(&self) -> &'static str {
        match self {
            SloObjective::P99LatencySecs { .. } => "p99_latency_secs",
            SloObjective::DeadlineMissRate { .. } => "deadline_miss_rate",
            SloObjective::ShedRate { .. } => "shed_rate",
        }
    }
}

/// A declarative SLO: objective + scope + burn-rate window.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SloSpec {
    /// Spec name, carried into breach events.
    pub name: String,
    /// Scope: a specific label, or [`Label::Global`] to aggregate
    /// counters across all labels (p99 objectives then require a
    /// `Global`-labeled histogram).
    pub scope: Label,
    /// The objective and its target.
    pub objective: SloObjective,
    /// Virtual-time width each snapshot window covers (metadata for
    /// reports; the caller windows the snapshots).
    pub window: SimDuration,
    /// Burn rate at or above which a window breaches (1.0 = budget
    /// consumed exactly at the allowed rate).
    pub burn_threshold: f64,
}

/// One window whose burn rate reached the spec's threshold.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SloBreach {
    /// Name of the breached spec.
    pub spec: String,
    /// Objective kind tag.
    pub objective: String,
    /// End of the breaching window (virtual time).
    pub window_end: SimTime,
    /// Observed value in the window.
    pub observed: f64,
    /// The spec's target.
    pub target: f64,
    /// `observed / target`.
    pub burn_rate: f64,
}

fn counter(snapshot: &Snapshot, name: &str, scope: &Label) -> u64 {
    match scope {
        Label::Global => snapshot.counter_total(name),
        other => snapshot.counter_value(name, other),
    }
}

fn shed_total(snapshot: &Snapshot, scope: &Label) -> u64 {
    counter(snapshot, "serve.shed.shard_queue_full", scope)
        + counter(snapshot, "serve.shed.tenant_limit", scope)
}

impl SloSpec {
    /// The observed value of this spec's objective in one window
    /// snapshot, or `None` when the window has no eligible traffic
    /// (no served requests for latency/miss objectives, nothing
    /// offered for shed objectives).
    pub fn observe(&self, snapshot: &Snapshot) -> Option<f64> {
        match self.objective {
            SloObjective::P99LatencySecs { .. } => snapshot
                .histograms
                .iter()
                .find(|h| h.name == "serve.latency" && h.label == self.scope)
                .map(|h| h.summary.p99),
            SloObjective::DeadlineMissRate { .. } => {
                let served = counter(snapshot, "serve.served", &self.scope);
                if served == 0 {
                    return None;
                }
                let missed = counter(snapshot, "serve.deadline_miss", &self.scope);
                Some(missed as f64 / served as f64)
            }
            SloObjective::ShedRate { .. } => {
                let offered = counter(snapshot, "serve.offered", &self.scope);
                if offered == 0 {
                    return None;
                }
                Some(shed_total(snapshot, &self.scope) as f64 / offered as f64)
            }
        }
    }

    /// Evaluates the spec over per-window snapshots (each paired with
    /// its window-end virtual time), returning one [`SloBreach`] per
    /// window whose burn rate reaches the threshold.
    ///
    /// A zero or negative target treats **any** nonzero observation as
    /// an immediate breach (infinite burn is reported as
    /// `observed / f64::MIN_POSITIVE`-free: burn is set to
    /// `f64::INFINITY`).
    pub fn evaluate(&self, windows: &[(SimTime, Snapshot)]) -> Vec<SloBreach> {
        let mut out = Vec::new();
        for (end, snapshot) in windows {
            let Some(observed) = self.observe(snapshot) else {
                continue;
            };
            let target = self.objective.target();
            let burn = if target > 0.0 {
                observed / target
            } else if observed > 0.0 {
                f64::INFINITY
            } else {
                0.0
            };
            if burn >= self.burn_threshold {
                out.push(SloBreach {
                    spec: self.name.clone(),
                    objective: self.objective.kind().to_string(),
                    window_end: *end,
                    observed,
                    target,
                    burn_rate: burn,
                });
            }
        }
        out
    }
}

/// Evaluates many specs over the same windows, breaches ordered by
/// (spec order, window order) — deterministic for a fixed input.
pub fn evaluate_all(specs: &[SloSpec], windows: &[(SimTime, Snapshot)]) -> Vec<SloBreach> {
    specs.iter().flat_map(|s| s.evaluate(windows)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::recorder::Recorder;

    fn window(served: u64, missed: u64, offered: u64, shed: u64, p99: f64) -> Snapshot {
        let mut rec = Recorder::new();
        let label = Label::part("motion");
        rec.add("serve.served", label.clone(), served);
        rec.add("serve.deadline_miss", label.clone(), missed);
        rec.add("serve.offered", label.clone(), offered);
        rec.add("serve.shed.shard_queue_full", label.clone(), shed);
        for _ in 0..served.max(1) {
            rec.observe("serve.latency", label.clone(), p99);
        }
        rec.snapshot()
    }

    fn spec(objective: SloObjective, burn_threshold: f64) -> SloSpec {
        SloSpec {
            name: "motion-slo".into(),
            scope: Label::part("motion"),
            objective,
            window: SimDuration::from_secs(1),
            burn_threshold,
        }
    }

    #[test]
    fn miss_rate_burn_breaches_only_hot_windows() {
        let s = spec(SloObjective::DeadlineMissRate { target: 0.05 }, 2.0);
        let windows = vec![
            (SimTime::from_secs(1), window(100, 2, 100, 0, 0.1)), // burn 0.4
            (SimTime::from_secs(2), window(100, 20, 100, 0, 0.1)), // burn 4.0
            (SimTime::from_secs(3), window(0, 0, 0, 0, 0.0)),     // idle: skipped
        ];
        let breaches = s.evaluate(&windows);
        assert_eq!(breaches.len(), 1);
        assert_eq!(breaches[0].window_end, SimTime::from_secs(2));
        assert!((breaches[0].burn_rate - 4.0).abs() < 1e-12);
        assert_eq!(breaches[0].objective, "deadline_miss_rate");
    }

    #[test]
    fn shed_rate_uses_offered_as_denominator() {
        let s = spec(SloObjective::ShedRate { target: 0.01 }, 1.0);
        let windows = vec![(SimTime::from_secs(1), window(95, 0, 100, 5, 0.1))];
        let breaches = s.evaluate(&windows);
        assert_eq!(breaches.len(), 1);
        assert!((breaches[0].observed - 0.05).abs() < 1e-12);
    }

    #[test]
    fn p99_objective_reads_the_window_histogram() {
        let s = spec(SloObjective::P99LatencySecs { target: 0.25 }, 1.0);
        let ok = vec![(SimTime::from_secs(1), window(10, 0, 10, 0, 0.2))];
        assert!(s.evaluate(&ok).is_empty());
        let slow = vec![(SimTime::from_secs(1), window(10, 0, 10, 0, 0.5))];
        let breaches = s.evaluate(&slow);
        assert_eq!(breaches.len(), 1);
        assert!((breaches[0].burn_rate - 2.0).abs() < 1e-12);
    }

    #[test]
    fn global_scope_aggregates_counters_across_labels() {
        let mut rec = Recorder::new();
        rec.add("serve.served", Label::part("a"), 50);
        rec.add("serve.served", Label::part("b"), 50);
        rec.add("serve.deadline_miss", Label::part("b"), 10);
        let s = SloSpec {
            name: "fleet".into(),
            scope: Label::Global,
            objective: SloObjective::DeadlineMissRate { target: 0.05 },
            window: SimDuration::from_secs(1),
            burn_threshold: 1.0,
        };
        let breaches = s.evaluate(&[(SimTime::from_secs(1), rec.snapshot())]);
        assert_eq!(breaches.len(), 1);
        assert!((breaches[0].observed - 0.1).abs() < 1e-12);
    }

    #[test]
    fn evaluation_is_reproducible() {
        let s = spec(SloObjective::DeadlineMissRate { target: 0.05 }, 1.0);
        let windows = vec![
            (SimTime::from_secs(1), window(100, 30, 100, 0, 0.1)),
            (SimTime::from_secs(2), window(100, 7, 100, 0, 0.1)),
        ];
        let a = s.evaluate(&windows);
        let b = s.evaluate(&windows);
        assert_eq!(a, b);
        assert_eq!(a.len(), 2);
    }

    #[test]
    fn zero_target_breaches_on_any_violation() {
        let s = spec(SloObjective::DeadlineMissRate { target: 0.0 }, 1.0);
        let windows = vec![(SimTime::from_secs(1), window(100, 1, 100, 0, 0.1))];
        let breaches = s.evaluate(&windows);
        assert_eq!(breaches.len(), 1);
        assert!(breaches[0].burn_rate.is_infinite());
    }
}
