//! Trace analysis: per-layer latency attribution and critical-path
//! extraction over a [`Trace`] span tree.
//!
//! # The attribution invariant
//!
//! The serving layer constructs serve-clock spans that *tile* their
//! parents: the root covers `[arrival, completion]`, its queue and batch
//! children partition it, and the batch's overhead/infer children sit
//! inside the batch span. [`attribution`] therefore computes **self
//! time** — a span's duration minus its serve-clock children's durations
//! — and the per-layer totals sum exactly to the end-to-end latency.
//! [`Attribution::total`] reconstructs that sum and the invariant test
//! in `zeiot-serve` asserts it equals the root duration for every traced
//! request.
//!
//! Fabric-clock spans ([`ClockDomain::Fabric`]) are transport
//! annotations living on the fault fabric's own clock (which advances
//! only on retransmission backoff); they are **excluded** from the
//! serve-time tiling and reported separately as hop message counts and
//! fabric-clock retransmit time.

use crate::trace::{ClockDomain, Span, SpanEvent, SpanLayer, Trace};
use zeiot_core::time::SimDuration;

/// Per-layer latency attribution of one trace.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct Attribution {
    /// Serve-clock self time of the root request span (zero when the
    /// request's children tile it fully; the whole latency for sheds).
    pub request: SimDuration,
    /// Serve-clock time spent queued awaiting dispatch.
    pub queue: SimDuration,
    /// Serve-clock time in the micro-batch: dispatch overhead plus
    /// waiting on other members' service slots.
    pub batch: SimDuration,
    /// Serve-clock time of the request's own inference slot.
    pub infer: SimDuration,
    /// Cross-node messages transported by fabric-clock hop spans
    /// (a count, not a duration — see the module docs).
    pub hop_messages: u64,
    /// Fabric-clock time consumed by retransmission backoff within this
    /// trace's hop spans.
    pub retransmit: SimDuration,
}

impl Attribution {
    /// Sum of the serve-clock components; equals the root span's
    /// duration by the tiling invariant.
    pub fn total(&self) -> SimDuration {
        self.request + self.queue + self.batch + self.infer
    }

    /// The serve-clock component for `layer` (`None` for the fabric
    /// layers, which are not durations in the serve clock).
    pub fn serve_component(&self, layer: SpanLayer) -> Option<SimDuration> {
        match layer {
            SpanLayer::Request => Some(self.request),
            SpanLayer::Queue => Some(self.queue),
            SpanLayer::Batch => Some(self.batch),
            SpanLayer::Infer => Some(self.infer),
            SpanLayer::Hop | SpanLayer::Mac => None,
        }
    }
}

/// Serve-clock self time of `span`: duration minus serve-clock
/// children's durations (saturating at zero, so a malformed tree can't
/// underflow).
fn self_time(trace: &Trace, span: &Span) -> SimDuration {
    let child_total: u64 = trace
        .children(span.id)
        .filter(|c| c.clock == ClockDomain::Serve)
        .map(|c| c.duration().as_nanos())
        .sum();
    SimDuration::from_nanos(span.duration().as_nanos().saturating_sub(child_total))
}

/// Computes the per-layer attribution of one trace (see module docs).
pub fn attribution(trace: &Trace) -> Attribution {
    let mut out = Attribution::default();
    for span in &trace.spans {
        match span.clock {
            ClockDomain::Serve => {
                let dt = self_time(trace, span);
                match span.layer {
                    SpanLayer::Request => out.request += dt,
                    SpanLayer::Queue => out.queue += dt,
                    SpanLayer::Batch => out.batch += dt,
                    SpanLayer::Infer => out.infer += dt,
                    // MAC roots use the sim clock; they attribute like
                    // requests (self time only).
                    SpanLayer::Mac => out.request += dt,
                    SpanLayer::Hop => {}
                }
            }
            ClockDomain::Fabric => {
                out.retransmit += span.duration();
                for ev in &span.events {
                    if let SpanEvent::Messages { sent } = ev.event {
                        out.hop_messages += sent;
                    }
                }
            }
        }
    }
    out
}

/// One step of a critical path.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CriticalStep {
    /// The span on the path.
    pub span: crate::trace::SpanId,
    /// Its layer.
    pub layer: SpanLayer,
    /// Its name.
    pub name: String,
    /// Serve-clock self time this step contributes.
    pub self_time: SimDuration,
}

/// Extracts the critical path: the root-to-leaf chain of serve-clock
/// spans that bounds the request's completion.
///
/// At each node, the child whose `(end, start, id)` is greatest is the
/// one the completion waited on — a total order, so the walk is
/// deterministic even among ties. Fabric-clock children never appear on
/// the path (they are a different clock).
pub fn critical_path(trace: &Trace) -> Vec<CriticalStep> {
    let mut path = Vec::new();
    let Some(root) = trace.root() else {
        return path;
    };
    let mut cursor = root.id;
    while let Some(span) = trace.span(cursor) {
        path.push(CriticalStep {
            span: span.id,
            layer: span.layer,
            name: span.name.clone(),
            self_time: self_time(trace, span),
        });
        let next = trace
            .children(cursor)
            .filter(|c| c.clock == ClockDomain::Serve)
            .max_by_key(|c| (c.end, c.start, c.id));
        match next {
            Some(c) => cursor = c.id,
            None => break,
        }
    }
    path
}

/// Flame-style per-layer rollup over many traces: serve-clock self time
/// and span counts per [`SpanLayer`], plus fabric-side totals.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct LayerRollup {
    /// Total serve-clock self time per layer, indexed as
    /// [`SpanLayer::all`].
    pub self_time: [SimDuration; 6],
    /// Span count per layer, indexed as [`SpanLayer::all`].
    pub spans: [u64; 6],
    /// Total hop messages across all traces.
    pub hop_messages: u64,
    /// Total fabric-clock retransmit time across all traces.
    pub retransmit: SimDuration,
    /// Number of traces rolled up.
    pub traces: u64,
}

impl LayerRollup {
    /// Accumulates one trace into the rollup.
    pub fn add(&mut self, trace: &Trace) {
        self.traces += 1;
        for span in &trace.spans {
            let idx = SpanLayer::all()
                .iter()
                .position(|l| *l == span.layer)
                .unwrap_or(0);
            self.spans[idx] += 1;
            if span.clock == ClockDomain::Serve {
                self.self_time[idx] += self_time(trace, span);
            }
        }
        let attr = attribution(trace);
        self.hop_messages += attr.hop_messages;
        self.retransmit += attr.retransmit;
    }

    /// Rolls up a batch of traces.
    pub fn of(traces: &[Trace]) -> Self {
        let mut out = Self::default();
        for t in traces {
            out.add(t);
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trace::{SpanLayer, TraceSampler, Tracer};
    use zeiot_core::time::SimTime;

    /// Builds the canonical serve span tiling: root [0,100ms],
    /// queue [0,40ms], batch [40,100ms] with overhead [40,50ms] and
    /// infer [70,100ms] children, plus a fabric hop span.
    fn tiled_trace() -> Trace {
        let ms = SimTime::from_millis;
        let mut tracer = Tracer::new(TraceSampler::always());
        let root = tracer
            .begin(0, 0, "serve.request", SpanLayer::Request, ms(0))
            .unwrap();
        tracer
            .push_span(
                0,
                0,
                root,
                SpanLayer::Queue,
                "serve.queue",
                ClockDomain::Serve,
                ms(0),
                ms(40),
            )
            .unwrap();
        let batch = tracer
            .push_span(
                0,
                0,
                root,
                SpanLayer::Batch,
                "serve.batch",
                ClockDomain::Serve,
                ms(40),
                ms(100),
            )
            .unwrap();
        tracer
            .push_span(
                0,
                0,
                batch,
                SpanLayer::Batch,
                "serve.batch_overhead",
                ClockDomain::Serve,
                ms(40),
                ms(50),
            )
            .unwrap();
        let infer = tracer
            .push_span(
                0,
                0,
                batch,
                SpanLayer::Infer,
                "serve.infer",
                ClockDomain::Serve,
                ms(70),
                ms(100),
            )
            .unwrap();
        let mut scope = tracer.scope(0, 0, infer).unwrap();
        let hop = scope.push_span(
            SpanLayer::Hop,
            "hop.conv",
            ClockDomain::Fabric,
            ms(0),
            ms(3),
        );
        scope.event(hop, ms(3), SpanEvent::Messages { sent: 12 });
        scope.event(hop, ms(3), SpanEvent::Retransmit { retries: 2 });
        tracer.finish(0, 0, ms(100));
        tracer.take_finished().remove(0)
    }

    #[test]
    fn attribution_sums_to_end_to_end_latency() {
        let trace = tiled_trace();
        let attr = attribution(&trace);
        assert_eq!(attr.queue, SimDuration::from_millis(40));
        // Batch self time: 60ms span − 10ms overhead child − 30ms infer
        // child = 20ms waiting on other members, plus the 10ms overhead
        // child (also layer Batch) = 30ms.
        assert_eq!(attr.batch, SimDuration::from_millis(30));
        assert_eq!(attr.infer, SimDuration::from_millis(30));
        assert_eq!(attr.request, SimDuration::ZERO);
        assert_eq!(attr.total(), trace.root().unwrap().duration());
        assert_eq!(attr.hop_messages, 12);
        assert_eq!(attr.retransmit, SimDuration::from_millis(3));
    }

    #[test]
    fn critical_path_follows_latest_serve_child() {
        let trace = tiled_trace();
        let path = critical_path(&trace);
        let names: Vec<&str> = path.iter().map(|s| s.name.as_str()).collect();
        // Fabric hop is excluded; the path ends at the infer slot that
        // bounded completion.
        assert_eq!(names, vec!["serve.request", "serve.batch", "serve.infer"]);
        let total: u64 = path.iter().map(|s| s.self_time.as_nanos()).sum();
        // Path self times: request 0 (fully tiled) + batch 20ms (60 −
        // 10 overhead − 30 infer) + infer 30ms. The queue branch and
        // the off-path overhead child are excluded.
        assert_eq!(total, SimDuration::from_millis(50).as_nanos());
    }

    #[test]
    fn rollup_accumulates_per_layer() {
        let trace = tiled_trace();
        let rollup = LayerRollup::of(&[trace.clone(), trace]);
        assert_eq!(rollup.traces, 2);
        let layers = SpanLayer::all();
        let infer_idx = layers.iter().position(|l| *l == SpanLayer::Infer).unwrap();
        assert_eq!(rollup.spans[infer_idx], 2);
        assert_eq!(rollup.self_time[infer_idx], SimDuration::from_millis(60));
        assert_eq!(rollup.hop_messages, 24);
    }

    #[test]
    fn empty_trace_yields_empty_path_and_zero_attribution() {
        let trace = Trace {
            id: crate::trace::TraceId::derive(0, 0),
            tenant: 0,
            seq: 0,
            spans: Vec::new(),
        };
        assert!(critical_path(&trace).is_empty());
        assert_eq!(attribution(&trace), Attribution::default());
    }

    #[test]
    fn shed_request_attributes_everything_to_the_root() {
        let mut tracer = Tracer::new(TraceSampler::always());
        let root = tracer
            .begin(1, 2, "serve.request", SpanLayer::Request, SimTime::ZERO)
            .unwrap();
        tracer.event(
            1,
            2,
            root,
            SimTime::ZERO,
            SpanEvent::Shed {
                reason: "shard_queue_full".into(),
            },
        );
        tracer.finish(1, 2, SimTime::ZERO);
        let trace = tracer.take_finished().remove(0);
        let attr = attribution(&trace);
        assert_eq!(attr.total(), SimDuration::ZERO);
        assert_eq!(critical_path(&trace).len(), 1);
    }
}
