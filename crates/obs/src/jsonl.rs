//! JSON Lines export of a [`Snapshot`].
//!
//! Each line is one self-describing record (externally tagged by kind), so
//! dumps can be streamed, grepped, and re-loaded without reading the whole
//! file. Time-series are expanded to one record per point.
//!
//! Record schema (one JSON object per line):
//!
//! ```text
//! {"Counter":{"name":"mac.grants","label":"Global","value":12}}
//! {"Gauge":{"name":"microdeep.replica_drift","label":{"Node":{"id":3}},"value":0.01}}
//! {"Histogram":{"name":"...","label":...,"summary":{...}}}
//! {"SeriesPoint":{"name":"energy.capacitor_v","label":...,"time":1000000,"value":2.4}}
//! {"Trace":{"time":1000000,"severity":"Warn","label":...,"message":"brownout"}}
//! ```

use crate::label::Label;
use crate::recorder::Severity;
use crate::snapshot::Snapshot;
use serde::{Deserialize, Serialize};
use std::io::Write;
use std::path::Path;
use zeiot_core::time::SimTime;
use zeiot_sim::metrics::HistogramSummary;

/// Typed parse failure for JSONL dumps: names the 1-based line that was
/// truncated or garbage, so analysis tooling can report (not panic on)
/// corrupted dumps.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JsonlError {
    line: usize,
    message: String,
}

impl JsonlError {
    /// Wraps a serde failure with its 1-based line number.
    pub fn at_line(line: usize, cause: &dyn std::fmt::Display) -> Self {
        Self {
            line,
            message: cause.to_string(),
        }
    }

    /// The 1-based line number of the malformed line.
    pub fn line(&self) -> usize {
        self.line
    }

    /// The underlying parser message.
    pub fn message(&self) -> &str {
        &self.message
    }
}

impl std::fmt::Display for JsonlError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "jsonl line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for JsonlError {}

/// One line of a JSONL metrics dump.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum JsonlRecord {
    /// Final value of one counter instance.
    Counter {
        /// Metric family name.
        name: String,
        /// Entity the count belongs to.
        label: Label,
        /// Final count.
        value: u64,
    },
    /// Last written value of one gauge instance.
    Gauge {
        /// Metric family name.
        name: String,
        /// Entity the gauge belongs to.
        label: Label,
        /// Last written value.
        value: f64,
    },
    /// Summary statistics of one histogram instance.
    Histogram {
        /// Metric family name.
        name: String,
        /// Entity the distribution belongs to.
        label: Label,
        /// Summary statistics.
        summary: HistogramSummary,
    },
    /// One point of one time-series instance.
    SeriesPoint {
        /// Metric family name.
        name: String,
        /// Entity the series belongs to.
        label: Label,
        /// Sample time.
        time: SimTime,
        /// Sample value.
        value: f64,
    },
    /// One retained trace event.
    Trace {
        /// Simulated time of the event.
        time: SimTime,
        /// Event severity.
        severity: Severity,
        /// Entity the event concerns.
        label: Label,
        /// Human-readable message.
        message: String,
    },
}

/// Flattens a snapshot into its JSONL records, in snapshot order.
pub fn records(snapshot: &Snapshot) -> Vec<JsonlRecord> {
    let mut out = Vec::new();
    for e in &snapshot.counters {
        out.push(JsonlRecord::Counter {
            name: e.name.clone(),
            label: e.label.clone(),
            value: e.value,
        });
    }
    for e in &snapshot.gauges {
        out.push(JsonlRecord::Gauge {
            name: e.name.clone(),
            label: e.label.clone(),
            value: e.value,
        });
    }
    for e in &snapshot.histograms {
        out.push(JsonlRecord::Histogram {
            name: e.name.clone(),
            label: e.label.clone(),
            summary: e.summary,
        });
    }
    for e in &snapshot.series {
        for &(time, value) in &e.points {
            out.push(JsonlRecord::SeriesPoint {
                name: e.name.clone(),
                label: e.label.clone(),
                time,
                value,
            });
        }
    }
    for t in &snapshot.trace {
        out.push(JsonlRecord::Trace {
            time: t.time,
            severity: t.event.severity,
            label: t.event.label.clone(),
            message: t.event.message.clone(),
        });
    }
    out
}

/// Serializes a snapshot as JSON Lines (one record per line, trailing
/// newline).
pub fn to_jsonl(snapshot: &Snapshot) -> String {
    let mut out = String::new();
    for record in records(snapshot) {
        out.push_str(&serde_json::to_string(&record).expect("records are serializable"));
        out.push('\n');
    }
    out
}

/// Parses a JSONL dump back into records. Blank lines are skipped.
///
/// # Errors
///
/// Returns a [`JsonlError`] naming the first truncated or garbage line.
pub fn from_jsonl(text: &str) -> Result<Vec<JsonlRecord>, JsonlError> {
    text.lines()
        .enumerate()
        .filter(|(_, line)| !line.trim().is_empty())
        .map(|(i, line)| serde_json::from_str(line).map_err(|e| JsonlError::at_line(i + 1, &e)))
        .collect()
}

/// Writes a snapshot's JSONL dump to `path`, validating every metric
/// name against [`crate::registry`] first — a dump with a typo'd name
/// is a hole in every downstream report, so the exporter refuses to
/// produce one.
///
/// # Errors
///
/// Fails with `InvalidData` when a metric name is not registered, and
/// propagates filesystem errors.
pub fn write_jsonl(path: &Path, snapshot: &Snapshot) -> std::io::Result<()> {
    crate::registry::validate_snapshot(snapshot)
        .map_err(|e| std::io::Error::new(std::io::ErrorKind::InvalidData, e))?;
    let mut file = std::fs::File::create(path)?;
    file.write_all(to_jsonl(snapshot).as_bytes())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::recorder::Recorder;
    use zeiot_core::id::NodeId;

    fn sample_snapshot() -> Snapshot {
        let mut rec = Recorder::new();
        rec.add("mac.grants", Label::Global, 12);
        rec.add("net.tx", Label::node(NodeId::new(7)), 3);
        rec.set_gauge("drift", Label::Global, 0.5);
        rec.observe("cost", Label::Global, 2.0);
        rec.sample("volts", Label::Global, SimTime::from_secs(1), 2.4);
        rec.sample("volts", Label::Global, SimTime::from_secs(2), 2.2);
        rec.trace(
            SimTime::from_secs(2),
            Severity::Error,
            Label::Global,
            "died",
        );
        rec.snapshot()
    }

    #[test]
    fn jsonl_round_trips() {
        let snap = sample_snapshot();
        let text = to_jsonl(&snap);
        assert_eq!(text.lines().count(), 7);
        let back = from_jsonl(&text).unwrap();
        assert_eq!(back, records(&snap));
    }

    #[test]
    fn one_record_per_series_point() {
        let text = to_jsonl(&sample_snapshot());
        let points = text.lines().filter(|l| l.contains("SeriesPoint")).count();
        assert_eq!(points, 2);
    }

    #[test]
    fn export_ordering_is_stable_across_runs() {
        // Snapshots flatten in insertion order — no hash iteration
        // anywhere on the export path — so two identically-built
        // recorders dump byte-identical JSONL (determinism contract
        // rule d1; regression guard for the HashMap→BTreeMap sweep).
        let a = to_jsonl(&sample_snapshot());
        let b = to_jsonl(&sample_snapshot());
        assert_eq!(a, b);
    }

    #[test]
    fn blank_lines_are_skipped() {
        let text = format!("\n{}\n\n", to_jsonl(&sample_snapshot()));
        assert_eq!(from_jsonl(&text).unwrap().len(), 7);
    }

    #[test]
    fn malformed_line_is_an_error() {
        assert!(from_jsonl("{\"Counter\":").is_err());
    }

    #[test]
    fn malformed_line_error_carries_the_line_number() {
        let good = to_jsonl(&sample_snapshot());
        let text = format!("{good}garbage not json\n");
        let err = from_jsonl(&text).unwrap_err();
        assert_eq!(err.line(), good.lines().count() + 1);
        assert!(err.to_string().starts_with("jsonl line"));
        assert!(!err.message().is_empty());
    }
}
