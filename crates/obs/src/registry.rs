//! The declared observability-name registry.
//!
//! Every metric and span name the workspace emits is declared here,
//! once, in a generated-style table: the `zeiot-audit` rule `o1`
//! statically checks every string literal flowing into recorder/tracer
//! APIs against these tables (and that every declared name is emitted
//! somewhere), and the JSONL exporters validate names at runtime
//! through [`validate_snapshot`] / [`validate_traces`]. A typo in a
//! metric name therefore fails the audit and the export instead of
//! silently producing an always-zero counter.
//!
//! Maintained in lockstep with the `o1` rule: add the name here *and*
//! emit it, or the audit reports whichever half is missing. Entries
//! ending in `.*` are dynamic families whose suffix is computed at
//! runtime (the audit exempts them from the emitted-somewhere check).
//! Both tables are sorted and duplicate-free (unit-enforced).

use crate::snapshot::Snapshot;
use crate::trace::Trace;

/// Every registered metric name (counters, gauges, histograms, and
/// time-series share one namespace). `.*` marks a dynamic family.
#[rustfmt::skip]
pub const METRICS: &[&str] = &[
    "audit.files_scanned",          // counter: sources scanned per audit run
    "audit.findings.*",             // counters: audit.findings.<status>, labeled per rule
    "bench.*",                      // gauges: bench.<metric> from the bench report table
    "energy.brownouts",             // counter: brownout events per device
    "energy.capacitor_v",           // series: capacitor voltage trajectory
    "energy.checkpoints",           // counter: state checkpoints taken
    "energy.consumed_uj",           // counter: microjoules consumed
    "energy.harvested_uj",          // counter: microjoules harvested
    "energy.power_cycles",          // counter: off/on cycles per device
    "engine.events_dispatched",     // counter: handler dispatches, labeled per kind
    "engine.events_scheduled",      // counter: events pushed into the queue
    "engine.handler_secs",          // histogram: host-time cost per handler
    "engine.queue_depth",           // histogram: queue depth at dispatch
    "engine.stop_requests",         // counter: cooperative stop requests
    "fault.aborted",                // counter: transfers aborted by policy
    "fault.corrupted",              // counter: frames delivered corrupted
    "fault.degraded",               // counter: links entering degraded mode
    "fault.delivered",              // counter: frames delivered
    "fault.drops",                  // counter: frames dropped
    "fault.failed",                 // counter: transfers failed terminally
    "fault.recovered",              // counter: links recovered
    "fault.recovery_latency_hops",  // histogram: hops spent recovering
    "fault.retries",                // counter: retransmissions
    "fault.sent",                   // counter: frames sent
    "fusion.abstained",             // counter: fusion rounds with no winner
    "fusion.fallback",              // counter: single-source fallback rounds
    "fusion.fused",                 // counter: multi-source fused rounds
    "mac.ap_resets",                // counter: access-point resets
    "mac.collisions",               // counter: slot collisions
    "mac.deregistrations",          // counter: devices leaving the schedule
    "mac.dummy_frames",             // counter: dummy frames for idle slots
    "mac.grant_losses",             // counter: grants lost to brownout
    "mac.grants",                   // counter: slot grants issued
    "mac.registrations",            // counter: devices admitted
    "mac.registrations_rejected",   // counter: admissions rejected
    "mac.samples_dropped",          // counter: sensor samples dropped
    "microdeep.assignment_cost",    // gauge: total placement cost
    "microdeep.assignment_peak_cost", // gauge: peak per-node placement cost
    "microdeep.batch_loss",         // series: training loss per batch
    "microdeep.replica_drift",      // gauge: max replica weight drift
    "microdeep.replica_drift_step", // series: drift trajectory per step
    "microdeep.rx_bytes",           // counter: bytes received per node
    "microdeep.rx_messages",        // counter: messages received per node
    "microdeep.tx_bytes",           // counter: bytes sent per node
    "microdeep.tx_messages",        // counter: messages sent per node
    "quant.activation_saturated",   // counter: i8 activations clipped
    "quant.forwards",               // counter: quantized forward passes
    "quant.input_saturated",        // counter: i8 inputs clipped
    "replace.budget_exhausted",     // counter: epochs cut by migration budget
    "replace.epochs",               // counter: re-placement epochs
    "replace.failed_handoffs",      // counter: migrations lost to the fabric
    "replace.handoff_cost",         // counter: hop-frames spent on handoffs
    "replace.handoff_frames",       // counter: state frames delivered
    "replace.migrations",           // counter: units migrated
    "replace.stranded",             // counter: units left unhosted
    "serve.admitted",               // counter: requests admitted per tenant
    "serve.deadline_miss",          // counter: served past deadline
    "serve.degraded",               // counter: requests served degraded
    "serve.failed",                 // counter: admitted requests failed
    "serve.latency",                // histogram: request latency seconds
    "serve.offered",                // counter: requests offered per tenant
    "serve.queue_depth",            // histogram: shard queue depth
    "serve.served",                 // counter: requests served
    "serve.shed.shard_queue_full",  // counter: shed at the shard queue
    "serve.shed.tenant_limit",      // counter: shed at the tenant limit
    "serve.stale",                  // counter: responses from stale replicas
    "slo.breaches",                 // counter: SLO objectives breached
    "trace.attr.batch",             // histogram: per-trace batch wait share
    "trace.attr.hop",               // histogram: per-trace hop share
    "trace.attr.infer",             // histogram: per-trace inference share
    "trace.attr.queue",             // histogram: per-trace queue share
    "trace.attr.retransmit",        // histogram: per-trace retransmit share
];

/// Every registered span name (trace spans pushed through
/// `Tracer`/`SpanScope`).
#[rustfmt::skip]
pub const SPANS: &[&str] = &[
    "fusion.gather",        // scenario: gathering per-zone context votes
    "hop.conv",             // microdeep: conv partials crossing the mesh
    "hop.hidden",           // microdeep: hidden-layer aggregation hop
    "hop.logit",            // microdeep: logit aggregation hop
    "hop.pool",             // microdeep: pooling hop
    "hop.qconv",            // quantized conv hop
    "hop.qhidden",          // quantized hidden hop
    "hop.qlogit",           // quantized logit hop
    "hop.qpool",            // quantized pooling hop
    "mac.device",           // backscatter MAC device slot activity
    "replace.migrate",      // re-placement state handoff over the fabric
    "serve.batch",          // batch execution window
    "serve.batch_overhead", // batch formation overhead
    "serve.infer",          // model inference inside a batch
    "serve.queue",          // shard queue wait
    "serve.request",        // root span: admission to completion
];

/// Whether `name` matches a registered metric (exact, or a dynamic
/// `family.*` prefix).
pub fn is_registered_metric(name: &str) -> bool {
    METRICS.iter().any(|entry| matches(entry, name))
}

/// Whether `name` is a registered span name.
pub fn is_registered_span(name: &str) -> bool {
    SPANS.contains(&name)
}

fn matches(entry: &str, name: &str) -> bool {
    match entry.strip_suffix('*') {
        Some(prefix) => name.starts_with(prefix) && name.len() > prefix.len(),
        None => entry == name,
    }
}

/// A name outside the registry, rejected at export time.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct UnknownName {
    /// `"metric"` or `"span"`.
    pub kind: &'static str,
    /// The offending name.
    pub name: String,
}

impl std::fmt::Display for UnknownName {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{} name `{}` is not declared in zeiot-obs::registry",
            self.kind, self.name
        )
    }
}

impl std::error::Error for UnknownName {}

/// Validates every metric name in a snapshot against the registry.
///
/// # Errors
///
/// Returns the first [`UnknownName`] encountered, in snapshot order.
pub fn validate_snapshot(snapshot: &Snapshot) -> Result<(), UnknownName> {
    let names = snapshot
        .counters
        .iter()
        .map(|e| e.name.as_str())
        .chain(snapshot.gauges.iter().map(|e| e.name.as_str()))
        .chain(snapshot.histograms.iter().map(|e| e.name.as_str()))
        .chain(snapshot.series.iter().map(|e| e.name.as_str()));
    for name in names {
        if !is_registered_metric(name) {
            return Err(UnknownName {
                kind: "metric",
                name: name.to_string(),
            });
        }
    }
    Ok(())
}

/// Validates every span name in a trace set against the registry.
///
/// # Errors
///
/// Returns the first [`UnknownName`] encountered, in trace order.
pub fn validate_traces(traces: &[Trace]) -> Result<(), UnknownName> {
    for trace in traces {
        for span in &trace.spans {
            if !is_registered_span(&span.name) {
                return Err(UnknownName {
                    kind: "span",
                    name: span.name.clone(),
                });
            }
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::label::Label;
    use crate::recorder::Recorder;

    #[test]
    fn tables_are_sorted_and_duplicate_free() {
        for table in [METRICS, SPANS] {
            let mut sorted = table.to_vec();
            sorted.sort_unstable();
            sorted.dedup();
            assert_eq!(table, &sorted[..], "registry table unsorted or duplicated");
        }
    }

    #[test]
    fn exact_and_dynamic_matching() {
        assert!(is_registered_metric("serve.latency"));
        assert!(is_registered_metric("audit.findings.active"));
        assert!(is_registered_metric("bench.e9_slo_breaches"));
        assert!(!is_registered_metric("serve.latencyy"));
        assert!(!is_registered_metric("bench.")); // a bare family is not a name
        assert!(is_registered_span("serve.request"));
        assert!(!is_registered_span("serve.requests"));
    }

    #[test]
    fn snapshot_validation_names_the_offender() {
        let mut rec = Recorder::new();
        rec.add("mac.grants", Label::Global, 1);
        assert_eq!(validate_snapshot(&rec.snapshot()), Ok(()));
        rec.add("mac.grantz", Label::Global, 1);
        let err = validate_snapshot(&rec.snapshot()).unwrap_err();
        assert_eq!(err.name, "mac.grantz");
        assert!(err.to_string().contains("registry"));
    }
}
