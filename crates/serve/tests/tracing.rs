//! Causal-tracing contract tests for the serving layer:
//!
//! * **tracing is pure observation** — the [`ServeOutcome`] of a traced
//!   run is `assert_eq!`-identical to the untraced path (which is the
//!   same code with no tracer);
//! * **attribution tiles** — for *every* traced request, the per-layer
//!   serve-clock attribution sums exactly to the end-to-end latency;
//! * **traces are deterministic** — two identical runs export
//!   byte-identical trace JSONL.

use zeiot_core::rng::SeedRng;
use zeiot_core::time::SimDuration;
use zeiot_fault::{DegradeMode, FaultPlan, RecoveryPolicy};
use zeiot_microdeep::{Assignment, CnnConfig, DistributedCnn, WeightUpdate};
use zeiot_net::Topology;
use zeiot_nn::tensor::Tensor;
use zeiot_obs::analysis::{attribution, critical_path};
use zeiot_obs::trace::{traces_to_jsonl, SpanLayer, TraceSampler, Tracer};
use zeiot_serve::{
    ArrivalProcess, DegradedServing, Outcome, ServeConfig, Server, Tenant, TenantSpec,
};

fn topology() -> Topology {
    Topology::grid(3, 3, 2.0, 3.0).expect("valid grid")
}

fn small_net(seed: u64) -> DistributedCnn {
    let config = CnnConfig::new(1, 8, 8, 2, 3, 2, 8, 2).expect("valid config");
    let graph = config.unit_graph().expect("valid graph");
    let assignment = Assignment::balanced_correspondence(&graph, &topology());
    let mut rng = SeedRng::new(seed);
    DistributedCnn::new(config, assignment, WeightUpdate::Independent, &mut rng)
}

fn pool(n: usize) -> Vec<(Tensor, usize)> {
    let mut rng = SeedRng::new(77);
    (0..n)
        .map(|i| {
            let mut img = Tensor::zeros(vec![1, 8, 8]);
            for y in 0..4 {
                for x in 0..4 {
                    let (yy, xx) = if i % 2 == 0 { (y, x) } else { (y + 4, x + 4) };
                    img.set(&[0, yy, xx], 1.0 + rng.normal_with(0.0, 0.1) as f32);
                }
            }
            (img, i % 2)
        })
        .collect()
}

fn tenant(name: &str, arrivals: ArrivalProcess) -> Tenant {
    let spec = TenantSpec::new(name, arrivals, SimDuration::from_millis(400));
    Tenant::new(spec, small_net(5), pool(8)).expect("valid tenant")
}

/// A small degraded-mode server with enough load to exercise queueing,
/// batching, shedding, degrade substitutions, and stale answers.
fn degraded_server() -> Server {
    let config = ServeConfig::new(2, 3, 8, SimDuration::from_millis(40))
        .expect("valid config")
        .with_batch_overhead(SimDuration::from_millis(20));
    let degraded = DegradedServing {
        plan: FaultPlan::uniform(9, 0.08).expect("valid plan"),
        policy: RecoveryPolicy::Degrade {
            mode: DegradeMode::ZeroFill,
        },
        pass_period: SimDuration::from_millis(100),
        stale_cache: true,
        replace: None,
    };
    Server::new(
        config,
        topology(),
        vec![
            tenant("alpha", ArrivalProcess::poisson(40.0)),
            tenant(
                "beta",
                ArrivalProcess::periodic(SimDuration::from_millis(150)),
            ),
        ],
    )
    .expect("tenants present")
    .with_degraded(degraded)
}

#[test]
fn tracing_is_pure_observation() {
    let untraced = degraded_server().run(42, SimDuration::from_secs(3), None);
    let mut tracer = Tracer::new(TraceSampler::always());
    let traced =
        degraded_server().run_traced(42, SimDuration::from_secs(3), None, Some(&mut tracer));
    assert_eq!(untraced, traced);
    assert!(
        !tracer.finished().is_empty(),
        "always-sampled run must trace"
    );

    // A never-sampling tracer is also transparent and collects nothing.
    let mut noop = Tracer::new(TraceSampler::never());
    let noop_outcome =
        degraded_server().run_traced(42, SimDuration::from_secs(3), None, Some(&mut noop));
    assert_eq!(untraced, noop_outcome);
    assert!(noop.finished().is_empty());
}

#[test]
fn attribution_sums_to_end_to_end_latency_for_every_trace() {
    let mut tracer = Tracer::new(TraceSampler::always());
    let outcome =
        degraded_server().run_traced(7, SimDuration::from_secs(3), None, Some(&mut tracer));
    let traces = tracer.take_finished();
    // Every offered request retires exactly one trace.
    assert_eq!(traces.len(), outcome.completions.len());

    for (trace, completion) in traces.iter().zip(&outcome.completions) {
        assert_eq!(
            (trace.tenant, trace.seq),
            (completion.tenant as u64, completion.seq)
        );
        let root = trace.root().expect("rooted trace");
        let attr = attribution(trace);
        // The tiling invariant: per-layer serve-clock self-times sum to
        // the root's duration, i.e. the request's end-to-end latency.
        assert_eq!(
            attr.total(),
            root.duration(),
            "attribution must tile latency for trace {} ({}, {})",
            trace.id,
            trace.tenant,
            trace.seq
        );
        // And the root duration is the served latency / zero for sheds.
        match &completion.outcome {
            Outcome::Served {
                completion: done, ..
            } => {
                assert_eq!(root.duration(), done.duration_since(completion.arrival));
            }
            Outcome::Shed { .. } => assert!(root.duration().is_zero()),
            Outcome::Failed => {}
        }
        // The critical path starts at the root and stays on serve-clock
        // spans whose self-times are a subset of the attribution.
        let path = critical_path(trace);
        assert_eq!(path.first().map(|s| s.layer), Some(SpanLayer::Request));
    }
    // The workload is rich enough for the invariant to mean something.
    assert!(
        outcome.completions.iter().any(|c| !c.outcome.is_served()),
        "expected some sheds/failures in the workload"
    );
}

#[test]
fn trace_export_is_deterministic() {
    let dump = |seed: u64| {
        let mut tracer = Tracer::new(TraceSampler::rate(seed, 0.5));
        degraded_server().run_traced(seed, SimDuration::from_secs(3), None, Some(&mut tracer));
        traces_to_jsonl(&tracer.take_finished())
    };
    let a = dump(11);
    let b = dump(11);
    assert_eq!(a, b, "identical runs must export identical bytes");
    assert!(!a.is_empty());
}
