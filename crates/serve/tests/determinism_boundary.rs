//! The serving layer's determinism boundary: with no fault fabric, a
//! single-shard server is a pure scheduler around the model — the logits
//! and predictions it returns are **byte-identical** (`assert_eq!` on
//! the raw `f32`s) to calling [`DistributedCnn::forward`] directly on
//! the same inputs. Queueing, batching and shedding may change *when*
//! (or whether) a request is answered, never *what* the answer is.

use zeiot_core::rng::SeedRng;
use zeiot_core::time::SimDuration;
use zeiot_microdeep::{Assignment, CnnConfig, DistributedCnn, WeightUpdate};
use zeiot_net::Topology;
use zeiot_nn::tensor::Tensor;
use zeiot_serve::{ArrivalProcess, Outcome, ServeConfig, Server, ServiceMode, Tenant, TenantSpec};

fn topology() -> Topology {
    Topology::grid(3, 3, 2.0, 3.0).unwrap()
}

fn net(seed: u64) -> DistributedCnn {
    let config = CnnConfig::new(1, 8, 8, 2, 3, 2, 8, 2).unwrap();
    let graph = config.unit_graph().unwrap();
    let assignment = Assignment::balanced_correspondence(&graph, &topology());
    let mut rng = SeedRng::new(seed);
    DistributedCnn::new(config, assignment, WeightUpdate::Independent, &mut rng)
}

fn pool(n: usize, seed: u64) -> Vec<(Tensor, usize)> {
    let mut rng = SeedRng::new(seed);
    (0..n)
        .map(|i| {
            let mut img = Tensor::zeros(vec![1, 8, 8]);
            for y in 0..8 {
                for x in 0..8 {
                    img.set(&[0, y, x], rng.normal_with(0.0, 1.0) as f32);
                }
            }
            (img, i % 2)
        })
        .collect()
}

/// Serves a Poisson stream through one no-fault shard and replays every
/// served request through a direct `forward` call on an identical model.
#[test]
fn no_fault_single_shard_serving_matches_direct_inference() {
    let samples = pool(12, 99);
    let spec = TenantSpec::new(
        "boundary",
        ArrivalProcess::poisson(15.0),
        SimDuration::from_millis(300),
    );
    let tenant = Tenant::new(spec, net(7), samples.clone()).unwrap();
    let config = ServeConfig::new(1, 3, 32, SimDuration::from_millis(30))
        .unwrap()
        .with_batch_overhead(SimDuration::from_millis(10));
    let mut server = Server::new(config, topology(), vec![tenant]).unwrap();
    let outcome = server.run(5, SimDuration::from_secs(4), None);

    // An identical model, fed directly.
    let mut direct = net(7);
    let mut served = 0;
    for completion in &outcome.completions {
        let Outcome::Served {
            mode,
            logits,
            prediction,
            ..
        } = &completion.outcome
        else {
            continue;
        };
        served += 1;
        assert_eq!(*mode, ServiceMode::Full, "no fabric, no degradation");
        let (input, _) = &samples[(completion.seq % samples.len() as u64) as usize];
        let expected = direct.forward(input);
        assert_eq!(
            logits,
            expected.data(),
            "request seq {} diverged from direct inference",
            completion.seq
        );
        assert_eq!(*prediction, expected.argmax());
    }
    assert!(served > 10, "stream too short to mean anything: {served}");
}

/// The boundary holds at every batch size: batching only groups worker
/// time, it never changes the per-request forward pass.
#[test]
fn batch_size_never_changes_the_answers() {
    let samples = pool(8, 3);
    let run = |batch: usize| {
        let spec = TenantSpec::new(
            "t",
            ArrivalProcess::periodic(SimDuration::from_millis(80)),
            SimDuration::from_millis(400),
        );
        let tenant = Tenant::new(spec, net(11), samples.clone()).unwrap();
        let config = ServeConfig::new(1, batch, 64, SimDuration::from_millis(20)).unwrap();
        let mut server = Server::new(config, topology(), vec![tenant]).unwrap();
        server
            .run(1, SimDuration::from_secs(3), None)
            .completions
            .into_iter()
            .filter_map(|c| match c.outcome {
                Outcome::Served {
                    logits, prediction, ..
                } => Some((c.seq, logits, prediction)),
                _ => None,
            })
            .collect::<Vec<_>>()
    };
    let unbatched = run(1);
    for batch in [2usize, 4, 8] {
        assert_eq!(run(batch), unbatched, "batch {batch} changed an answer");
    }
}
