//! Requests and their terminal dispositions.

use zeiot_core::time::SimTime;
use zeiot_nn::tensor::Tensor;

/// Index of a tenant within a [`crate::Server`].
pub type TenantId = usize;

/// One inference request offered to the serving layer.
#[derive(Debug, Clone)]
pub struct Request {
    /// The tenant that issued the request.
    pub tenant: TenantId,
    /// Per-tenant monotone sequence number (0-based arrival order).
    pub seq: u64,
    /// When the request entered the system.
    pub arrival: SimTime,
    /// Absolute completion deadline (arrival + the tenant's relative
    /// deadline).
    pub deadline: SimTime,
    /// The sample to classify.
    pub input: Tensor,
    /// Ground-truth class, when known (drives accuracy accounting).
    pub label: Option<usize>,
}

/// Why admission control turned a request away.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum RejectReason {
    /// The target shard's bounded queue was full.
    ShardQueueFull,
    /// The tenant already had its maximum number of requests queued.
    TenantLimit,
}

impl RejectReason {
    /// Stable metric-label form of the reason.
    pub fn label(&self) -> &'static str {
        match self {
            RejectReason::ShardQueueFull => "shard_queue_full",
            RejectReason::TenantLimit => "tenant_limit",
        }
    }
}

/// Which rung of the degradation ladder produced an answer.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum ServiceMode {
    /// Exact inference: no fabric, or every message delivered intact.
    Full,
    /// The fabric lost or corrupted messages but a degrade substitution
    /// completed the pass.
    Degraded,
    /// The fabric aborted the pass; the answer came from the shard's
    /// per-tenant stale-result cache.
    Stale,
}

impl ServiceMode {
    /// Stable metric-label form of the mode.
    pub fn label(&self) -> &'static str {
        match self {
            ServiceMode::Full => "full",
            ServiceMode::Degraded => "degraded",
            ServiceMode::Stale => "stale",
        }
    }
}

/// Terminal disposition of one request.
#[derive(Debug, Clone, PartialEq)]
pub enum Outcome {
    /// The request was answered.
    Served {
        /// When the micro-batch carrying it completed.
        completion: SimTime,
        /// The degradation-ladder rung that answered.
        mode: ServiceMode,
        /// The logits the tenant received (exact, degraded, or stale).
        logits: Vec<f32>,
        /// `argmax` of `logits`.
        prediction: usize,
        /// Whether `completion` overran the request's deadline.
        missed_deadline: bool,
    },
    /// Admission control shed the request with a typed reason.
    Shed {
        /// Why it was turned away.
        reason: RejectReason,
    },
    /// The fabric aborted the inference and no fallback could answer.
    Failed,
}

impl Outcome {
    /// Whether the request received an answer.
    pub fn is_served(&self) -> bool {
        matches!(self, Outcome::Served { .. })
    }
}

/// A request's identity plus how it ended; [`crate::Server::run`]
/// returns one per offered request, sorted by `(tenant, seq)`.
#[derive(Debug, Clone, PartialEq)]
pub struct Completion {
    /// The issuing tenant.
    pub tenant: TenantId,
    /// The request's per-tenant sequence number.
    pub seq: u64,
    /// When the request arrived.
    pub arrival: SimTime,
    /// How it ended.
    pub outcome: Outcome,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn labels_are_stable() {
        assert_eq!(RejectReason::ShardQueueFull.label(), "shard_queue_full");
        assert_eq!(RejectReason::TenantLimit.label(), "tenant_limit");
        assert_eq!(ServiceMode::Full.label(), "full");
        assert_eq!(ServiceMode::Degraded.label(), "degraded");
        assert_eq!(ServiceMode::Stale.label(), "stale");
    }

    #[test]
    fn served_predicate() {
        let shed = Outcome::Shed {
            reason: RejectReason::TenantLimit,
        };
        assert!(!shed.is_served());
        assert!(!Outcome::Failed.is_served());
    }
}
