//! Tenants: who a request belongs to and what model answers it.

use crate::arrival::ArrivalProcess;
use crate::model::ServeModel;
use zeiot_core::time::SimDuration;
use zeiot_microdeep::{DistributedCnn, QuantizedCnn, ReplacementEngine};
use zeiot_nn::tensor::Tensor;

/// Default per-tenant admission cap (queued requests).
pub const DEFAULT_MAX_QUEUED: usize = 32;

/// The numeric format a tenant's inferences execute in.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub enum QuantMode {
    /// The f32 training-precision forward pass.
    #[default]
    F32,
    /// The deployed integer path: i8 weights and activations, exact i32
    /// accumulation ([`zeiot_microdeep::QuantizedCnn`]). The model is
    /// frozen at tenant construction, calibrated on the tenant's sample
    /// pool.
    Int8,
}

impl QuantMode {
    /// Stable lowercase label for reports and metric names.
    pub fn label(&self) -> &'static str {
        match self {
            QuantMode::F32 => "f32",
            QuantMode::Int8 => "int8",
        }
    }
}

/// Everything about a tenant except its model: identity, offered load,
/// latency contract, admission cap, and numeric format.
#[derive(Debug, Clone)]
pub struct TenantSpec {
    /// Human-readable tenant name (report and metric label).
    pub name: String,
    /// The tenant's request-arrival model.
    pub arrivals: ArrivalProcess,
    /// Relative deadline granted to every request.
    pub deadline: SimDuration,
    /// Admission control: maximum requests this tenant may have queued
    /// at once; arrivals beyond it are shed with
    /// [`crate::RejectReason::TenantLimit`].
    pub max_queued: usize,
    /// Numeric format of the tenant's inferences.
    pub quant: QuantMode,
}

impl TenantSpec {
    /// A spec with the default admission cap, serving in f32.
    pub fn new(name: impl Into<String>, arrivals: ArrivalProcess, deadline: SimDuration) -> Self {
        Self {
            name: name.into(),
            arrivals,
            deadline,
            max_queued: DEFAULT_MAX_QUEUED,
            quant: QuantMode::F32,
        }
    }

    /// Overrides the admission cap.
    ///
    /// # Panics
    ///
    /// Panics if `max_queued` is zero.
    pub fn with_max_queued(mut self, max_queued: usize) -> Self {
        // zeiot-audit: allow(p1) -- documented `# Panics` precondition guard
        assert!(max_queued > 0, "admission cap must be positive");
        self.max_queued = max_queued;
        self
    }

    /// Selects the numeric format the tenant serves in.
    pub fn with_quant(mut self, quant: QuantMode) -> Self {
        self.quant = quant;
        self
    }
}

/// What answers a tenant's requests: the distributed CNN family the
/// layer was built around, or any custom [`ServeModel`] (sensing
/// estimators in composite venue scenarios).
#[derive(Debug)]
pub enum TenantModel {
    /// A distributed CNN deployment; `quantized` holds the frozen
    /// integer model iff the tenant serves in [`QuantMode::Int8`].
    /// This is the only variant the runtime re-placement engine
    /// migrates (custom models own their placement, if any).
    Cnn {
        /// The f32 deployment (boxed: a deployment is orders of
        /// magnitude larger than the `Custom` variant's fat pointer).
        net: Box<DistributedCnn>,
        /// The frozen int8 model, calibrated on the sample pool.
        quantized: Option<Box<QuantizedCnn>>,
    },
    /// A custom model behind the [`ServeModel`] interface.
    Custom(Box<dyn ServeModel>),
}

/// A tenant: its spec, its deployed model, and the labelled sample pool
/// its requests draw from (request `seq` uses `pool[seq % pool.len()]`,
/// so a request stream is reproducible without storing every input
/// twice).
#[derive(Debug)]
pub struct Tenant {
    /// The tenant's identity and contracts.
    pub spec: TenantSpec,
    /// What answers this tenant's requests.
    pub(crate) model: TenantModel,
    /// The tenant's re-placement engine, installed by the server at the
    /// start of each run when [`crate::DegradedServing::replace`] is
    /// configured and the tenant hosts a CNN. Polled by the tenant's
    /// shard before every inference; migrations mutate the deployment
    /// (and resync the int8 model), so re-placement outlives the
    /// requests that triggered it.
    pub(crate) replace: Option<ReplacementEngine>,
    pool: Vec<(Tensor, usize)>,
}

impl Tenant {
    /// Builds a CNN tenant. Under [`QuantMode::Int8`] the model is
    /// frozen here: the tenant's sample pool serves as the calibration
    /// set for activation-scale selection.
    ///
    /// # Errors
    ///
    /// Returns an error if `pool` is empty.
    pub fn new(
        spec: TenantSpec,
        mut net: DistributedCnn,
        pool: Vec<(Tensor, usize)>,
    ) -> Result<Self, String> {
        if pool.is_empty() {
            return Err(format!("tenant {}: empty sample pool", spec.name));
        }
        let quantized = (spec.quant == QuantMode::Int8).then(|| {
            let calibration: Vec<Tensor> = pool.iter().map(|(x, _)| x.clone()).collect();
            Box::new(QuantizedCnn::new(&mut net, &calibration))
        });
        Ok(Self {
            spec,
            model: TenantModel::Cnn {
                net: Box::new(net),
                quantized,
            },
            replace: None,
            pool,
        })
    }

    /// Builds a tenant around a custom [`ServeModel`]. The spec's
    /// [`QuantMode`] is ignored — a custom model owns its own numeric
    /// format.
    ///
    /// # Errors
    ///
    /// Returns an error if `pool` is empty.
    pub fn with_model(
        spec: TenantSpec,
        model: Box<dyn ServeModel>,
        pool: Vec<(Tensor, usize)>,
    ) -> Result<Self, String> {
        if pool.is_empty() {
            return Err(format!("tenant {}: empty sample pool", spec.name));
        }
        Ok(Self {
            spec,
            model: TenantModel::Custom(model),
            replace: None,
            pool,
        })
    }

    /// The input and ground-truth label request `seq` carries.
    pub fn sample(&self, seq: u64) -> (&Tensor, usize) {
        // zeiot-audit: allow(p1) -- every constructor rejects an empty pool, and seq % len is in range by construction
        let (input, label) = &self.pool[(seq % self.pool.len() as u64) as usize];
        (input, *label)
    }

    /// The tenant's deployed CNN, when it hosts one.
    pub fn model(&self) -> Option<&DistributedCnn> {
        match &self.model {
            TenantModel::Cnn { net, .. } => Some(&**net),
            TenantModel::Custom(_) => None,
        }
    }

    /// The tenant's frozen integer model, when serving a CNN in
    /// [`QuantMode::Int8`].
    pub fn quantized_model(&self) -> Option<&QuantizedCnn> {
        match &self.model {
            TenantModel::Cnn { quantized, .. } => quantized.as_deref(),
            TenantModel::Custom(_) => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use zeiot_core::rng::SeedRng;
    use zeiot_microdeep::{Assignment, CnnConfig, WeightUpdate};
    use zeiot_net::Topology;

    fn small_net() -> DistributedCnn {
        let config = CnnConfig::new(1, 8, 8, 2, 3, 2, 8, 2).unwrap();
        let topo = Topology::grid(3, 3, 2.0, 3.0).unwrap();
        let graph = config.unit_graph().unwrap();
        let assignment = Assignment::balanced_correspondence(&graph, &topo);
        let mut rng = SeedRng::new(1);
        DistributedCnn::new(config, assignment, WeightUpdate::Independent, &mut rng)
    }

    #[test]
    fn sample_pool_wraps_around() {
        let spec = TenantSpec::new(
            "t",
            ArrivalProcess::poisson(1.0),
            SimDuration::from_millis(100),
        );
        let pool = vec![
            (Tensor::zeros(vec![1, 8, 8]), 0),
            (Tensor::zeros(vec![1, 8, 8]), 1),
        ];
        let tenant = Tenant::new(spec, small_net(), pool).unwrap();
        assert_eq!(tenant.sample(0).1, 0);
        assert_eq!(tenant.sample(1).1, 1);
        assert_eq!(tenant.sample(2).1, 0);
    }

    #[test]
    fn empty_pool_is_rejected() {
        let spec = TenantSpec::new(
            "t",
            ArrivalProcess::poisson(1.0),
            SimDuration::from_millis(100),
        );
        assert!(Tenant::new(spec, small_net(), Vec::new()).is_err());
    }
}
