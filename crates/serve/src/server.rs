//! The serving layer's front door: tenants → shards → report.

use crate::request::{Completion, Request, TenantId};
use crate::shard::Shard;
use crate::stats::{ServeReport, TenantStats};
use crate::tenant::Tenant;
use zeiot_core::rng::SeedRng;
use zeiot_core::time::SimDuration;
use zeiot_fault::{FaultPlan, FaultStats, RecoveryPolicy};
use zeiot_microdeep::lossy::LossyRuntime;
use zeiot_microdeep::replace::{ReplaceConfig, ReplaceStats, ReplacementEngine};
use zeiot_net::Topology;
use zeiot_obs::trace::{SpanLayer, Tracer};
use zeiot_obs::{Label, Recorder};

/// Sizing and timing of the serving layer.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ServeConfig {
    /// Worker shards; tenant `t` is routed to shard `t % shards`.
    pub shards: usize,
    /// Maximum micro-batch size (requests of one tenant dispatched
    /// together).
    pub batch: usize,
    /// Bounded queue capacity per shard; arrivals beyond it are shed.
    pub queue_capacity: usize,
    /// Worker time per inference.
    pub service_time: SimDuration,
    /// Fixed worker time per dispatched batch (amortized by batching).
    pub batch_overhead: SimDuration,
}

impl ServeConfig {
    /// Validates and builds a config with zero batch overhead.
    ///
    /// # Errors
    ///
    /// Returns an error if any count is zero or `service_time` is zero.
    pub fn new(
        shards: usize,
        batch: usize,
        queue_capacity: usize,
        service_time: SimDuration,
    ) -> Result<Self, String> {
        if shards == 0 || batch == 0 || queue_capacity == 0 {
            return Err(format!(
                "shards ({shards}), batch ({batch}) and queue capacity ({queue_capacity}) must be positive"
            ));
        }
        if service_time.is_zero() {
            return Err("service time must be non-zero".to_owned());
        }
        Ok(Self {
            shards,
            batch,
            queue_capacity,
            service_time,
            batch_overhead: SimDuration::ZERO,
        })
    }

    /// Sets the fixed per-batch dispatch overhead.
    pub fn with_batch_overhead(mut self, overhead: SimDuration) -> Self {
        self.batch_overhead = overhead;
        self
    }
}

/// Degraded-mode serving: route every shard's inferences through a
/// lossy fabric, with an optional stale-result cache as the last rung
/// before failure.
#[derive(Debug, Clone)]
pub struct DegradedServing {
    /// The fault scenario every shard's fabric follows.
    pub plan: FaultPlan,
    /// What a shard does about a lost message.
    pub policy: RecoveryPolicy,
    /// Fabric clock advance per executed inference (one sensing cycle),
    /// moving requests into and out of outage windows.
    pub pass_period: SimDuration,
    /// Answer from the last successful result when the fabric aborts a
    /// pass.
    pub stale_cache: bool,
    /// Runtime re-placement: when set, every tenant gets a
    /// [`ReplacementEngine`] that polls node liveness before each
    /// inference and re-homes units off dark nodes between requests,
    /// instead of letting them degrade to `Stale`/`Failed` for the rest
    /// of the run. `None` preserves the static placement.
    pub replace: Option<ReplaceConfig>,
}

/// What a run produced: the measured report plus the terminal
/// disposition of every offered request, sorted by `(tenant, seq)`.
#[derive(Debug, Clone, PartialEq)]
pub struct ServeOutcome {
    /// Per-tenant statistics and merged fabric counters.
    pub report: ServeReport,
    /// One entry per offered request.
    pub completions: Vec<Completion>,
}

/// The multi-tenant serving layer; see the crate docs.
#[derive(Debug)]
pub struct Server {
    config: ServeConfig,
    topology: Topology,
    tenants: Vec<Tenant>,
    degraded: Option<DegradedServing>,
}

impl Server {
    /// Builds a server hosting `tenants` over `topology` (the mesh the
    /// tenants' models are deployed on, used for hop-accurate fault
    /// latency when degraded serving is enabled).
    ///
    /// # Errors
    ///
    /// Returns an error if `tenants` is empty.
    pub fn new(
        config: ServeConfig,
        topology: Topology,
        tenants: Vec<Tenant>,
    ) -> Result<Self, String> {
        if tenants.is_empty() {
            return Err("a server needs at least one tenant".to_owned());
        }
        Ok(Self {
            config,
            topology,
            tenants,
            degraded: None,
        })
    }

    /// Enables degraded-mode serving.
    pub fn with_degraded(mut self, degraded: DegradedServing) -> Self {
        self.degraded = Some(degraded);
        self
    }

    /// The serving configuration.
    pub fn config(&self) -> &ServeConfig {
        &self.config
    }

    /// The hosted tenants.
    pub fn tenants(&self) -> &[Tenant] {
        &self.tenants
    }

    /// The shard a tenant's requests are routed to.
    pub fn shard_of(&self, tenant: TenantId) -> usize {
        tenant % self.config.shards
    }

    /// Runs the serving loop over `horizon` of virtual time.
    ///
    /// Every tenant's arrival stream derives from
    /// [`SeedRng::for_point`]`(seed, tenant index)`; requests are fed to
    /// their shards in global `(arrival, tenant, seq)` order and each
    /// shard is simulated serially, so the whole run is a pure function
    /// of `(server, seed, horizon)` — recording into `recorder` never
    /// perturbs it.
    pub fn run(
        &mut self,
        seed: u64,
        horizon: SimDuration,
        recorder: Option<&mut Recorder>,
    ) -> ServeOutcome {
        self.run_traced(seed, horizon, recorder, None)
    }

    /// [`Server::run`] with causal tracing: every sampled request grows
    /// a span tree (admission → queue → batch → infer → fabric hops) in
    /// `tracer`, retired at completion.
    ///
    /// Tracing is pure observation — the returned [`ServeOutcome`] is
    /// byte-identical to an untraced [`Server::run`] with the same
    /// `(seed, horizon)` ([`Server::run`] itself delegates here with no
    /// tracer, so the two paths are literally the same code).
    pub fn run_traced(
        &mut self,
        seed: u64,
        horizon: SimDuration,
        mut recorder: Option<&mut Recorder>,
        mut tracer: Option<&mut Tracer>,
    ) -> ServeOutcome {
        // Install fresh re-placement engines for this run (stats and
        // liveness memory start clean, like the shards' fabrics). Only
        // CNN tenants get one: the engine migrates DistributedCnn
        // units, which custom models don't have.
        let engine_config = self.degraded.as_ref().and_then(|d| d.replace);
        for tenant in &mut self.tenants {
            tenant.replace = match tenant.model {
                crate::tenant::TenantModel::Cnn { .. } => {
                    engine_config.map(|cfg| ReplacementEngine::new(cfg, &self.topology))
                }
                crate::tenant::TenantModel::Custom(_) => None,
            };
        }

        // Materialize every tenant's arrival stream.
        let mut requests: Vec<Request> = Vec::new();
        for (t, tenant) in self.tenants.iter().enumerate() {
            let mut rng = SeedRng::for_point(seed, t as u64);
            for (seq, arrival) in tenant
                .spec
                .arrivals
                .arrivals(horizon, &mut rng)
                .into_iter()
                .enumerate()
            {
                let seq = seq as u64;
                let (input, label) = tenant.sample(seq);
                requests.push(Request {
                    tenant: t,
                    seq,
                    arrival,
                    deadline: arrival + tenant.spec.deadline,
                    input: input.clone(),
                    label: Some(label),
                });
            }
        }
        requests.sort_by_key(|r| (r.arrival, r.tenant, r.seq));

        let mut stats = vec![TenantStats::default(); self.tenants.len()];
        for r in &requests {
            // zeiot-audit: allow(p1) -- requests are generated from self.tenants, so ids are < stats.len()
            stats[r.tenant].offered += 1;
        }

        let mut shards: Vec<Shard> = (0..self.config.shards)
            .map(|i| {
                let fabric = self.degraded.as_ref().map(|d| {
                    LossyRuntime::new(d.plan.clone(), d.policy, &self.topology, d.pass_period)
                });
                Shard::new(
                    i,
                    self.config.batch,
                    self.config.queue_capacity,
                    self.config.service_time,
                    self.config.batch_overhead,
                    fabric,
                    self.degraded.as_ref().is_some_and(|d| d.stale_cache),
                )
            })
            .collect();

        for req in requests {
            if let Some(tr) = tracer.as_deref_mut() {
                let _ = tr.begin(
                    req.tenant as u64,
                    req.seq,
                    "serve.request",
                    SpanLayer::Request,
                    req.arrival,
                );
            }
            let s = req.tenant % self.config.shards;
            shards[s].offer(
                req,
                &mut self.tenants,
                &mut stats,
                recorder.as_deref_mut(),
                tracer.as_deref_mut(),
            );
        }
        for shard in &mut shards {
            shard.drain(&mut self.tenants, &mut stats, tracer.as_deref_mut());
        }

        // Close every tenant's dwell trajectory: the last completed
        // request's state persists to the end of the horizon, and a
        // tenant that never completed anything dwelt Full throughout.
        let horizon_end = zeiot_core::time::SimTime::ZERO + horizon;
        for shard in &mut shards {
            shard.finalize_dwell(&mut stats, horizon_end);
        }
        for s in &mut stats {
            if s.dwell.total().is_zero() {
                s.dwell.add(crate::stats::DwellState::Full, horizon);
            }
        }

        let mut completions: Vec<Completion> = shards
            .iter_mut()
            .flat_map(Shard::take_completions)
            .collect();
        completions.sort_by_key(|c| (c.tenant, c.seq));

        let fault = self.degraded.as_ref().map(|_| {
            let mut merged = FaultStats::default();
            for shard in &shards {
                if let Some(s) = shard.fault_stats() {
                    merged.merge(s);
                }
            }
            merged
        });
        let replace = engine_config.map(|_| {
            let mut merged = ReplaceStats::default();
            for tenant in &self.tenants {
                if let Some(engine) = &tenant.replace {
                    merged.merge(engine.stats());
                }
            }
            merged
        });

        if let Some(rec) = recorder {
            for (tenant, s) in self.tenants.iter().zip(&stats) {
                let label = Label::part(tenant.spec.name.clone());
                for (name, value) in [
                    ("serve.offered", s.offered),
                    ("serve.admitted", s.admitted),
                    ("serve.served", s.served),
                    ("serve.degraded", s.degraded),
                    ("serve.stale", s.stale),
                    ("serve.failed", s.failed),
                    ("serve.shed.shard_queue_full", s.shed_shard_full),
                    ("serve.shed.tenant_limit", s.shed_tenant_limit),
                    ("serve.deadline_miss", s.deadline_misses),
                ] {
                    rec.add(name, label.clone(), value);
                }
                for &latency in s.latencies() {
                    rec.observe("serve.latency", label.clone(), latency);
                }
                if let Some(q) = tenant.quantized_model() {
                    q.stats().record_to(rec, label.clone());
                }
                if let Some(engine) = &tenant.replace {
                    engine.record_to(rec, label);
                }
            }
            for shard in &shards {
                shard.record_fabric(rec);
            }
        }

        ServeOutcome {
            report: ServeReport {
                horizon,
                tenants: self
                    .tenants
                    .iter()
                    .zip(stats)
                    .map(|(t, s)| (t.spec.name.clone(), s))
                    .collect(),
                fault,
                replace,
            },
            completions,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::arrival::ArrivalProcess;
    use crate::request::{Outcome, RejectReason, ServiceMode};
    use crate::tenant::TenantSpec;
    use zeiot_fault::DegradeMode;
    use zeiot_microdeep::{Assignment, CnnConfig, DistributedCnn, WeightUpdate};
    use zeiot_nn::tensor::Tensor;

    fn topology() -> Topology {
        Topology::grid(3, 3, 2.0, 3.0).unwrap()
    }

    fn small_net(seed: u64) -> DistributedCnn {
        let config = CnnConfig::new(1, 8, 8, 2, 3, 2, 8, 2).unwrap();
        let graph = config.unit_graph().unwrap();
        let assignment = Assignment::balanced_correspondence(&graph, &topology());
        let mut rng = SeedRng::new(seed);
        DistributedCnn::new(config, assignment, WeightUpdate::Independent, &mut rng)
    }

    fn pool(n: usize) -> Vec<(Tensor, usize)> {
        let mut rng = SeedRng::new(77);
        (0..n)
            .map(|i| {
                let mut img = Tensor::zeros(vec![1, 8, 8]);
                for y in 0..4 {
                    for x in 0..4 {
                        let (yy, xx) = if i % 2 == 0 { (y, x) } else { (y + 4, x + 4) };
                        img.set(&[0, yy, xx], 1.0 + rng.normal_with(0.0, 0.1) as f32);
                    }
                }
                (img, i % 2)
            })
            .collect()
    }

    fn tenant(name: &str, arrivals: ArrivalProcess) -> Tenant {
        let spec = TenantSpec::new(name, arrivals, SimDuration::from_millis(400));
        Tenant::new(spec, small_net(5), pool(8)).unwrap()
    }

    fn server(shards: usize, batch: usize, capacity: usize, tenants: Vec<Tenant>) -> Server {
        let config = ServeConfig::new(shards, batch, capacity, SimDuration::from_millis(40))
            .unwrap()
            .with_batch_overhead(SimDuration::from_millis(20));
        Server::new(config, topology(), tenants).unwrap()
    }

    #[test]
    fn config_validation() {
        assert!(ServeConfig::new(0, 1, 1, SimDuration::from_millis(1)).is_err());
        assert!(ServeConfig::new(1, 0, 1, SimDuration::from_millis(1)).is_err());
        assert!(ServeConfig::new(1, 1, 0, SimDuration::from_millis(1)).is_err());
        assert!(ServeConfig::new(1, 1, 1, SimDuration::ZERO).is_err());
        let config = ServeConfig::new(2, 4, 8, SimDuration::from_millis(1)).unwrap();
        assert_eq!(config.batch_overhead, SimDuration::ZERO);
        assert!(Server::new(config, topology(), Vec::new()).is_err());
    }

    #[test]
    fn every_offered_request_has_a_disposition() {
        let mut server = server(
            2,
            2,
            16,
            vec![
                tenant("a", ArrivalProcess::poisson(8.0)),
                tenant("b", ArrivalProcess::periodic(SimDuration::from_millis(200))),
            ],
        );
        let outcome = server.run(42, SimDuration::from_secs(5), None);
        let total = outcome.report.total();
        assert_eq!(total.offered, outcome.completions.len() as u64);
        assert_eq!(total.offered, total.served + total.shed() + total.failed);
        assert!(total.served > 0);
        // Completions are sorted and unique by (tenant, seq).
        assert!(outcome
            .completions
            .windows(2)
            .all(|w| (w[0].tenant, w[0].seq) < (w[1].tenant, w[1].seq)));
    }

    #[test]
    fn runs_are_reproducible_and_recording_is_transparent() {
        let run = |record: bool| {
            let mut server = server(
                2,
                3,
                8,
                vec![
                    tenant("a", ArrivalProcess::poisson(12.0)),
                    tenant(
                        "b",
                        ArrivalProcess::bursts(
                            4,
                            SimDuration::from_millis(5),
                            SimDuration::from_millis(600),
                        ),
                    ),
                ],
            );
            let mut rec = Recorder::new();
            let outcome = server.run(7, SimDuration::from_secs(4), record.then_some(&mut rec));
            (outcome.report, outcome.completions)
        };
        let (report_a, completions_a) = run(false);
        let (report_b, completions_b) = run(true);
        assert_eq!(report_a, report_b);
        assert_eq!(completions_a, completions_b);
    }

    #[test]
    fn overload_sheds_with_typed_reasons() {
        // One shard, tiny queue, offered load far beyond capacity.
        let mut server = server(1, 1, 2, vec![tenant("hot", ArrivalProcess::poisson(200.0))]);
        let outcome = server.run(3, SimDuration::from_secs(2), None);
        let stats = outcome.report.tenant(0).unwrap();
        assert!(stats.shed_shard_full > 0, "{stats:?}");
        assert!(stats.shed_rate() > 0.5, "{stats:?}");
        assert!(outcome.completions.iter().any(|c| matches!(
            c.outcome,
            Outcome::Shed {
                reason: RejectReason::ShardQueueFull
            }
        )));
    }

    #[test]
    fn tenant_cap_binds_before_a_roomy_shard_queue() {
        let spec = TenantSpec::new(
            "capped",
            ArrivalProcess::poisson(200.0),
            SimDuration::from_millis(400),
        )
        .with_max_queued(2);
        let capped = Tenant::new(spec, small_net(5), pool(8)).unwrap();
        let mut server = server(1, 1, 64, vec![capped]);
        let outcome = server.run(3, SimDuration::from_secs(2), None);
        let stats = outcome.report.tenant(0).unwrap();
        assert!(stats.shed_tenant_limit > 0, "{stats:?}");
        assert_eq!(stats.shed_shard_full, 0, "{stats:?}");
    }

    #[test]
    fn deadlines_are_missed_under_queueing_not_when_idle() {
        // Light periodic load on an idle worker: no misses.
        let mut light = server(
            1,
            1,
            32,
            vec![tenant(
                "light",
                ArrivalProcess::periodic(SimDuration::from_millis(500)),
            )],
        );
        let outcome = light.run(1, SimDuration::from_secs(4), None);
        assert_eq!(outcome.report.tenant(0).unwrap().deadline_misses, 0);
        // Saturating load with a deep queue: the backlog overruns the
        // 400 ms deadline.
        let mut heavy = server(
            1,
            1,
            64,
            vec![tenant("heavy", ArrivalProcess::poisson(40.0))],
        );
        let outcome = heavy.run(1, SimDuration::from_secs(4), None);
        let stats = outcome.report.tenant(0).unwrap();
        assert!(stats.deadline_misses > 0, "{stats:?}");
        assert!(stats.deadline_miss_rate() > 0.0);
    }

    #[test]
    fn batching_amortizes_overhead_under_load() {
        let offered = ArrivalProcess::poisson(25.0);
        let run = |batch: usize| {
            let mut s = server(1, batch, 64, vec![tenant("t", offered)]);
            let outcome = s.run(11, SimDuration::from_secs(4), None);
            outcome.report.tenant(0).unwrap().clone()
        };
        let unbatched = run(1);
        let batched = run(8);
        // 25 req/s × (40 + 20) ms = 1.5 utilization unbatched: the queue
        // grows without bound. Batch 8 cuts per-request cost to 47.5 ms
        // (utilization < 1.2 → bounded by the queue cap but far fewer
        // late completions).
        assert!(
            batched.p99_latency().unwrap() < unbatched.p99_latency().unwrap(),
            "batched {:?} vs unbatched {:?}",
            batched.p99_latency(),
            unbatched.p99_latency()
        );
        assert!(batched.served >= unbatched.served);
    }

    #[test]
    fn degraded_serving_walks_the_ladder() {
        let degraded = DegradedServing {
            plan: FaultPlan::uniform(9, 0.1).unwrap(),
            policy: RecoveryPolicy::Degrade {
                mode: DegradeMode::ZeroFill,
            },
            pass_period: SimDuration::from_millis(100),
            stale_cache: true,
            replace: None,
        };
        let mut server = server(1, 2, 32, vec![tenant("t", ArrivalProcess::poisson(6.0))])
            .with_degraded(degraded);
        let outcome = server.run(21, SimDuration::from_secs(4), None);
        let stats = outcome.report.tenant(0).unwrap();
        // Zero-fill always completes: everything served, much of it
        // degraded, nothing failed.
        assert_eq!(stats.failed, 0, "{stats:?}");
        assert!(stats.degraded > 0, "{stats:?}");
        let fault = outcome.report.fault.expect("fabric stats present");
        assert!(fault.drops > 0);
        assert!(fault.degraded > 0);
    }

    #[test]
    fn replacement_recovers_tenants_between_requests() {
        use zeiot_core::time::SimTime;
        use zeiot_microdeep::replace::ReplaceConfig;

        // Node 5 goes dark for the whole run; without re-placement every
        // pass substitutes its units' activations forever.
        let outage = || {
            FaultPlan::lossless()
                .with_outage(
                    zeiot_core::id::NodeId::new(5),
                    SimTime::ZERO,
                    SimTime::from_secs(100),
                )
                .unwrap()
        };
        let run = |replace: Option<ReplaceConfig>| {
            let degraded = DegradedServing {
                plan: outage(),
                policy: RecoveryPolicy::Degrade {
                    mode: DegradeMode::ZeroFill,
                },
                pass_period: SimDuration::from_millis(100),
                stale_cache: false,
                replace,
            };
            let mut server = server(1, 2, 32, vec![tenant("t", ArrivalProcess::poisson(6.0))])
                .with_degraded(degraded);
            server.run(21, SimDuration::from_secs(4), None)
        };
        let static_run = run(None);
        let replaced = run(Some(ReplaceConfig::incremental(64)));
        let static_stats = static_run.report.tenant(0).unwrap();
        // Statically-placed serving substitutes the dark node's conv and
        // dense traffic on every pass. The engine migrates those units
        // before the first inference; only the node's pinned *sensor*
        // units keep degrading (their readings are physically gone), so
        // the per-pass substitution volume drops.
        assert!(static_stats.degraded > 0, "{static_stats:?}");
        let static_fault = static_run.report.fault.expect("fabric stats");
        let replaced_fault = replaced.report.fault.expect("fabric stats");
        assert!(
            replaced_fault.degraded < static_fault.degraded,
            "replace {replaced_fault:?} vs static {static_fault:?}"
        );
        let rstats = replaced.report.replace.expect("engine stats present");
        assert_eq!(rstats.epochs, 1);
        assert!(rstats.migrations > 0);
        assert!(rstats.handoff_cost > 0);
        assert!(static_run.report.replace.is_none());
    }

    #[test]
    fn zero_fault_replacement_is_byte_identical_to_the_static_path() {
        use zeiot_microdeep::replace::{ReplaceConfig, ReplaceStats};

        let run = |replace: Option<ReplaceConfig>| {
            let degraded = DegradedServing {
                plan: FaultPlan::lossless(),
                policy: RecoveryPolicy::FailFast,
                pass_period: SimDuration::from_millis(100),
                stale_cache: false,
                replace,
            };
            let mut server = server(2, 2, 32, vec![tenant("t", ArrivalProcess::poisson(8.0))])
                .with_degraded(degraded);
            server.run(7, SimDuration::from_secs(4), None)
        };
        let without = run(None);
        let with = run(Some(ReplaceConfig::incremental(8)));
        // The engine never fires on a lossless plan: identical requests,
        // identical logits, identical tenant stats and fabric counters.
        assert_eq!(without.completions, with.completions);
        assert_eq!(without.report.tenants, with.report.tenants);
        assert_eq!(without.report.fault, with.report.fault);
        assert_eq!(with.report.replace, Some(ReplaceStats::default()));
    }

    #[test]
    fn stale_cache_answers_when_the_fabric_aborts() {
        // Fail-fast at 0.4% loss: most passes complete (populating the
        // cache), some abort and fall back to stale answers.
        let degraded = DegradedServing {
            plan: FaultPlan::uniform(17, 0.004).unwrap(),
            policy: RecoveryPolicy::FailFast,
            pass_period: SimDuration::from_millis(100),
            stale_cache: true,
            replace: None,
        };
        let mut cached = server(1, 1, 64, vec![tenant("t", ArrivalProcess::poisson(10.0))])
            .with_degraded(degraded);
        let outcome = cached.run(23, SimDuration::from_secs(6), None);
        let stats = outcome.report.tenant(0).unwrap();
        assert!(stats.stale > 0, "{stats:?}");
        assert!(outcome.completions.iter().any(|c| matches!(
            c.outcome,
            Outcome::Served {
                mode: ServiceMode::Stale,
                ..
            }
        )));
        // Without the cache the same aborts become failures.
        let degraded = DegradedServing {
            plan: FaultPlan::uniform(17, 0.004).unwrap(),
            policy: RecoveryPolicy::FailFast,
            pass_period: SimDuration::from_millis(100),
            stale_cache: false,
            replace: None,
        };
        let mut server2 = server(1, 1, 64, vec![tenant("t", ArrivalProcess::poisson(10.0))])
            .with_degraded(degraded);
        let outcome = server2.run(23, SimDuration::from_secs(6), None);
        assert!(outcome.report.tenant(0).unwrap().failed > 0);
    }

    #[test]
    fn int8_tenants_serve_through_the_full_ladder() {
        use crate::tenant::QuantMode;
        let int8_tenant = |seed: u64| {
            let spec = TenantSpec::new(
                "q",
                ArrivalProcess::poisson(6.0),
                SimDuration::from_millis(400),
            )
            .with_quant(QuantMode::Int8);
            Tenant::new(spec, small_net(seed), pool(8)).unwrap()
        };
        // Plain serving: reproducible, counters recorded.
        let run = || {
            let mut server = server(1, 2, 32, vec![int8_tenant(5)]);
            let mut rec = Recorder::new();
            let outcome = server.run(42, SimDuration::from_secs(4), Some(&mut rec));
            (outcome.report, outcome.completions, rec.snapshot())
        };
        let (report_a, completions_a, snap_a) = run();
        let (report_b, completions_b, snap_b) = run();
        assert_eq!(report_a, report_b);
        assert_eq!(completions_a, completions_b);
        assert_eq!(snap_a, snap_b);
        let stats = report_a.tenant(0).unwrap();
        assert!(stats.served > 0);
        let label = Label::part("q");
        assert_eq!(snap_a.counter_value("quant.forwards", &label), stats.served);
        // Degraded serving: the integer pass walks the same ladder.
        let degraded = DegradedServing {
            plan: FaultPlan::uniform(9, 0.1).unwrap(),
            policy: RecoveryPolicy::Degrade {
                mode: DegradeMode::ZeroFill,
            },
            pass_period: SimDuration::from_millis(100),
            stale_cache: true,
            replace: None,
        };
        let mut server2 = server(1, 2, 32, vec![int8_tenant(5)]).with_degraded(degraded);
        let outcome = server2.run(21, SimDuration::from_secs(4), None);
        let stats = outcome.report.tenant(0).unwrap();
        assert_eq!(stats.failed, 0, "{stats:?}");
        assert!(stats.degraded > 0, "{stats:?}");
    }

    #[test]
    fn dwell_times_tile_the_horizon_and_track_the_ladder() {
        use crate::stats::DwellState;
        let horizon = SimDuration::from_secs(4);
        // Clean serving: every tenant dwells Full for the whole run.
        let mut clean = server(1, 2, 32, vec![tenant("t", ArrivalProcess::poisson(6.0))]);
        let outcome = clean.run(21, horizon, None);
        let dwell = outcome.report.tenant(0).unwrap().dwell;
        assert!(dwell.total() >= horizon, "{dwell:?}");
        assert_eq!(dwell.degraded, SimDuration::ZERO);
        assert!((dwell.fraction(DwellState::Full) - 1.0).abs() < 1e-12);
        // Lossy serving: the ladder's Degraded rung shows up as dwell
        // time, and the buckets still tile at least the horizon (drain
        // may run past it).
        let degraded = DegradedServing {
            plan: FaultPlan::uniform(9, 0.1).unwrap(),
            policy: RecoveryPolicy::Degrade {
                mode: DegradeMode::ZeroFill,
            },
            pass_period: SimDuration::from_millis(100),
            stale_cache: true,
            replace: None,
        };
        let mut lossy = server(1, 2, 32, vec![tenant("t", ArrivalProcess::poisson(6.0))])
            .with_degraded(degraded);
        let outcome = lossy.run(21, horizon, None);
        let stats = outcome.report.tenant(0).unwrap();
        assert!(stats.degraded > 0, "{stats:?}");
        assert!(
            stats.dwell.degraded > SimDuration::ZERO,
            "{:?}",
            stats.dwell
        );
        assert!(stats.dwell.total() >= horizon, "{:?}", stats.dwell);
        // An idle tenant (no arrivals within the horizon) is credited a
        // full-horizon Full dwell rather than an empty trajectory.
        let mut idle = server(
            1,
            1,
            8,
            vec![tenant("idle", ArrivalProcess::poisson(0.001))],
        );
        let outcome = idle.run(3, horizon, None);
        let report_stats = outcome.report.tenant(0).unwrap();
        assert_eq!(report_stats.served, 0, "{report_stats:?}");
        assert_eq!(report_stats.dwell.full, horizon, "{report_stats:?}");
        let text = outcome.report.to_string();
        assert!(text.contains("dwell"), "{text}");
    }

    #[test]
    fn serve_metrics_reach_the_recorder() {
        let mut server = server(2, 2, 16, vec![tenant("obs", ArrivalProcess::poisson(10.0))]);
        let mut rec = Recorder::new();
        let outcome = server.run(31, SimDuration::from_secs(3), Some(&mut rec));
        let stats = outcome.report.tenant(0).unwrap();
        let label = Label::part("obs");
        assert_eq!(rec.counter_value("serve.offered", &label), stats.offered);
        assert_eq!(rec.counter_value("serve.served", &label), stats.served);
        assert_eq!(
            rec.histogram_ref("serve.latency", &label).unwrap().len(),
            stats.latencies().len()
        );
        let snap = rec.snapshot();
        assert!(snap
            .series
            .iter()
            .any(|s| s.name == "serve.queue_depth" && !s.points.is_empty()));
    }
}
