//! Per-tenant serving statistics and the run-level report.

use crate::request::TenantId;
use zeiot_core::time::SimDuration;
use zeiot_fault::FaultStats;
use zeiot_microdeep::replace::ReplaceStats;

/// One rung of the degradation ladder, as a *state* a tenant dwells
/// in: the [`crate::ServiceMode`] of its most recently completed
/// request (or `Failed` when that request could not be answered).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DwellState {
    /// Last answer was exact.
    Full,
    /// Last answer completed through degrade substitution.
    Degraded,
    /// Last answer came from the stale-result cache.
    Stale,
    /// Last request failed outright.
    Failed,
}

impl DwellState {
    /// Stable lowercase label for reports and metric names.
    pub fn label(&self) -> &'static str {
        match self {
            DwellState::Full => "full",
            DwellState::Degraded => "degraded",
            DwellState::Stale => "stale",
            DwellState::Failed => "failed",
        }
    }
}

/// How long a tenant spent in each degradation state over a run — the
/// piecewise-constant trajectory of [`DwellState`] integrated over the
/// horizon. A tenant starts in `Full`; each completed request moves it
/// to the state its outcome implies. Fusion layers weight modalities
/// by these fractions: a tenant that spent half the day answering
/// stale is half as trustworthy as its calibration accuracy suggests.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct DwellTimes {
    /// Time dwelt in [`DwellState::Full`].
    pub full: SimDuration,
    /// Time dwelt in [`DwellState::Degraded`].
    pub degraded: SimDuration,
    /// Time dwelt in [`DwellState::Stale`].
    pub stale: SimDuration,
    /// Time dwelt in [`DwellState::Failed`].
    pub failed: SimDuration,
}

impl DwellTimes {
    /// Accumulates `d` into `state`'s bucket.
    pub fn add(&mut self, state: DwellState, d: SimDuration) {
        match state {
            DwellState::Full => self.full += d,
            DwellState::Degraded => self.degraded += d,
            DwellState::Stale => self.stale += d,
            DwellState::Failed => self.failed += d,
        }
    }

    /// Total accounted time (the served horizon, once finalized).
    pub fn total(&self) -> SimDuration {
        self.full + self.degraded + self.stale + self.failed
    }

    /// The fraction of accounted time spent in `state` (`0.0` when
    /// nothing is accounted yet).
    pub fn fraction(&self, state: DwellState) -> f64 {
        let total = self.total();
        if total.is_zero() {
            return 0.0;
        }
        let part = match state {
            DwellState::Full => self.full,
            DwellState::Degraded => self.degraded,
            DwellState::Stale => self.stale,
            DwellState::Failed => self.failed,
        };
        part.as_secs_f64() / total.as_secs_f64()
    }

    /// Adds `other` into `self`, bucket by bucket.
    pub fn merge(&mut self, other: &DwellTimes) {
        self.full += other.full;
        self.degraded += other.degraded;
        self.stale += other.stale;
        self.failed += other.failed;
    }
}

/// Counters and latency samples for one tenant (or, merged, for the
/// whole run).
#[derive(Debug, Clone, Default, PartialEq)]
pub struct TenantStats {
    /// Requests the tenant's arrival process generated.
    pub offered: u64,
    /// Requests admitted into a shard queue.
    pub admitted: u64,
    /// Requests answered (any [`crate::ServiceMode`]).
    pub served: u64,
    /// Served requests whose pass was completed by degrade substitution.
    pub degraded: u64,
    /// Served requests answered from the stale-result cache.
    pub stale: u64,
    /// Admitted requests the fabric aborted with no fallback.
    pub failed: u64,
    /// Requests shed because the shard queue was full.
    pub shed_shard_full: u64,
    /// Requests shed because the tenant hit its admission cap.
    pub shed_tenant_limit: u64,
    /// Served requests that completed after their deadline.
    pub deadline_misses: u64,
    /// Served requests whose prediction matched the ground-truth label.
    pub correct: u64,
    /// Served requests that carried a ground-truth label.
    pub labelled: u64,
    /// Time spent in each degradation state over the run.
    pub dwell: DwellTimes,
    /// End-to-end latency (arrival → completion) of every served
    /// request, in seconds, in completion order.
    latencies: Vec<f64>,
}

impl TenantStats {
    /// Records one served request's latency.
    pub(crate) fn push_latency(&mut self, latency: SimDuration) {
        self.latencies.push(latency.as_secs_f64());
    }

    /// Requests shed for any reason.
    pub fn shed(&self) -> u64 {
        self.shed_shard_full + self.shed_tenant_limit
    }

    /// Fraction of offered requests shed.
    pub fn shed_rate(&self) -> f64 {
        if self.offered == 0 {
            return 0.0;
        }
        self.shed() as f64 / self.offered as f64
    }

    /// Fraction of served requests that overran their deadline.
    pub fn deadline_miss_rate(&self) -> f64 {
        if self.served == 0 {
            return 0.0;
        }
        self.deadline_misses as f64 / self.served as f64
    }

    /// Served requests per second of horizon.
    ///
    /// # Panics
    ///
    /// Panics if `horizon` is zero.
    pub fn throughput_hz(&self, horizon: SimDuration) -> f64 {
        // zeiot-audit: allow(p1) -- documented `# Panics` precondition guard
        assert!(!horizon.is_zero(), "zero horizon");
        self.served as f64 / horizon.as_secs_f64()
    }

    /// Classification accuracy over served, labelled requests.
    pub fn accuracy(&self) -> f64 {
        if self.labelled == 0 {
            return 0.0;
        }
        self.correct as f64 / self.labelled as f64
    }

    /// Nearest-rank latency quantile in seconds (`q` in `[0, 1]`), or
    /// `None` if nothing was served.
    ///
    /// # Panics
    ///
    /// Panics if `q` is outside `[0, 1]`.
    pub fn latency_quantile(&self, q: f64) -> Option<f64> {
        if self.latencies.is_empty() {
            return None;
        }
        // zeiot-audit: allow(p1) -- documented `# Panics` precondition guard
        assert!((0.0..=1.0).contains(&q), "quantile out of range: {q}");
        let mut sorted = self.latencies.clone();
        // total_cmp: a total order over f64, so the sort neither panics
        // nor depends on NaN placement (determinism contract rule h1).
        sorted.sort_by(f64::total_cmp);
        let rank = ((q * sorted.len() as f64).ceil() as usize).clamp(1, sorted.len());
        sorted.get(rank - 1).copied()
    }

    /// Median latency in seconds.
    pub fn p50_latency(&self) -> Option<f64> {
        self.latency_quantile(0.5)
    }

    /// 99th-percentile latency in seconds.
    pub fn p99_latency(&self) -> Option<f64> {
        self.latency_quantile(0.99)
    }

    /// The recorded latency samples, in completion order (seconds).
    pub fn latencies(&self) -> &[f64] {
        &self.latencies
    }

    /// Adds `other` into `self` (latency samples are appended in call
    /// order).
    pub fn merge(&mut self, other: &TenantStats) {
        self.offered += other.offered;
        self.admitted += other.admitted;
        self.served += other.served;
        self.degraded += other.degraded;
        self.stale += other.stale;
        self.failed += other.failed;
        self.shed_shard_full += other.shed_shard_full;
        self.shed_tenant_limit += other.shed_tenant_limit;
        self.deadline_misses += other.deadline_misses;
        self.correct += other.correct;
        self.labelled += other.labelled;
        self.dwell.merge(&other.dwell);
        self.latencies.extend_from_slice(&other.latencies);
    }
}

/// Everything one [`crate::Server::run`] measured.
#[derive(Debug, Clone, PartialEq)]
pub struct ServeReport {
    /// The simulated horizon the arrival streams covered.
    pub horizon: SimDuration,
    /// Per-tenant statistics, indexed like the server's tenants.
    pub tenants: Vec<(String, TenantStats)>,
    /// Fault counters merged across every shard's fabric, when the run
    /// served through one.
    pub fault: Option<FaultStats>,
    /// Re-placement counters merged across every tenant's engine, when
    /// the run re-placed between requests.
    pub replace: Option<ReplaceStats>,
}

impl ServeReport {
    /// All tenants' statistics merged.
    pub fn total(&self) -> TenantStats {
        let mut total = TenantStats::default();
        for (_, stats) in &self.tenants {
            total.merge(stats);
        }
        total
    }

    /// One tenant's statistics by server index.
    pub fn tenant(&self, id: TenantId) -> Option<&TenantStats> {
        self.tenants.get(id).map(|(_, s)| s)
    }
}

impl std::fmt::Display for ServeReport {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(
            f,
            "{:<12} {:>8} {:>8} {:>7} {:>7} {:>7} {:>9} {:>9} {:>9}",
            "tenant", "offered", "served", "shed", "miss", "stale", "thrpt/s", "p50 ms", "p99 ms"
        )?;
        for (name, s) in &self.tenants {
            writeln!(
                f,
                "{:<12} {:>8} {:>8} {:>7} {:>7} {:>7} {:>9.2} {:>9.1} {:>9.1}",
                name,
                s.offered,
                s.served,
                s.shed(),
                s.deadline_misses,
                s.stale,
                s.throughput_hz(self.horizon),
                s.p50_latency().unwrap_or(0.0) * 1e3,
                s.p99_latency().unwrap_or(0.0) * 1e3,
            )?;
        }
        for (name, s) in &self.tenants {
            if s.dwell.total().is_zero() {
                continue;
            }
            writeln!(
                f,
                "dwell {name:<12} full {:.2} degraded {:.2} stale {:.2} failed {:.2}",
                s.dwell.fraction(DwellState::Full),
                s.dwell.fraction(DwellState::Degraded),
                s.dwell.fraction(DwellState::Stale),
                s.dwell.fraction(DwellState::Failed),
            )?;
        }
        if let Some(fault) = &self.fault {
            writeln!(
                f,
                "fabric: {} sent, {} drops, {} degraded substitutions",
                fault.sent, fault.drops, fault.degraded
            )?;
        }
        if let Some(replace) = &self.replace {
            writeln!(
                f,
                "replace: {} epochs, {} migrations ({} failed, {} stranded), handoff cost {}",
                replace.epochs,
                replace.migrations,
                replace.failed_handoffs,
                replace.stranded,
                replace.handoff_cost
            )?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn stats_with(latencies: &[f64]) -> TenantStats {
        let mut s = TenantStats {
            offered: latencies.len() as u64 + 2,
            admitted: latencies.len() as u64,
            served: latencies.len() as u64,
            shed_shard_full: 1,
            shed_tenant_limit: 1,
            ..TenantStats::default()
        };
        for &l in latencies {
            s.push_latency(SimDuration::from_secs_f64(l));
        }
        s
    }

    #[test]
    fn dwell_times_accumulate_and_merge() {
        let mut d = DwellTimes::default();
        assert_eq!(d.total(), SimDuration::ZERO);
        assert_eq!(d.fraction(DwellState::Full), 0.0);
        d.add(DwellState::Full, SimDuration::from_secs(3));
        d.add(DwellState::Stale, SimDuration::from_secs(1));
        assert_eq!(d.total(), SimDuration::from_secs(4));
        assert!((d.fraction(DwellState::Full) - 0.75).abs() < 1e-12);
        assert!((d.fraction(DwellState::Stale) - 0.25).abs() < 1e-12);
        let mut other = DwellTimes::default();
        other.add(DwellState::Degraded, SimDuration::from_secs(2));
        d.merge(&other);
        assert_eq!(d.total(), SimDuration::from_secs(6));
        assert_eq!(d.degraded, SimDuration::from_secs(2));
        // TenantStats::merge carries dwell along.
        let mut a = TenantStats::default();
        a.dwell.add(DwellState::Full, SimDuration::from_secs(1));
        let mut b = TenantStats::default();
        b.dwell.add(DwellState::Failed, SimDuration::from_secs(5));
        a.merge(&b);
        assert_eq!(a.dwell.failed, SimDuration::from_secs(5));
        assert_eq!(a.dwell.total(), SimDuration::from_secs(6));
    }

    #[test]
    fn quantiles_use_nearest_rank() {
        let s = stats_with(&[0.4, 0.1, 0.3, 0.2]);
        assert_eq!(s.p50_latency(), Some(0.2));
        assert_eq!(s.latency_quantile(1.0), Some(0.4));
        assert_eq!(s.latency_quantile(0.0), Some(0.1));
        assert_eq!(TenantStats::default().p99_latency(), None);
    }

    #[test]
    fn rates_and_merge() {
        let mut a = stats_with(&[0.1, 0.2]);
        let b = stats_with(&[0.3]);
        assert!((a.shed_rate() - 2.0 / 4.0).abs() < 1e-12);
        a.merge(&b);
        assert_eq!(a.offered, 7);
        assert_eq!(a.served, 3);
        assert_eq!(a.latencies().len(), 3);
        assert!((a.throughput_hz(SimDuration::from_secs(3)) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn report_totals_and_display() {
        let report = ServeReport {
            horizon: SimDuration::from_secs(10),
            tenants: vec![
                ("a".into(), stats_with(&[0.1])),
                ("b".into(), stats_with(&[0.2, 0.3])),
            ],
            fault: None,
            replace: Some(ReplaceStats {
                epochs: 1,
                migrations: 2,
                ..ReplaceStats::default()
            }),
        };
        assert_eq!(report.total().served, 3);
        assert!(report.tenant(1).is_some());
        assert!(report.tenant(9).is_none());
        let text = report.to_string();
        assert!(text.contains("tenant") && text.contains('a') && text.contains('b'));
        assert!(text.contains("replace: 1 epochs, 2 migrations"));
    }
}
