//! One sharded worker queue: bounded admission, EDF ordering,
//! micro-batched dispatch, and the degradation ladder.
//!
//! A shard is a single virtual-time worker in front of a bounded queue.
//! Its life is a deterministic alternation of two moves:
//!
//! * **offer** — an arrival is presented; the shard first dispatches
//!   every micro-batch that completes at or before the arrival instant,
//!   then applies admission control (shard queue bound, then the
//!   tenant's cap) and either enqueues the request or sheds it with a
//!   typed [`RejectReason`].
//! * **dispatch** — when the worker frees up, it pops the
//!   earliest-deadline request (ties broken by `(tenant, seq)`, a total
//!   order) and gathers up to `batch − 1` more queued requests of the
//!   *same tenant* in EDF order — micro-batching amortizes the per-batch
//!   dispatch overhead, but only across requests that share a model.
//!   The batch occupies the worker for `batch_overhead + k ·
//!   service_time` and every request in it completes at the batch's end.
//!
//! A request already past its deadline when dispatched is still served
//! (and counted as a deadline miss): the tenant gets its answer late
//! rather than never, which matches how the rest of the workspace
//! prefers degraded answers over silence.

use crate::request::{Completion, Outcome, RejectReason, Request, ServiceMode, TenantId};
use crate::stats::{DwellState, TenantStats};
use crate::tenant::{Tenant, TenantModel};
use std::collections::BTreeMap;
use zeiot_core::time::{SimDuration, SimTime};
use zeiot_fault::FaultStats;
use zeiot_microdeep::lossy::LossyRuntime;
use zeiot_obs::trace::{ClockDomain, SpanEvent, SpanLayer, SpanScope, Tracer};
use zeiot_obs::{Label, Recorder};

/// `argmax` with the same first-tie-wins rule as
/// [`zeiot_nn::tensor::Tensor::argmax`].
fn argmax(values: &[f32]) -> usize {
    let Some(&first) = values.first() else {
        return 0;
    };
    let mut best = 0;
    let mut best_v = first;
    for (i, &v) in values.iter().enumerate().skip(1) {
        if v > best_v {
            best = i;
            best_v = v;
        }
    }
    best
}

/// One worker + bounded EDF queue; see the module docs.
#[derive(Debug)]
pub struct Shard {
    index: usize,
    batch: usize,
    queue_capacity: usize,
    service_time: SimDuration,
    batch_overhead: SimDuration,
    /// EDF order with a total tie-break: `(deadline, tenant, seq)`.
    queue: BTreeMap<(SimTime, TenantId, u64), Request>,
    queued_per_tenant: BTreeMap<TenantId, usize>,
    free_at: SimTime,
    fabric: Option<LossyRuntime>,
    stale_enabled: bool,
    stale: BTreeMap<TenantId, Vec<f32>>,
    /// Per tenant: the degradation state it currently dwells in and
    /// when it entered it (the previous completion instant). Tenants
    /// start `Full` at `t = 0`; sheds do not transition the state.
    dwell: BTreeMap<TenantId, (DwellState, SimTime)>,
    completions: Vec<Completion>,
}

impl Shard {
    /// Builds an idle shard. `fabric` is the shard's (optional) lossy
    /// transport; `stale_enabled` arms the stale-result cache rung of
    /// the degradation ladder.
    pub(crate) fn new(
        index: usize,
        batch: usize,
        queue_capacity: usize,
        service_time: SimDuration,
        batch_overhead: SimDuration,
        fabric: Option<LossyRuntime>,
        stale_enabled: bool,
    ) -> Self {
        Self {
            index,
            batch,
            queue_capacity,
            service_time,
            batch_overhead,
            queue: BTreeMap::new(),
            queued_per_tenant: BTreeMap::new(),
            free_at: SimTime::ZERO,
            fabric,
            stale_enabled,
            stale: BTreeMap::new(),
            dwell: BTreeMap::new(),
            completions: Vec::new(),
        }
    }

    /// The shard's index within the server.
    pub fn index(&self) -> usize {
        self.index
    }

    /// Requests currently queued (not in service).
    pub fn queue_depth(&self) -> usize {
        self.queue.len()
    }

    /// The fabric's fault counters, when this shard serves through one.
    pub fn fault_stats(&self) -> Option<&FaultStats> {
        self.fabric.as_ref().map(|rt| rt.stats())
    }

    fn metric_label(&self) -> Label {
        Label::part(format!("shard{}", self.index))
    }

    /// Presents one arrival to the shard.
    pub(crate) fn offer(
        &mut self,
        req: Request,
        tenants: &mut [Tenant],
        stats: &mut [TenantStats],
        recorder: Option<&mut Recorder>,
        mut tracer: Option<&mut Tracer>,
    ) {
        self.dispatch_until(req.arrival, tenants, stats, tracer.as_deref_mut());
        // After the catch-up dispatches, an empty queue means the worker
        // is idle: the next batch cannot start before this arrival.
        if self.queue.is_empty() && self.free_at < req.arrival {
            self.free_at = req.arrival;
        }
        let tenant = req.tenant;
        let queued = self.queued_per_tenant.get(&tenant).copied().unwrap_or(0);
        let reject = if self.queue.len() >= self.queue_capacity {
            Some(RejectReason::ShardQueueFull)
        // zeiot-audit: allow(p1) -- tenant ids are dense server-allocated indices, always < tenants.len()
        } else if queued >= tenants[tenant].spec.max_queued {
            Some(RejectReason::TenantLimit)
        } else {
            None
        };
        match reject {
            Some(reason) => {
                match reason {
                    RejectReason::ShardQueueFull => stats[tenant].shed_shard_full += 1,
                    RejectReason::TenantLimit => stats[tenant].shed_tenant_limit += 1,
                }
                // A shed request's trace is a zero-length root carrying
                // the typed rejection: latency 0, attribution 0.
                if let Some(tr) = tracer {
                    let t = tenant as u64;
                    if let Some(root) = tr.root(t, req.seq) {
                        tr.event(
                            t,
                            req.seq,
                            root,
                            req.arrival,
                            SpanEvent::Shed {
                                reason: reason.label().to_string(),
                            },
                        );
                    }
                    tr.finish(t, req.seq, req.arrival);
                }
                self.completions.push(Completion {
                    tenant,
                    seq: req.seq,
                    arrival: req.arrival,
                    outcome: Outcome::Shed { reason },
                });
            }
            None => {
                stats[tenant].admitted += 1;
                *self.queued_per_tenant.entry(tenant).or_insert(0) += 1;
                self.queue
                    .insert((req.deadline, tenant, req.seq), req.clone());
            }
        }
        if let Some(rec) = recorder {
            rec.sample(
                "serve.queue_depth",
                self.metric_label(),
                req.arrival,
                self.queue.len() as f64,
            );
        }
    }

    /// Dispatches micro-batches while the worker frees up at or before
    /// `t` and work is queued.
    fn dispatch_until(
        &mut self,
        t: SimTime,
        tenants: &mut [Tenant],
        stats: &mut [TenantStats],
        mut tracer: Option<&mut Tracer>,
    ) {
        while !self.queue.is_empty() && self.free_at <= t {
            self.dispatch_batch(tenants, stats, tracer.as_deref_mut());
        }
    }

    /// Dispatches everything still queued (end of the arrival stream).
    pub(crate) fn drain(
        &mut self,
        tenants: &mut [Tenant],
        stats: &mut [TenantStats],
        mut tracer: Option<&mut Tracer>,
    ) {
        while !self.queue.is_empty() {
            self.dispatch_batch(tenants, stats, tracer.as_deref_mut());
        }
    }

    /// Takes the completion log (sorted later by the server).
    pub(crate) fn take_completions(&mut self) -> Vec<Completion> {
        std::mem::take(&mut self.completions)
    }

    /// Closes every tenant's open dwell interval at the end of a run:
    /// the state its last completion left it in persists until
    /// `horizon_end` (or until that completion, when the drain ran past
    /// the horizon). Tenants that never completed a request have no
    /// entry here; the server credits them a full-horizon `Full` dwell.
    pub(crate) fn finalize_dwell(&mut self, stats: &mut [TenantStats], horizon_end: SimTime) {
        for (&tenant, &(state, since)) in &self.dwell {
            let end = if horizon_end > since {
                horizon_end
            } else {
                since
            };
            // zeiot-audit: allow(p1) -- dwell keys are admitted tenant ids, always < stats.len()
            stats[tenant].dwell.add(state, end.duration_since(since));
        }
        self.dwell.clear();
    }

    /// Writes the shard's fabric counters into `recorder` under its
    /// `shard<i>` label.
    pub(crate) fn record_fabric(&self, recorder: &mut Recorder) {
        if let Some(rt) = &self.fabric {
            rt.record_to(recorder, self.metric_label());
        }
    }

    fn dispatch_batch(
        &mut self,
        tenants: &mut [Tenant],
        stats: &mut [TenantStats],
        mut tracer: Option<&mut Tracer>,
    ) {
        let start = self.free_at;
        let Some((&head_key, _)) = self.queue.iter().next() else {
            return; // callers guard on a non-empty queue
        };
        let tenant = head_key.1;
        // EDF head plus up to `batch - 1` more requests of the same
        // tenant, in EDF order.
        let keys: Vec<(SimTime, TenantId, u64)> = self
            .queue
            .keys()
            .filter(|k| k.1 == tenant)
            .take(self.batch)
            .copied()
            .collect();
        let batch: Vec<Request> = keys.iter().filter_map(|k| self.queue.remove(k)).collect();
        if let Some(queued) = self.queued_per_tenant.get_mut(&tenant) {
            *queued = queued.saturating_sub(batch.len());
        }
        let completion = start + self.batch_overhead + self.service_time * batch.len() as u64;
        self.free_at = completion;
        for (slot, req) in batch.into_iter().enumerate() {
            // Serve-clock spans *tile*: queue [arrival, start] and batch
            // [start, completion] cover the root exactly; inside the
            // batch, the dispatch overhead and this request's own
            // service slot are children, leaving the other members'
            // slots as batch self-time. Attribution therefore sums to
            // the end-to-end latency by construction.
            let mut infer_span = None;
            if let Some(tr) = tracer.as_deref_mut() {
                let t = req.tenant as u64;
                if let Some(root) = tr.root(t, req.seq) {
                    let _ = tr.push_span(
                        t,
                        req.seq,
                        root,
                        SpanLayer::Queue,
                        "serve.queue",
                        ClockDomain::Serve,
                        req.arrival,
                        start,
                    );
                    if let Some(batch_span) = tr.push_span(
                        t,
                        req.seq,
                        root,
                        SpanLayer::Batch,
                        "serve.batch",
                        ClockDomain::Serve,
                        start,
                        completion,
                    ) {
                        let _ = tr.push_span(
                            t,
                            req.seq,
                            batch_span,
                            SpanLayer::Batch,
                            "serve.batch_overhead",
                            ClockDomain::Serve,
                            start,
                            start + self.batch_overhead,
                        );
                        let slot_start =
                            start + self.batch_overhead + self.service_time * slot as u64;
                        infer_span = tr.push_span(
                            t,
                            req.seq,
                            batch_span,
                            SpanLayer::Infer,
                            "serve.infer",
                            ClockDomain::Serve,
                            slot_start,
                            slot_start + self.service_time,
                        );
                    }
                }
            }
            let scope = match (tracer.as_deref_mut(), infer_span) {
                (Some(tr), Some(span)) => tr.scope(req.tenant as u64, req.seq, span),
                _ => None,
            };
            let answer = self.execute(&req, tenants, scope);
            // zeiot-audit: allow(p1) -- queued requests carry server-allocated tenant ids < stats.len()
            let s = &mut stats[req.tenant];
            let outcome = match answer {
                Some((mode, logits)) => {
                    s.served += 1;
                    match mode {
                        ServiceMode::Full => {}
                        ServiceMode::Degraded => s.degraded += 1,
                        ServiceMode::Stale => s.stale += 1,
                    }
                    let missed = completion > req.deadline;
                    if missed {
                        s.deadline_misses += 1;
                    }
                    s.push_latency(completion.duration_since(req.arrival));
                    let prediction = argmax(&logits);
                    if let Some(label) = req.label {
                        s.labelled += 1;
                        if prediction == label {
                            s.correct += 1;
                        }
                    }
                    Outcome::Served {
                        completion,
                        mode,
                        logits,
                        prediction,
                        missed_deadline: missed,
                    }
                }
                None => {
                    s.failed += 1;
                    Outcome::Failed
                }
            };
            // Close out the dwell interval that ends at this
            // completion: the tenant was in its previous state from the
            // last transition until now. Completions on one shard are
            // monotone (the worker frees up forward in time), so the
            // interval is never negative.
            let next_state = match &outcome {
                Outcome::Served { mode, .. } => match mode {
                    ServiceMode::Full => DwellState::Full,
                    ServiceMode::Degraded => DwellState::Degraded,
                    ServiceMode::Stale => DwellState::Stale,
                },
                Outcome::Failed => DwellState::Failed,
                Outcome::Shed { .. } => DwellState::Full, // unreachable in dispatch
            };
            let entry = self
                .dwell
                .entry(req.tenant)
                .or_insert((DwellState::Full, SimTime::ZERO));
            s.dwell.add(entry.0, completion.duration_since(entry.1));
            *entry = (next_state, completion);
            if let Some(tr) = tracer.as_deref_mut() {
                let t = req.tenant as u64;
                if let Some(root) = tr.root(t, req.seq) {
                    match &outcome {
                        Outcome::Served {
                            mode,
                            missed_deadline,
                            ..
                        } => {
                            if *mode == ServiceMode::Stale {
                                if let Some(infer) = infer_span {
                                    tr.event(t, req.seq, infer, completion, SpanEvent::Aborted);
                                    tr.event(t, req.seq, infer, completion, SpanEvent::StaleAnswer);
                                }
                            }
                            if *missed_deadline {
                                tr.event(t, req.seq, root, completion, SpanEvent::DeadlineMiss);
                            }
                        }
                        Outcome::Failed => {
                            if let Some(infer) = infer_span {
                                tr.event(t, req.seq, infer, completion, SpanEvent::Aborted);
                            }
                        }
                        Outcome::Shed { .. } => {}
                    }
                }
                tr.finish(t, req.seq, completion);
            }
            self.completions.push(Completion {
                tenant: req.tenant,
                seq: req.seq,
                arrival: req.arrival,
                outcome,
            });
        }
    }

    /// Runs one inference down the degradation ladder. When `scope` is
    /// present, the lossy runtime appends fabric-clock hop spans under
    /// its parent (the request's infer span). A tenant serving in
    /// [`crate::QuantMode::Int8`] executes its frozen integer model
    /// through the very same ladder.
    fn execute(
        &mut self,
        req: &Request,
        tenants: &mut [Tenant],
        mut scope: Option<SpanScope<'_>>,
    ) -> Option<(ServiceMode, Vec<f32>)> {
        // zeiot-audit: allow(p1) -- queued requests carry server-allocated tenant ids < tenants.len()
        let tenant = &mut tenants[req.tenant];
        let replace = &mut tenant.replace;
        let (substituted_before, logits) = match (&mut tenant.model, &mut self.fabric) {
            // No fabric: the exact in-memory pass, byte-identical to
            // calling the model's forward directly.
            (TenantModel::Cnn { net, quantized }, None) => {
                let logits = match quantized {
                    Some(q) => q.forward_quantized(&req.input),
                    None => net.forward(&req.input),
                };
                return Some((ServiceMode::Full, logits.data().to_vec()));
            }
            (TenantModel::Custom(model), None) => {
                return Some((ServiceMode::Full, model.infer(&req.input)));
            }
            (TenantModel::Cnn { net, quantized }, Some(rt)) => {
                // Re-place between requests: poll liveness and migrate
                // units off dark nodes before this inference runs. Done
                // ahead of the substitution snapshot so handoff-frame
                // corruption is charged to the migration (visible in the
                // fabric counters and `replace.migrate` spans), not to
                // this request's service mode.
                if let Some(engine) = replace {
                    if engine.poll(net, rt, scope.as_mut()) > 0 {
                        if let Some(q) = quantized {
                            q.resync_placement(net);
                        }
                    }
                }
                let substituted_before = rt.stats().degraded + rt.stats().corrupted;
                let out = match quantized {
                    Some(q) => q.forward_quantized_lossy_traced(&req.input, rt, scope.as_mut()),
                    None => net.forward_lossy_traced(&req.input, rt, scope.as_mut()),
                };
                rt.advance_pass();
                (substituted_before, out.map(|t| t.data().to_vec()))
            }
            (TenantModel::Custom(model), Some(rt)) => {
                // Custom models walk the very same ladder: their remote
                // feature gathers go through `rt`, substitutions mark
                // the answer Degraded, and an aborted pass falls back to
                // the stale cache.
                let substituted_before = rt.stats().degraded + rt.stats().corrupted;
                let out = model.infer_lossy(&req.input, rt, scope.as_mut());
                rt.advance_pass();
                (substituted_before, out)
            }
        };
        self.settle_lossy(req.tenant, substituted_before, logits)
    }

    /// The shared tail of a lossy execution: classify the completed
    /// pass as Full/Degraded from the fabric's substitution delta, feed
    /// the stale cache, or — on an aborted pass — fall back to it.
    fn settle_lossy(
        &mut self,
        tenant: TenantId,
        substituted_before: u64,
        logits: Option<Vec<f32>>,
    ) -> Option<(ServiceMode, Vec<f32>)> {
        let rt = self.fabric.as_mut()?;
        match logits {
            Some(logits) => {
                let substituted_after = rt.stats().degraded + rt.stats().corrupted;
                let mode = if substituted_after > substituted_before {
                    ServiceMode::Degraded
                } else {
                    ServiceMode::Full
                };
                if self.stale_enabled {
                    self.stale.insert(tenant, logits.clone());
                }
                Some((mode, logits))
            }
            None => {
                rt.note_aborted();
                if self.stale_enabled {
                    self.stale
                        .get(&tenant)
                        .cloned()
                        .map(|logits| (ServiceMode::Stale, logits))
                } else {
                    None
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn argmax_matches_tensor_semantics() {
        assert_eq!(argmax(&[1.0, 3.0, 3.0, 2.0]), 1); // first tie wins
        assert_eq!(argmax(&[-1.0]), 0);
        assert_eq!(argmax(&[0.5, 0.25, 0.9]), 2);
    }
}
