//! Deterministic request-arrival generators.
//!
//! Each tenant's offered load is an [`ArrivalProcess`] materialized into
//! a concrete list of arrival instants *before* the serving loop runs.
//! The generator draws only from the `SeedRng` it is handed (the server
//! derives one per tenant with [`zeiot_core::rng::SeedRng::for_point`]),
//! so a tenant's arrival stream is a pure function of `(master seed,
//! tenant index)` — independent of the other tenants, the shard layout,
//! and the thread count of any surrounding sweep.

use zeiot_core::rng::SeedRng;
use zeiot_core::time::{SimDuration, SimTime};

/// A tenant's request-arrival model.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum ArrivalProcess {
    /// Memoryless arrivals: exponential inter-arrival gaps at `rate_hz`.
    Poisson {
        /// Mean arrival rate in requests per second.
        rate_hz: f64,
    },
    /// Fixed-period arrivals starting at `phase`.
    Periodic {
        /// Gap between consecutive requests.
        period: SimDuration,
        /// Offset of the first request.
        phase: SimDuration,
    },
    /// On/off traffic: `burst` back-to-back requests spaced `spacing`,
    /// with exponential idle gaps of mean `mean_gap` between bursts.
    Bursts {
        /// Requests per burst.
        burst: usize,
        /// Spacing between requests inside a burst.
        spacing: SimDuration,
        /// Mean idle gap between the end of one burst and the start of
        /// the next.
        mean_gap: SimDuration,
    },
}

impl ArrivalProcess {
    /// A Poisson process at `rate_hz` requests per second.
    ///
    /// # Panics
    ///
    /// Panics if `rate_hz` is not finite and positive.
    pub fn poisson(rate_hz: f64) -> Self {
        // zeiot-audit: allow(p1) -- documented `# Panics` precondition guard
        assert!(
            rate_hz.is_finite() && rate_hz > 0.0,
            "rate must be positive, got {rate_hz}"
        );
        Self::Poisson { rate_hz }
    }

    /// A periodic process with the given period and zero phase.
    ///
    /// # Panics
    ///
    /// Panics if `period` is zero.
    pub fn periodic(period: SimDuration) -> Self {
        // zeiot-audit: allow(p1) -- documented `# Panics` precondition guard
        assert!(!period.is_zero(), "period must be non-zero");
        Self::Periodic {
            period,
            phase: SimDuration::ZERO,
        }
    }

    /// A bursty process.
    ///
    /// # Panics
    ///
    /// Panics if `burst` is zero or `mean_gap` is zero.
    pub fn bursts(burst: usize, spacing: SimDuration, mean_gap: SimDuration) -> Self {
        // zeiot-audit: allow(p1) -- documented `# Panics` precondition guards
        assert!(burst > 0, "burst must be non-empty");
        assert!(!mean_gap.is_zero(), "mean gap must be non-zero");
        Self::Bursts {
            burst,
            spacing,
            mean_gap,
        }
    }

    /// The process with its offered load multiplied by `k` (rates scale
    /// up, periods and gaps scale down; burst sizes are unchanged).
    ///
    /// # Panics
    ///
    /// Panics if `k` is not finite and positive.
    pub fn scaled(&self, k: f64) -> Self {
        // zeiot-audit: allow(p1) -- documented `# Panics` precondition guard
        assert!(k.is_finite() && k > 0.0, "load factor must be positive");
        match *self {
            Self::Poisson { rate_hz } => Self::Poisson {
                rate_hz: rate_hz * k,
            },
            Self::Periodic { period, phase } => Self::Periodic {
                period: period.mul_f64(1.0 / k),
                phase,
            },
            Self::Bursts {
                burst,
                spacing,
                mean_gap,
            } => Self::Bursts {
                burst,
                spacing,
                mean_gap: mean_gap.mul_f64(1.0 / k),
            },
        }
    }

    /// The long-run mean offered rate in requests per second.
    pub fn mean_rate_hz(&self) -> f64 {
        match *self {
            Self::Poisson { rate_hz } => rate_hz,
            Self::Periodic { period, .. } => 1.0 / period.as_secs_f64(),
            Self::Bursts {
                burst,
                spacing,
                mean_gap,
            } => {
                let cycle = spacing.as_secs_f64() * (burst.saturating_sub(1)) as f64
                    + mean_gap.as_secs_f64();
                burst as f64 / cycle
            }
        }
    }

    /// Materializes every arrival instant in `[0, horizon)`, strictly
    /// non-decreasing, drawing only from `rng`.
    pub fn arrivals(&self, horizon: SimDuration, rng: &mut SeedRng) -> Vec<SimTime> {
        let end = SimTime::ZERO + horizon;
        let mut out = Vec::new();
        match *self {
            Self::Poisson { rate_hz } => {
                let mut t = SimTime::ZERO + SimDuration::from_secs_f64(rng.exponential(rate_hz));
                while t < end {
                    out.push(t);
                    t += SimDuration::from_secs_f64(rng.exponential(rate_hz));
                }
            }
            Self::Periodic { period, phase } => {
                let mut t = SimTime::ZERO + phase;
                while t < end {
                    out.push(t);
                    t += period;
                }
            }
            Self::Bursts {
                burst,
                spacing,
                mean_gap,
            } => {
                let gap_rate = 1.0 / mean_gap.as_secs_f64();
                let mut t = SimTime::ZERO + SimDuration::from_secs_f64(rng.exponential(gap_rate));
                'outer: loop {
                    for i in 0..burst {
                        let at = t + spacing * i as u64;
                        if at >= end {
                            break 'outer;
                        }
                        out.push(at);
                    }
                    t = t
                        + spacing * burst.saturating_sub(1) as u64
                        + SimDuration::from_secs_f64(rng.exponential(gap_rate));
                }
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn poisson_is_reproducible_and_roughly_calibrated() {
        let horizon = SimDuration::from_secs(200);
        let a = ArrivalProcess::poisson(10.0).arrivals(horizon, &mut SeedRng::new(1));
        let b = ArrivalProcess::poisson(10.0).arrivals(horizon, &mut SeedRng::new(1));
        assert_eq!(a, b);
        // ~2000 expected; allow wide slack.
        assert!(a.len() > 1500 && a.len() < 2500, "n={}", a.len());
        assert!(a.windows(2).all(|w| w[0] <= w[1]));
    }

    #[test]
    fn periodic_hits_exact_instants() {
        let arrivals = ArrivalProcess::periodic(SimDuration::from_millis(250))
            .arrivals(SimDuration::from_secs(1), &mut SeedRng::new(0));
        assert_eq!(
            arrivals,
            vec![
                SimTime::ZERO,
                SimTime::from_millis(250),
                SimTime::from_millis(500),
                SimTime::from_millis(750),
            ]
        );
    }

    #[test]
    fn bursts_cluster_and_stay_in_horizon() {
        let p = ArrivalProcess::bursts(
            4,
            SimDuration::from_millis(5),
            SimDuration::from_millis(500),
        );
        let horizon = SimDuration::from_secs(30);
        let arrivals = p.arrivals(horizon, &mut SeedRng::new(3));
        assert!(!arrivals.is_empty());
        assert!(arrivals.iter().all(|&t| t < SimTime::ZERO + horizon));
        assert!(arrivals.windows(2).all(|w| w[0] <= w[1]));
        // Within a burst consecutive gaps are exactly `spacing`.
        let tight = arrivals
            .windows(2)
            .filter(|w| w[1] - w[0] == SimDuration::from_millis(5))
            .count();
        assert!(
            tight > arrivals.len() / 2,
            "tight={tight}/{}",
            arrivals.len()
        );
    }

    #[test]
    fn scaling_moves_the_mean_rate() {
        for p in [
            ArrivalProcess::poisson(4.0),
            ArrivalProcess::periodic(SimDuration::from_millis(250)),
            ArrivalProcess::bursts(5, SimDuration::from_millis(10), SimDuration::from_secs(1)),
        ] {
            let base = p.mean_rate_hz();
            let doubled = p.scaled(2.0).mean_rate_hz();
            assert!(
                (doubled / base - 2.0).abs() < 0.25,
                "{p:?}: {base} -> {doubled}"
            );
        }
    }

    #[test]
    #[should_panic]
    fn zero_rate_is_rejected() {
        let _ = ArrivalProcess::poisson(0.0);
    }
}
