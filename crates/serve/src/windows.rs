//! Windowed metric snapshots: slicing a [`ServeOutcome`] into
//! per-window [`Snapshot`]s for burn-rate SLO evaluation
//! ([`zeiot_obs::slo`]).
//!
//! Each window covers exactly `[i·w, (i+1)·w)` of virtual time and
//! holds only that window's traffic (not cumulative totals), which is
//! the contract [`zeiot_obs::slo::SloSpec::evaluate`] expects. Events
//! are bucketed on the clock at which they become observable:
//!
//! * **offered / shed** counters land in the window of the request's
//!   *arrival* — admission decisions happen at the front door;
//! * **served / deadline-miss / latency** land in the window of the
//!   request's *completion* — a latency sample does not exist until the
//!   batch finishes;
//! * **failed** requests carry no completion time in their
//!   [`Completion`], so they are bucketed by arrival.
//!
//! Completions after the horizon (the end-of-stream drain) fold into
//! the final window.

use crate::request::Outcome;
use crate::server::ServeOutcome;
use zeiot_core::time::{SimDuration, SimTime};
use zeiot_obs::{Label, Recorder, Snapshot};

/// Slices `outcome` into consecutive `window`-wide snapshots, each
/// paired with its window-end virtual time. Counters and the
/// `serve.latency` histogram are labeled per tenant
/// (`Label::part(name)`), matching the cumulative metrics
/// [`crate::Server::run`] records; each latency sample is additionally
/// observed under [`Label::Global`], the fleet-wide histogram
/// `Global`-scoped p99 SLOs read.
///
/// # Panics
///
/// Panics if `window` is zero.
pub fn windowed_snapshots(outcome: &ServeOutcome, window: SimDuration) -> Vec<(SimTime, Snapshot)> {
    // zeiot-audit: allow(p1) -- documented `# Panics` precondition guard
    assert!(!window.is_zero(), "SLO window must be non-zero");
    let w = window.as_nanos();
    let n = outcome.report.horizon.as_nanos().div_ceil(w).max(1);
    let mut recorders: Vec<Recorder> = (0..n).map(|_| Recorder::new()).collect();
    let bucket = |t: SimTime| -> usize { (t.as_nanos() / w).min(n - 1) as usize };
    for c in &outcome.completions {
        let name = outcome
            .report
            .tenants
            .get(c.tenant)
            .map_or("?", |(name, _)| name.as_str());
        let label = Label::part(name.to_string());
        let arrived = bucket(c.arrival);
        // zeiot-audit: allow(p1) -- bucket() clamps to n-1, so every window index is in range
        recorders[arrived].add("serve.offered", label.clone(), 1);
        match &c.outcome {
            Outcome::Served {
                completion,
                missed_deadline,
                ..
            } => {
                recorders[arrived].add("serve.admitted", label.clone(), 1);
                let done = bucket(*completion);
                recorders[done].add("serve.served", label.clone(), 1);
                if *missed_deadline {
                    recorders[done].add("serve.deadline_miss", label.clone(), 1);
                }
                let latency = completion.duration_since(c.arrival).as_secs_f64();
                recorders[done].observe("serve.latency", label, latency);
                recorders[done].observe("serve.latency", Label::Global, latency);
            }
            Outcome::Shed { reason } => {
                let counter = match reason.label() {
                    "shard_queue_full" => "serve.shed.shard_queue_full",
                    _ => "serve.shed.tenant_limit",
                };
                recorders[arrived].add(counter, label, 1);
            }
            Outcome::Failed => {
                recorders[arrived].add("serve.admitted", label.clone(), 1);
                recorders[arrived].add("serve.failed", label, 1);
            }
        }
    }
    recorders
        .into_iter()
        .enumerate()
        .map(|(i, rec)| (SimTime::from_nanos((i as u64 + 1) * w), rec.snapshot()))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::request::{Completion, RejectReason, ServiceMode};
    use crate::stats::{ServeReport, TenantStats};

    fn served(tenant: usize, seq: u64, arrival_ms: u64, completion_ms: u64) -> Completion {
        Completion {
            tenant,
            seq,
            arrival: SimTime::from_millis(arrival_ms),
            outcome: Outcome::Served {
                completion: SimTime::from_millis(completion_ms),
                mode: ServiceMode::Full,
                logits: vec![1.0, 0.0],
                prediction: 0,
                missed_deadline: completion_ms - arrival_ms > 100,
            },
        }
    }

    fn outcome(completions: Vec<Completion>) -> ServeOutcome {
        ServeOutcome {
            report: ServeReport {
                horizon: SimDuration::from_secs(3),
                tenants: vec![
                    ("alpha".to_string(), TenantStats::default()),
                    ("beta".to_string(), TenantStats::default()),
                ],
                fault: None,
                replace: None,
            },
            completions,
        }
    }

    #[test]
    fn events_land_in_arrival_and_completion_windows() {
        // Arrives in window 0, completes in window 1; a shed in window 2.
        let out = outcome(vec![
            served(0, 0, 900, 1_200),
            Completion {
                tenant: 1,
                seq: 0,
                arrival: SimTime::from_millis(2_100),
                outcome: Outcome::Shed {
                    reason: RejectReason::ShardQueueFull,
                },
            },
        ]);
        let windows = windowed_snapshots(&out, SimDuration::from_secs(1));
        assert_eq!(windows.len(), 3);
        assert_eq!(windows[0].0, SimTime::from_secs(1));
        let alpha = Label::part("alpha");
        let beta = Label::part("beta");
        assert_eq!(windows[0].1.counter_value("serve.offered", &alpha), 1);
        assert_eq!(windows[0].1.counter_value("serve.served", &alpha), 0);
        assert_eq!(windows[1].1.counter_value("serve.served", &alpha), 1);
        assert_eq!(windows[2].1.counter_value("serve.offered", &beta), 1);
        assert_eq!(
            windows[2]
                .1
                .counter_value("serve.shed.shard_queue_full", &beta),
            1
        );
        // The latency sample rides the completion window, both
        // per-tenant and fleet-wide.
        assert!(windows[1]
            .1
            .histograms
            .iter()
            .any(|h| h.name == "serve.latency" && h.label == alpha));
        assert!(windows[1]
            .1
            .histograms
            .iter()
            .any(|h| h.name == "serve.latency" && h.label == Label::Global));
    }

    #[test]
    fn drain_spillover_folds_into_the_final_window() {
        let out = outcome(vec![served(0, 0, 2_900, 5_000)]);
        let windows = windowed_snapshots(&out, SimDuration::from_secs(1));
        assert_eq!(windows.len(), 3);
        let alpha = Label::part("alpha");
        assert_eq!(windows[2].1.counter_value("serve.served", &alpha), 1);
    }

    #[test]
    fn window_totals_match_cumulative_counts() {
        let out = outcome(vec![
            served(0, 0, 100, 250),
            served(0, 1, 1_100, 1_300),
            served(1, 0, 500, 800),
            Completion {
                tenant: 1,
                seq: 1,
                arrival: SimTime::from_millis(600),
                outcome: Outcome::Failed,
            },
        ]);
        let windows = windowed_snapshots(&out, SimDuration::from_secs(1));
        let offered: u64 = windows
            .iter()
            .map(|(_, s)| s.counter_total("serve.offered"))
            .sum();
        let served_total: u64 = windows
            .iter()
            .map(|(_, s)| s.counter_total("serve.served"))
            .sum();
        let failed: u64 = windows
            .iter()
            .map(|(_, s)| s.counter_total("serve.failed"))
            .sum();
        assert_eq!(offered, 4);
        assert_eq!(served_total, 3);
        assert_eq!(failed, 1);
    }
}
