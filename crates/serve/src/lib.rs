//! # zeiot-serve
//!
//! A deterministic, virtual-time, multi-tenant inference serving layer:
//! the piece that turns MicroDeep deployments into a *service*. Every
//! crate below this one evaluates a single deployment at a time; this
//! crate admits a **stream** of context-recognition requests from many
//! tenants, schedules them across sharded worker queues with
//! micro-batching and deadline-aware (EDF) dispatch, applies per-tenant
//! admission control with typed load-shedding, and — when a shard's
//! radio fabric misbehaves — falls back down a degradation ladder
//! instead of failing.
//!
//! The design constraint shared with the rest of the workspace is
//! **determinism**: the serving loop runs on the simulated clock
//! ([`zeiot_core::time::SimTime`]), arrival streams are pure functions of
//! `(seed, tenant index)` via [`zeiot_core::rng::SeedRng::for_point`],
//! every queue uses a total order for tie-breaking, and fault decisions
//! are the pure hashes of [`zeiot_fault::FaultPlan`]. A run is therefore
//! byte-reproducible across repetitions and — when driven as sweep
//! points by `zeiot-bench` — across thread counts.
//!
//! ## The degradation ladder
//!
//! 1. **Full** — the inference completes exactly (no fabric, or every
//!    message delivered intact).
//! 2. **Degraded** — the fabric lost or corrupted messages but a
//!    [`zeiot_fault::RecoveryPolicy::Degrade`] substitution (zero-fill /
//!    last-value-hold via `microdeep::lossy`) completed the pass.
//! 3. **Stale** — the fabric aborted the pass (fail-fast or exhausted
//!    retransmissions) and the shard answered from its per-tenant
//!    stale-result cache.
//! 4. **Failed** — no rung could answer; the request is counted, never
//!    silently dropped.
//!
//! Requests that admission control turns away are **shed** with a typed
//! [`RejectReason`] rather than queued unboundedly.
//!
//! # Example
//!
//! ```
//! use zeiot_core::rng::SeedRng;
//! use zeiot_core::time::SimDuration;
//! use zeiot_microdeep::{Assignment, CnnConfig, DistributedCnn, WeightUpdate};
//! use zeiot_net::Topology;
//! use zeiot_nn::tensor::Tensor;
//! use zeiot_serve::{ArrivalProcess, ServeConfig, Server, Tenant, TenantSpec};
//!
//! let config = CnnConfig::new(1, 8, 8, 2, 3, 2, 8, 2).unwrap();
//! let topo = Topology::grid(3, 3, 2.0, 3.0).unwrap();
//! let graph = config.unit_graph().unwrap();
//! let assignment = Assignment::balanced_correspondence(&graph, &topo);
//! let mut rng = SeedRng::new(7);
//! let net = DistributedCnn::new(config, assignment, WeightUpdate::Independent, &mut rng);
//! let pool = vec![(Tensor::zeros(vec![1, 8, 8]), 0usize)];
//!
//! let spec = TenantSpec::new("demo", ArrivalProcess::poisson(5.0), SimDuration::from_millis(500));
//! let tenant = Tenant::new(spec, net, pool).unwrap();
//! let serve_config = ServeConfig::new(1, 2, 16, SimDuration::from_millis(20)).unwrap();
//! let mut server = Server::new(serve_config, topo, vec![tenant]).unwrap();
//! let outcome = server.run(42, SimDuration::from_secs(2), None);
//! assert_eq!(outcome.report.total().offered, outcome.completions.len() as u64);
//! ```

pub mod arrival;
pub mod model;
pub mod request;
pub mod server;
pub mod shard;
pub mod stats;
pub mod tenant;
pub mod windows;

pub use arrival::ArrivalProcess;
pub use model::ServeModel;
pub use request::{Completion, Outcome, RejectReason, Request, ServiceMode, TenantId};
pub use server::{DegradedServing, ServeConfig, ServeOutcome, Server};
pub use shard::Shard;
pub use stats::{DwellState, DwellTimes, ServeReport, TenantStats};
pub use tenant::{QuantMode, Tenant, TenantModel, TenantSpec};
pub use windows::windowed_snapshots;
