//! The model interface a tenant serves behind.
//!
//! The serving layer originally hosted exactly one model family — the
//! distributed CNN (f32 or frozen int8). Composite venue scenarios
//! (`zeiot-scenario`) put *sensing estimators* behind the same shards,
//! queues, and degradation ladder, so the executable surface is
//! factored into this object-safe trait: anything that can turn an
//! input tensor into a score vector — optionally gathering its
//! features over the lossy fabric — can be a tenant.

use zeiot_microdeep::lossy::LossyRuntime;
use zeiot_nn::tensor::Tensor;
use zeiot_obs::trace::SpanScope;

/// A model the serving layer can execute for a tenant.
///
/// Implementations must be deterministic: the same input (and the same
/// fabric state) must produce the same scores, because a serve run is
/// a pure function of `(server, seed, horizon)`.
pub trait ServeModel: std::fmt::Debug + Send {
    /// The exact in-memory inference (no fabric): one score per class,
    /// argmax'd by the shard with first-tie-wins semantics.
    fn infer(&mut self, input: &Tensor) -> Vec<f32>;

    /// The inference with every remote feature gather routed through
    /// `rt` (typically via [`LossyRuntime::transport`] on stage
    /// [`zeiot_microdeep::STAGE_SENSING`] or above). Returns `None`
    /// when the fabric aborted the pass and the recovery policy does
    /// not degrade — the shard then falls back to its stale cache or
    /// counts the request failed, exactly like a CNN tenant.
    ///
    /// When `scope` is present the implementation may append
    /// fabric-clock hop spans under the request's infer span.
    fn infer_lossy(
        &mut self,
        input: &Tensor,
        rt: &mut LossyRuntime,
        scope: Option<&mut SpanScope<'_>>,
    ) -> Option<Vec<f32>>;
}
