//! # zeiot-fault
//!
//! Deterministic fault injection for the zeiot workspace: lossy radio
//! links, scheduled node brownout windows, message corruption, and the
//! recovery policies distributed inference uses to survive them.
//!
//! The design constraint is *determinism*: every fault decision is a pure
//! hash of `(plan seed, src, dst, sequence number, attempt, simulated
//! time)` — never a draw from a shared RNG stream — so a faulty run is
//! bit-reproducible across thread counts, observation, and re-execution,
//! and two recovery policies can be compared under *identical* loss
//! patterns (common random numbers).
//!
//! * [`FaultPlan`] — the immutable scenario: per-link drop probabilities
//!   (fixed, or derived from an `rf` packet-error model at a given SNR),
//!   per-node outage windows (hand-written or converted from an `energy`
//!   capacitor on/off trace), and a payload corruption probability.
//! * [`RecoveryPolicy`] — what a consumer does about a lost message:
//!   [`RecoveryPolicy::FailFast`], bounded
//!   [`RecoveryPolicy::Retransmit`] with simulated-time backoff (via
//!   `zeiot_sim::RetrySchedule`), or [`RecoveryPolicy::Degrade`]
//!   substitution.
//! * [`LinkFabric`] — the stateful message path: sequence numbering, the
//!   retransmission loop, and [`FaultStats`] counters exportable to a
//!   `zeiot_obs::Recorder`.
//!
//! # Example
//!
//! ```
//! use zeiot_core::id::NodeId;
//! use zeiot_fault::{FaultPlan, LinkFabric, RecoveryPolicy};
//! use zeiot_core::time::SimDuration;
//!
//! let plan = FaultPlan::uniform(7, 0.3).unwrap();
//! let policy = RecoveryPolicy::Retransmit {
//!     max_retries: 2,
//!     timeout: SimDuration::from_millis(50),
//!     backoff: 2.0,
//! };
//! let mut fabric = LinkFabric::new(plan, policy);
//! let mut delivered = 0;
//! for _ in 0..100 {
//!     if fabric.transmit(NodeId::new(0), NodeId::new(1)).is_delivered() {
//!         delivered += 1;
//!     }
//! }
//! // Retransmission pushes the delivery rate well above 70 %.
//! assert!(delivered > 90);
//! // And an identical fabric reproduces the exact same outcome.
//! ```

pub mod fabric;
pub mod plan;
pub mod policy;

pub use fabric::{Delivery, FaultStats, LinkFabric};
pub use plan::{FaultPlan, LinkEvent};
pub use policy::{DegradeMode, RecoveryPolicy};
