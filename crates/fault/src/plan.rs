//! The seed-deterministic fault plan.
//!
//! A [`FaultPlan`] is a *pure description* of everything that can go
//! wrong on the radio fabric: per-link drop probabilities (fixed rates or
//! derived from the `rf` crate's BER/SNR packet-error model), scheduled
//! node outage windows (crashes and capacitor brownouts), and message
//! corruption. Whether a given message is lost is a pure function of
//! `(plan seed, src, dst, sequence number, attempt, simulated time)` —
//! never of a shared RNG stream — so fault decisions are identical across
//! thread counts, across observed/unobserved runs, and across repeated
//! runs at the same seed.

use std::collections::BTreeMap;
use zeiot_core::error::{ConfigError, Result};
use zeiot_core::id::NodeId;
use zeiot_core::time::SimTime;
use zeiot_core::units::Decibel;
use zeiot_rf::ber::PacketErrorModel;

/// The fate of one transmission attempt.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LinkEvent {
    /// The message arrived intact.
    Delivered,
    /// The message arrived with corrupted payload.
    Corrupted,
    /// The message was lost (link drop or endpoint outage).
    Dropped,
}

/// SplitMix64 finalizer — the same mixing construction the core RNG uses
/// for per-point stream derivation, replicated here so fault decisions
/// stay pure hash evaluations with no RNG state.
fn splitmix64(x: u64) -> u64 {
    let mut z = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// Hashes the message coordinates into a uniform `[0, 1)` draw.
fn unit_draw(seed: u64, salt: u64, src: u32, dst: u32, seq: u64, attempt: u32) -> f64 {
    let mut h = splitmix64(seed ^ salt);
    h = splitmix64(h ^ ((u64::from(src) << 32) | u64::from(dst)));
    h = splitmix64(h ^ seq);
    h = splitmix64(h ^ u64::from(attempt));
    // 53 high bits → uniform double in [0, 1).
    (h >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

const DROP_SALT: u64 = 0xD0_0D;
const CORRUPT_SALT: u64 = 0xC0_44;

/// A deterministic description of link losses, node outages and payload
/// corruption. See the module docs for the determinism contract.
///
/// # Example
///
/// ```
/// use zeiot_core::id::NodeId;
/// use zeiot_core::time::SimTime;
/// use zeiot_fault::{FaultPlan, LinkEvent};
///
/// let plan = FaultPlan::uniform(7, 0.5).unwrap();
/// let a = NodeId::new(0);
/// let b = NodeId::new(1);
/// // Decisions are pure: same coordinates, same outcome, forever.
/// let first = plan.decide(a, b, 0, 0, SimTime::ZERO);
/// assert_eq!(first, plan.decide(a, b, 0, 0, SimTime::ZERO));
///
/// let lossless = FaultPlan::lossless();
/// assert_eq!(lossless.decide(a, b, 0, 0, SimTime::ZERO), LinkEvent::Delivered);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct FaultPlan {
    seed: u64,
    default_drop: f64,
    corrupt: f64,
    /// Directed per-link overrides of the drop probability.
    link_drop: BTreeMap<(u32, u32), f64>,
    /// Per-node outage windows, half-open `[from, until)`, sorted.
    outages: BTreeMap<u32, Vec<(SimTime, SimTime)>>,
}

impl FaultPlan {
    /// The perfect fabric: nothing drops, nothing corrupts, no outages.
    pub fn lossless() -> Self {
        Self {
            seed: 0,
            default_drop: 0.0,
            corrupt: 0.0,
            link_drop: BTreeMap::new(),
            outages: BTreeMap::new(),
        }
    }

    /// A plan dropping every message with probability `drop_prob` on
    /// every link.
    ///
    /// # Errors
    ///
    /// Returns an error if `drop_prob` is outside `[0, 1]`.
    pub fn uniform(seed: u64, drop_prob: f64) -> Result<Self> {
        zeiot_core::error::require_in_range("drop_prob", drop_prob, 0.0, 1.0)?;
        Ok(Self {
            seed,
            default_drop: drop_prob,
            corrupt: 0.0,
            link_drop: BTreeMap::new(),
            outages: BTreeMap::new(),
        })
    }

    /// Overrides the drop probability of the directed link `src → dst`.
    ///
    /// # Errors
    ///
    /// Returns an error if `drop_prob` is outside `[0, 1]`.
    pub fn with_link_drop(mut self, src: NodeId, dst: NodeId, drop_prob: f64) -> Result<Self> {
        zeiot_core::error::require_in_range("drop_prob", drop_prob, 0.0, 1.0)?;
        self.link_drop.insert((src.raw(), dst.raw()), drop_prob);
        Ok(self)
    }

    /// Derives the directed link's drop probability from the `rf` crate's
    /// packet-error model at the link's SNR — the physically grounded way
    /// to populate a plan (marginal SINR links drop more).
    ///
    /// # Errors
    ///
    /// Never fails in practice; the PER is a probability by construction,
    /// but the signature matches the other builders.
    pub fn with_link_from_rf(
        self,
        src: NodeId,
        dst: NodeId,
        model: &PacketErrorModel,
        snr: Decibel,
    ) -> Result<Self> {
        self.with_link_drop(src, dst, model.per(snr))
    }

    /// Sets the payload-corruption probability of delivered messages.
    ///
    /// # Errors
    ///
    /// Returns an error if `p` is outside `[0, 1]`.
    pub fn with_corruption(mut self, p: f64) -> Result<Self> {
        zeiot_core::error::require_in_range("corruption", p, 0.0, 1.0)?;
        self.corrupt = p;
        Ok(self)
    }

    /// Schedules an outage window `[from, until)` for `node`: every
    /// message to or from the node inside the window is dropped (no
    /// retransmission can succeed while the endpoint is dark).
    ///
    /// # Errors
    ///
    /// Returns an error if the window is empty (`until <= from`).
    pub fn with_outage(mut self, node: NodeId, from: SimTime, until: SimTime) -> Result<Self> {
        if until <= from {
            return Err(ConfigError::new("outage", "window must be non-empty"));
        }
        let windows = self.outages.entry(node.raw()).or_default();
        windows.push((from, until));
        windows.sort();
        Ok(self)
    }

    /// Converts a power-state transition trace (as produced by
    /// `zeiot_energy::IntermittentDevice::power_trace`) into outage
    /// windows for `node`: every off-stretch of the trace, up to
    /// `horizon`, becomes one window. The trace is `(time, is_on)` pairs
    /// in time order; the device is assumed on before the first entry.
    ///
    /// # Errors
    ///
    /// Returns an error if an off-window would be empty, which cannot
    /// happen for a well-formed (time-ordered) trace.
    pub fn with_outages_from_trace(
        mut self,
        node: NodeId,
        trace: &[(SimTime, bool)],
        horizon: SimTime,
    ) -> Result<Self> {
        let mut down_since: Option<SimTime> = None;
        for &(t, is_on) in trace {
            match (is_on, down_since) {
                (false, None) => down_since = Some(t),
                (true, Some(from)) => {
                    if t > from {
                        self = self.with_outage(node, from, t)?;
                    }
                    down_since = None;
                }
                _ => {}
            }
        }
        if let Some(from) = down_since {
            if horizon > from {
                self = self.with_outage(node, from, horizon)?;
            }
        }
        Ok(self)
    }

    /// The plan's seed.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// Drop probability of the directed link `src → dst`.
    pub fn drop_prob(&self, src: NodeId, dst: NodeId) -> f64 {
        self.link_drop
            .get(&(src.raw(), dst.raw()))
            .copied()
            .unwrap_or(self.default_drop)
    }

    /// The payload-corruption probability.
    pub fn corruption_prob(&self) -> f64 {
        self.corrupt
    }

    /// Whether `node` is inside an outage window at `t`.
    pub fn is_down(&self, node: NodeId, t: SimTime) -> bool {
        self.outages
            .get(&node.raw())
            .is_some_and(|windows| windows.iter().any(|&(from, until)| t >= from && t < until))
    }

    /// Point-query liveness for a controller: whether `node` is inside
    /// an outage window at `t`.
    ///
    /// Unlike [`FaultPlan::decide`], this consumes no per-message fault
    /// coordinates — a re-placement controller can poll it between
    /// passes without perturbing any message's fate (decisions stay
    /// pure functions of `(seed, src, dst, seq, attempt, now)`).
    pub fn node_down_at(&self, node: NodeId, t: SimTime) -> bool {
        self.is_down(node, t)
    }

    /// The scheduled outage windows of `node`, half-open `[from, until)`
    /// in time order. Empty for nodes with no scheduled outages.
    pub fn outage_windows(&self, node: NodeId) -> impl Iterator<Item = (SimTime, SimTime)> + '_ {
        self.outages.get(&node.raw()).into_iter().flatten().copied()
    }

    /// Every node that is dark at `t`, in ascending id order — the
    /// liveness signal a re-placement controller compares across polls
    /// to detect an epoch of change. Deterministic: the outage map is a
    /// `BTreeMap`, so iteration order is the key order.
    pub fn down_set_at(&self, t: SimTime) -> Vec<NodeId> {
        self.outages
            .iter()
            .filter(|(_, windows)| windows.iter().any(|&(from, until)| t >= from && t < until))
            .map(|(&raw, _)| NodeId::new(raw))
            .collect()
    }

    /// Fraction of `[SimTime::ZERO, horizon)` the node spends dark.
    pub fn downtime_fraction(&self, node: NodeId, horizon: SimTime) -> f64 {
        let total = horizon.duration_since(SimTime::ZERO).as_secs_f64();
        if total <= 0.0 {
            return 0.0;
        }
        let dark: f64 = self
            .outages
            .get(&node.raw())
            .map(|windows| {
                windows
                    .iter()
                    .map(|&(from, until)| {
                        let until = until.min(horizon);
                        if until > from {
                            until.duration_since(from).as_secs_f64()
                        } else {
                            0.0
                        }
                    })
                    .sum()
            })
            .unwrap_or(0.0);
        (dark / total).min(1.0)
    }

    /// Whether the plan can never touch a message — the fast path that
    /// lets lossless runs skip hashing entirely.
    pub fn is_lossless(&self) -> bool {
        self.default_drop == 0.0
            && self.corrupt == 0.0
            && self.outages.is_empty()
            && self.link_drop.values().all(|&p| p == 0.0)
    }

    /// Decides the fate of attempt `attempt` of message `seq` over
    /// `src → dst` at simulated time `now`. Pure: the same coordinates
    /// always produce the same outcome.
    pub fn decide(
        &self,
        src: NodeId,
        dst: NodeId,
        seq: u64,
        attempt: u32,
        now: SimTime,
    ) -> LinkEvent {
        if self.is_down(src, now) || self.is_down(dst, now) {
            return LinkEvent::Dropped;
        }
        let p = self.drop_prob(src, dst);
        if p > 0.0 && unit_draw(self.seed, DROP_SALT, src.raw(), dst.raw(), seq, attempt) < p {
            return LinkEvent::Dropped;
        }
        if self.corrupt > 0.0
            && unit_draw(self.seed, CORRUPT_SALT, src.raw(), dst.raw(), seq, attempt) < self.corrupt
        {
            return LinkEvent::Corrupted;
        }
        LinkEvent::Delivered
    }

    /// Deterministically corrupts a payload value: flips one mantissa bit
    /// chosen by the message coordinates. Non-finite results collapse to
    /// zero so corrupted activations cannot poison downstream arithmetic
    /// with NaNs.
    pub fn corrupt_value(&self, value: f32, src: NodeId, dst: NodeId, seq: u64) -> f32 {
        let h = splitmix64(
            self.seed
                ^ CORRUPT_SALT
                ^ splitmix64((u64::from(src.raw()) << 32) | u64::from(dst.raw()))
                ^ seq,
        );
        let bit = (h % 23) as u32; // mantissa bits only
        let corrupted = f32::from_bits(value.to_bits() ^ (1 << bit));
        if corrupted.is_finite() {
            corrupted
        } else {
            0.0
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use zeiot_rf::ber::Modulation;

    fn n(i: u32) -> NodeId {
        NodeId::new(i)
    }

    #[test]
    fn lossless_always_delivers() {
        let plan = FaultPlan::lossless();
        assert!(plan.is_lossless());
        for seq in 0..1000 {
            assert_eq!(
                plan.decide(n(0), n(1), seq, 0, SimTime::ZERO),
                LinkEvent::Delivered
            );
        }
    }

    #[test]
    fn certain_drop_always_drops() {
        let plan = FaultPlan::uniform(3, 1.0).unwrap();
        for seq in 0..100 {
            assert_eq!(
                plan.decide(n(0), n(1), seq, 0, SimTime::ZERO),
                LinkEvent::Dropped
            );
        }
    }

    #[test]
    fn decisions_are_pure_functions_of_coordinates() {
        let plan = FaultPlan::uniform(42, 0.3).unwrap();
        let a: Vec<LinkEvent> = (0..500)
            .map(|seq| plan.decide(n(2), n(5), seq, 0, SimTime::ZERO))
            .collect();
        // Interleaving other queries must not change anything.
        let b: Vec<LinkEvent> = (0..500)
            .map(|seq| {
                let _ = plan.decide(n(9), n(1), seq * 7, 3, SimTime::from_secs(8));
                plan.decide(n(2), n(5), seq, 0, SimTime::ZERO)
            })
            .collect();
        assert_eq!(a, b);
    }

    #[test]
    fn empirical_drop_rate_tracks_probability() {
        let plan = FaultPlan::uniform(7, 0.2).unwrap();
        let drops = (0..20_000)
            .filter(|&seq| plan.decide(n(0), n(1), seq, 0, SimTime::ZERO) == LinkEvent::Dropped)
            .count();
        let rate = drops as f64 / 20_000.0;
        assert!((rate - 0.2).abs() < 0.02, "rate={rate}");
    }

    #[test]
    fn different_attempts_reroll_independently() {
        let plan = FaultPlan::uniform(11, 0.5).unwrap();
        let outcomes: Vec<LinkEvent> = (0..8)
            .map(|attempt| plan.decide(n(0), n(1), 0, attempt, SimTime::ZERO))
            .collect();
        assert!(outcomes.contains(&LinkEvent::Delivered));
        assert!(outcomes.contains(&LinkEvent::Dropped));
    }

    #[test]
    fn link_overrides_beat_the_default() {
        let plan = FaultPlan::uniform(1, 0.0)
            .unwrap()
            .with_link_drop(n(3), n(4), 1.0)
            .unwrap();
        assert_eq!(plan.drop_prob(n(3), n(4)), 1.0);
        assert_eq!(plan.drop_prob(n(4), n(3)), 0.0);
        assert_eq!(
            plan.decide(n(3), n(4), 0, 0, SimTime::ZERO),
            LinkEvent::Dropped
        );
        assert_eq!(
            plan.decide(n(4), n(3), 0, 0, SimTime::ZERO),
            LinkEvent::Delivered
        );
    }

    #[test]
    fn rf_derived_rate_matches_packet_error_model() {
        let model = PacketErrorModel::new(Modulation::OqpskDsss802154, 256).unwrap();
        let snr = Decibel::new(1.0);
        let plan = FaultPlan::lossless()
            .with_link_from_rf(n(0), n(1), &model, snr)
            .unwrap();
        assert!((plan.drop_prob(n(0), n(1)) - model.per(snr)).abs() < 1e-12);
        // A marginal link must actually drop messages.
        assert!(plan.drop_prob(n(0), n(1)) > 0.05);
    }

    #[test]
    fn outage_windows_drop_everything_inside() {
        let plan = FaultPlan::lossless()
            .with_outage(n(2), SimTime::from_secs(10), SimTime::from_secs(20))
            .unwrap();
        assert!(!plan.is_lossless());
        assert!(plan.is_down(n(2), SimTime::from_secs(10)));
        assert!(plan.is_down(n(2), SimTime::from_secs(19)));
        assert!(!plan.is_down(n(2), SimTime::from_secs(20)));
        assert!(!plan.is_down(n(2), SimTime::from_secs(9)));
        // Both directions die while the endpoint is dark.
        for (src, dst) in [(n(2), n(0)), (n(0), n(2))] {
            assert_eq!(
                plan.decide(src, dst, 0, 0, SimTime::from_secs(15)),
                LinkEvent::Dropped
            );
            assert_eq!(
                plan.decide(src, dst, 0, 0, SimTime::from_secs(25)),
                LinkEvent::Delivered
            );
        }
        assert!((plan.downtime_fraction(n(2), SimTime::from_secs(40)) - 0.25).abs() < 1e-9);
        assert_eq!(plan.downtime_fraction(n(0), SimTime::from_secs(40)), 0.0);
    }

    #[test]
    fn trace_conversion_builds_off_windows() {
        let trace = [
            (SimTime::from_secs(0), true),
            (SimTime::from_secs(5), false),
            (SimTime::from_secs(8), true),
            (SimTime::from_secs(12), false),
        ];
        let plan = FaultPlan::lossless()
            .with_outages_from_trace(n(1), &trace, SimTime::from_secs(20))
            .unwrap();
        assert!(plan.is_down(n(1), SimTime::from_secs(6)));
        assert!(!plan.is_down(n(1), SimTime::from_secs(9)));
        assert!(plan.is_down(n(1), SimTime::from_secs(15)));
        assert!(!plan.is_down(n(1), SimTime::from_secs(20)));
        let f = plan.downtime_fraction(n(1), SimTime::from_secs(20));
        assert!((f - (3.0 + 8.0) / 20.0).abs() < 1e-9, "f={f}");
    }

    #[test]
    fn liveness_point_queries_respect_window_edges() {
        let plan = FaultPlan::lossless()
            .with_outage(n(3), SimTime::from_secs(10), SimTime::from_secs(20))
            .unwrap()
            .with_outage(n(3), SimTime::from_secs(30), SimTime::from_secs(35))
            .unwrap()
            .with_outage(n(7), SimTime::from_secs(12), SimTime::from_secs(14))
            .unwrap();
        // Half-open [from, until): down at from, up at until, up before.
        assert!(!plan.node_down_at(n(3), SimTime::from_secs(9)));
        assert!(plan.node_down_at(n(3), SimTime::from_secs(10)));
        assert!(plan.node_down_at(n(3), SimTime::from_secs(19)));
        assert!(!plan.node_down_at(n(3), SimTime::from_secs(20)));
        assert!(plan.node_down_at(n(3), SimTime::from_secs(30)));
        assert!(!plan.node_down_at(n(3), SimTime::from_secs(35)));
        // Nodes without scheduled outages are always up.
        assert!(!plan.node_down_at(n(0), SimTime::from_secs(12)));

        let windows: Vec<_> = plan.outage_windows(n(3)).collect();
        assert_eq!(
            windows,
            vec![
                (SimTime::from_secs(10), SimTime::from_secs(20)),
                (SimTime::from_secs(30), SimTime::from_secs(35)),
            ]
        );
        assert_eq!(plan.outage_windows(n(0)).count(), 0);

        // The down-set is the sorted union of per-node liveness.
        assert_eq!(
            plan.down_set_at(SimTime::from_secs(5)),
            Vec::<NodeId>::new()
        );
        assert_eq!(plan.down_set_at(SimTime::from_secs(13)), vec![n(3), n(7)]);
        assert_eq!(plan.down_set_at(SimTime::from_secs(14)), vec![n(3)]);
        assert_eq!(
            plan.down_set_at(SimTime::from_secs(20)),
            Vec::<NodeId>::new()
        );
        // Point queries consume nothing: message fates are unchanged.
        let lossy = FaultPlan::uniform(42, 0.3).unwrap();
        let before: Vec<_> = (0..64)
            .map(|seq| lossy.decide(n(0), n(1), seq, 0, SimTime::ZERO))
            .collect();
        let _ = lossy.node_down_at(n(0), SimTime::ZERO);
        let _ = lossy.down_set_at(SimTime::ZERO);
        let after: Vec<_> = (0..64)
            .map(|seq| lossy.decide(n(0), n(1), seq, 0, SimTime::ZERO))
            .collect();
        assert_eq!(before, after);
    }

    #[test]
    fn corruption_flips_payloads_deterministically() {
        let plan = FaultPlan::uniform(5, 0.0)
            .unwrap()
            .with_corruption(1.0)
            .unwrap();
        assert_eq!(
            plan.decide(n(0), n(1), 0, 0, SimTime::ZERO),
            LinkEvent::Corrupted
        );
        let v = plan.corrupt_value(1.5, n(0), n(1), 0);
        assert_ne!(v, 1.5);
        assert!(v.is_finite());
        assert_eq!(v, plan.corrupt_value(1.5, n(0), n(1), 0));
    }

    #[test]
    fn invalid_probabilities_are_rejected() {
        assert!(FaultPlan::uniform(0, -0.1).is_err());
        assert!(FaultPlan::uniform(0, 1.5).is_err());
        assert!(FaultPlan::lossless().with_corruption(2.0).is_err());
        assert!(FaultPlan::lossless()
            .with_link_drop(n(0), n(1), f64::NAN)
            .is_err());
        assert!(FaultPlan::lossless()
            .with_outage(n(0), SimTime::from_secs(5), SimTime::from_secs(5))
            .is_err());
    }
}
