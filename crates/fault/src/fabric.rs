//! The stateful message fabric: a [`FaultPlan`] plus a [`RecoveryPolicy`]
//! plus running counters.
//!
//! Subsystems route every cross-node message through a [`LinkFabric`].
//! The fabric assigns each message a monotone sequence number, rolls the
//! plan's deterministic per-attempt decisions, drives the policy's
//! bounded retransmission loop (advancing its simulated clock by the
//! backoff delays, so timeouts are simulated-time, never wall-clock), and
//! tallies [`FaultStats`]. Because sequence numbers are allocated in the
//! caller's deterministic iteration order and every decision is a pure
//! hash, a fabric-mediated computation stays bit-reproducible.

use crate::plan::{FaultPlan, LinkEvent};
use crate::policy::RecoveryPolicy;
use zeiot_core::id::NodeId;
use zeiot_core::time::{SimDuration, SimTime};
use zeiot_obs::{Label, Recorder};

/// The outcome of transmitting one message through the fabric.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Delivery {
    /// The message arrived after `attempts` transmissions.
    Delivered {
        /// Whether the payload arrived corrupted.
        corrupted: bool,
        /// Transmissions used (1 = first try).
        attempts: u32,
    },
    /// Every allowed attempt was lost.
    Failed {
        /// Transmissions used.
        attempts: u32,
    },
}

impl Delivery {
    /// Whether the message made it through (possibly corrupted).
    pub fn is_delivered(&self) -> bool {
        matches!(self, Delivery::Delivered { .. })
    }
}

/// Running fault-injection counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FaultStats {
    /// Transmission attempts (including retransmissions).
    pub sent: u64,
    /// Messages that arrived (intact or corrupted).
    pub delivered: u64,
    /// Attempts lost to link drops or outages.
    pub drops: u64,
    /// Retransmission attempts.
    pub retries: u64,
    /// Messages delivered with corrupted payloads.
    pub corrupted: u64,
    /// Messages lost after exhausting every allowed attempt.
    pub failed: u64,
    /// Lost values substituted by a degrade policy.
    pub degraded: u64,
    /// Messages recovered by retransmission (delivered after ≥1 retry).
    pub recovered: u64,
    /// Extra route traversals spent on recoveries, in hops: each retry of
    /// a message re-walks its `hops`-hop route.
    pub recovery_latency_hops: u64,
    /// Consuming computations aborted under a fail-fast policy.
    pub aborted: u64,
}

impl FaultStats {
    /// Messages offered to the fabric (attempts minus retransmissions).
    pub fn offered(&self) -> u64 {
        self.sent - self.retries
    }

    /// Fraction of attempts lost.
    pub fn loss_ratio(&self) -> f64 {
        if self.sent == 0 {
            return 0.0;
        }
        self.drops as f64 / self.sent as f64
    }

    /// Mean recovery latency in hops over recovered messages.
    pub fn mean_recovery_latency_hops(&self) -> f64 {
        if self.recovered == 0 {
            return 0.0;
        }
        self.recovery_latency_hops as f64 / self.recovered as f64
    }

    /// Traffic overhead of recovery: attempts per offered message.
    pub fn traffic_overhead(&self) -> f64 {
        let offered = self.offered();
        if offered == 0 {
            return 1.0;
        }
        self.sent as f64 / offered as f64
    }

    /// The counter deltas accumulated since `earlier` (an older copy of
    /// the same stats) — how per-hop tracing brackets a burst of
    /// fetches: copy the stats before, subtract after. Saturating, so a
    /// mismatched pair degrades to zeros instead of wrapping.
    pub fn delta_since(&self, earlier: &FaultStats) -> FaultStats {
        FaultStats {
            sent: self.sent.saturating_sub(earlier.sent),
            delivered: self.delivered.saturating_sub(earlier.delivered),
            drops: self.drops.saturating_sub(earlier.drops),
            retries: self.retries.saturating_sub(earlier.retries),
            corrupted: self.corrupted.saturating_sub(earlier.corrupted),
            failed: self.failed.saturating_sub(earlier.failed),
            degraded: self.degraded.saturating_sub(earlier.degraded),
            recovered: self.recovered.saturating_sub(earlier.recovered),
            recovery_latency_hops: self
                .recovery_latency_hops
                .saturating_sub(earlier.recovery_latency_hops),
            aborted: self.aborted.saturating_sub(earlier.aborted),
        }
    }

    /// Adds `other` into `self`.
    pub fn merge(&mut self, other: &FaultStats) {
        self.sent += other.sent;
        self.delivered += other.delivered;
        self.drops += other.drops;
        self.retries += other.retries;
        self.corrupted += other.corrupted;
        self.failed += other.failed;
        self.degraded += other.degraded;
        self.recovered += other.recovered;
        self.recovery_latency_hops += other.recovery_latency_hops;
        self.aborted += other.aborted;
    }

    /// Writes the counters into `recorder` under `label` as
    /// `fault.sent`, `fault.drops`, `fault.retries`, `fault.degraded`,
    /// `fault.recovery_latency_hops` and friends.
    pub fn record_to(&self, recorder: &mut Recorder, label: Label) {
        for (name, value) in [
            ("fault.sent", self.sent),
            ("fault.delivered", self.delivered),
            ("fault.drops", self.drops),
            ("fault.retries", self.retries),
            ("fault.corrupted", self.corrupted),
            ("fault.failed", self.failed),
            ("fault.degraded", self.degraded),
            ("fault.recovered", self.recovered),
            ("fault.recovery_latency_hops", self.recovery_latency_hops),
            ("fault.aborted", self.aborted),
        ] {
            recorder.add(name, label.clone(), value);
        }
    }
}

/// The stateful fabric; see the module docs.
///
/// # Example
///
/// ```
/// use zeiot_core::id::NodeId;
/// use zeiot_fault::{Delivery, FaultPlan, LinkFabric, RecoveryPolicy};
///
/// let mut fabric = LinkFabric::new(FaultPlan::lossless(), RecoveryPolicy::FailFast);
/// let out = fabric.transmit(NodeId::new(0), NodeId::new(1));
/// assert!(out.is_delivered());
/// assert_eq!(fabric.stats().sent, 1);
/// ```
#[derive(Debug, Clone)]
pub struct LinkFabric {
    plan: FaultPlan,
    policy: RecoveryPolicy,
    seq: u64,
    now: SimTime,
    stats: FaultStats,
}

impl LinkFabric {
    /// A fabric at simulated time zero with zeroed counters.
    pub fn new(plan: FaultPlan, policy: RecoveryPolicy) -> Self {
        Self {
            plan,
            policy,
            seq: 0,
            now: SimTime::ZERO,
            stats: FaultStats::default(),
        }
    }

    /// The fault plan.
    pub fn plan(&self) -> &FaultPlan {
        &self.plan
    }

    /// The recovery policy.
    pub fn policy(&self) -> RecoveryPolicy {
        self.policy
    }

    /// The fabric's simulated clock.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Advances the simulated clock (e.g. one sensing cycle per
    /// inference pass), moving messages into or out of outage windows.
    pub fn advance(&mut self, d: SimDuration) {
        self.now = self.now.saturating_add(d);
    }

    /// The running counters.
    pub fn stats(&self) -> &FaultStats {
        &self.stats
    }

    /// Counts a degrade-substituted value.
    pub fn note_degraded(&mut self) {
        self.stats.degraded += 1;
    }

    /// Counts an aborted consuming computation.
    pub fn note_aborted(&mut self) {
        self.stats.aborted += 1;
    }

    /// Transmits one message over a single-hop route.
    pub fn transmit(&mut self, src: NodeId, dst: NodeId) -> Delivery {
        self.transmit_over(src, dst, 1)
    }

    /// Transmits one message whose route is `hops` hops long, driving the
    /// policy's retransmission loop. Retries advance the simulated clock
    /// by the policy's backoff schedule, so a retransmission that lands
    /// inside an outage window is (correctly) lost and one that lands
    /// after the window ends can succeed.
    pub fn transmit_over(&mut self, src: NodeId, dst: NodeId, hops: u32) -> Delivery {
        let seq = self.seq;
        self.seq += 1;
        if self.plan.is_lossless() {
            // Fast path: nothing can go wrong, skip the hashing.
            self.stats.sent += 1;
            self.stats.delivered += 1;
            return Delivery::Delivered {
                corrupted: false,
                attempts: 1,
            };
        }
        let schedule = self.policy.retry_schedule();
        let max_attempts = self.policy.max_attempts();
        for attempt in 0..max_attempts {
            if attempt > 0 {
                self.stats.retries += 1;
                if let Some(schedule) = &schedule {
                    if let Some(delay) = schedule.delay_for(attempt) {
                        self.now = self.now.saturating_add(delay);
                    }
                }
            }
            self.stats.sent += 1;
            match self.plan.decide(src, dst, seq, attempt, self.now) {
                LinkEvent::Delivered => {
                    self.stats.delivered += 1;
                    if attempt > 0 {
                        self.stats.recovered += 1;
                        self.stats.recovery_latency_hops += u64::from(attempt) * u64::from(hops);
                    }
                    return Delivery::Delivered {
                        corrupted: false,
                        attempts: attempt + 1,
                    };
                }
                LinkEvent::Corrupted => {
                    self.stats.delivered += 1;
                    self.stats.corrupted += 1;
                    if attempt > 0 {
                        self.stats.recovered += 1;
                        self.stats.recovery_latency_hops += u64::from(attempt) * u64::from(hops);
                    }
                    return Delivery::Delivered {
                        corrupted: true,
                        attempts: attempt + 1,
                    };
                }
                LinkEvent::Dropped => {
                    self.stats.drops += 1;
                }
            }
        }
        self.stats.failed += 1;
        Delivery::Failed {
            attempts: max_attempts,
        }
    }

    /// The sequence number of the next message (how many messages the
    /// fabric has carried).
    pub fn next_seq(&self) -> u64 {
        self.seq
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::policy::DegradeMode;

    fn n(i: u32) -> NodeId {
        NodeId::new(i)
    }

    #[test]
    fn delta_since_inverts_merge() {
        let before = FaultStats {
            sent: 10,
            delivered: 8,
            drops: 2,
            retries: 1,
            ..FaultStats::default()
        };
        let burst = FaultStats {
            sent: 5,
            delivered: 4,
            drops: 1,
            degraded: 1,
            ..FaultStats::default()
        };
        let mut after = before;
        after.merge(&burst);
        assert_eq!(after.delta_since(&before), burst);
        // A mismatched pair saturates to zeros instead of wrapping.
        assert_eq!(before.delta_since(&after), FaultStats::default());
    }

    fn retransmit(max_retries: u32) -> RecoveryPolicy {
        RecoveryPolicy::Retransmit {
            max_retries,
            timeout: SimDuration::from_millis(50),
            backoff: 2.0,
        }
    }

    #[test]
    fn lossless_fast_path_counts_messages() {
        let mut fabric = LinkFabric::new(FaultPlan::lossless(), RecoveryPolicy::FailFast);
        for _ in 0..10 {
            assert!(fabric.transmit(n(0), n(1)).is_delivered());
        }
        assert_eq!(fabric.stats().sent, 10);
        assert_eq!(fabric.stats().delivered, 10);
        assert_eq!(fabric.stats().drops, 0);
        assert_eq!(fabric.next_seq(), 10);
    }

    #[test]
    fn retransmission_recovers_messages_and_counts_latency() {
        let plan = FaultPlan::uniform(21, 0.5).unwrap();
        let mut fabric = LinkFabric::new(plan, retransmit(4));
        let mut failed = 0u64;
        for _ in 0..2000 {
            if !fabric.transmit_over(n(0), n(1), 3).is_delivered() {
                failed += 1;
            }
        }
        let stats = fabric.stats();
        assert!(stats.recovered > 0);
        assert!(stats.retries > 0);
        // Each recovery cost at least its route length in extra hops.
        assert!(stats.recovery_latency_hops >= stats.recovered * 3);
        assert_eq!(stats.failed, failed);
        // p=0.5 with 5 attempts: failure rate ~0.5^5 ≈ 3 %.
        assert!(failed < 150, "failed={failed}");
        assert_eq!(stats.sent, stats.delivered + stats.drops);
    }

    #[test]
    fn zero_retry_retransmit_equals_fail_fast_exactly() {
        let plan = FaultPlan::uniform(9, 0.3).unwrap();
        let mut a = LinkFabric::new(plan.clone(), RecoveryPolicy::FailFast);
        let mut b = LinkFabric::new(plan, retransmit(0));
        for seq in 0..3000u64 {
            let src = n((seq % 5) as u32);
            let dst = n(((seq / 5) % 5) as u32 + 5);
            assert_eq!(a.transmit(src, dst), b.transmit(src, dst));
        }
        assert_eq!(a.stats(), b.stats());
        assert_eq!(a.now(), b.now());
    }

    #[test]
    fn retries_advance_simulated_time_with_backoff() {
        // Certain drop: every message exhausts its attempts and the clock
        // advances by the full backoff schedule per message.
        let plan = FaultPlan::uniform(2, 1.0).unwrap();
        let mut fabric = LinkFabric::new(plan, retransmit(2));
        let before = fabric.now();
        let out = fabric.transmit(n(0), n(1));
        assert!(!out.is_delivered());
        // 50 ms + 100 ms of backoff.
        assert_eq!(
            fabric.now().duration_since(before),
            SimDuration::from_millis(150)
        );
    }

    #[test]
    fn retransmission_rides_out_an_outage_window() {
        // Node 1 is dark for the first 60 ms; the first attempt at t=0
        // drops, the retry at t=50ms drops, the retry at t=150ms lands.
        let plan = FaultPlan::lossless()
            .with_outage(n(1), SimTime::ZERO, SimTime::from_millis(60))
            .unwrap();
        let mut fabric = LinkFabric::new(plan, retransmit(3));
        match fabric.transmit(n(0), n(1)) {
            Delivery::Delivered { attempts, .. } => assert_eq!(attempts, 3),
            other => panic!("expected recovery, got {other:?}"),
        }
        // Fail-fast under the same plan is simply lost.
        let plan = FaultPlan::lossless()
            .with_outage(n(1), SimTime::ZERO, SimTime::from_millis(60))
            .unwrap();
        let mut ff = LinkFabric::new(plan, RecoveryPolicy::FailFast);
        assert!(!ff.transmit(n(0), n(1)).is_delivered());
    }

    #[test]
    fn stats_merge_and_ratios() {
        let plan = FaultPlan::uniform(4, 0.4).unwrap();
        let mut fabric = LinkFabric::new(plan, retransmit(1));
        for _ in 0..500 {
            let _ = fabric.transmit(n(0), n(1));
        }
        let mut total = FaultStats::default();
        total.merge(fabric.stats());
        total.merge(fabric.stats());
        assert_eq!(total.sent, fabric.stats().sent * 2);
        assert!(fabric.stats().loss_ratio() > 0.2);
        assert!(fabric.stats().traffic_overhead() > 1.0);
        assert!(fabric.stats().mean_recovery_latency_hops() >= 1.0);
    }

    #[test]
    fn degrade_counters_track_substitutions() {
        let plan = FaultPlan::uniform(6, 1.0).unwrap();
        let mut fabric = LinkFabric::new(
            plan,
            RecoveryPolicy::Degrade {
                mode: DegradeMode::ZeroFill,
            },
        );
        if !fabric.transmit(n(0), n(1)).is_delivered() {
            fabric.note_degraded();
        }
        assert_eq!(fabric.stats().degraded, 1);
        fabric.note_aborted();
        assert_eq!(fabric.stats().aborted, 1);
    }

    #[test]
    fn stats_record_to_recorder() {
        let plan = FaultPlan::uniform(8, 0.5).unwrap();
        let mut fabric = LinkFabric::new(plan, retransmit(2));
        for _ in 0..200 {
            let _ = fabric.transmit(n(0), n(1));
        }
        let mut rec = Recorder::new();
        fabric.stats().record_to(&mut rec, Label::Global);
        assert_eq!(
            rec.counter_value("fault.sent", &Label::Global),
            fabric.stats().sent
        );
        assert_eq!(
            rec.counter_value("fault.drops", &Label::Global),
            fabric.stats().drops
        );
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]
        /// The satellite property: `Retransmit { max_retries: 0 }` is
        /// behaviorally identical to `FailFast` for any plan seed, drop
        /// rate, corruption rate and message stream.
        #[test]
        fn zero_retry_retransmit_is_fail_fast(
            seed in 0u64..10_000,
            drop in 0.0f64..1.0,
            corrupt in 0.0f64..0.5,
            messages in 1usize..400,
            timeout_ms in 1u64..1000,
            backoff in 1.0f64..4.0,
        ) {
            let plan = FaultPlan::uniform(seed, drop)
                .unwrap()
                .with_corruption(corrupt)
                .unwrap();
            let mut ff = LinkFabric::new(plan.clone(), RecoveryPolicy::FailFast);
            let mut rt = LinkFabric::new(plan, RecoveryPolicy::Retransmit {
                max_retries: 0,
                timeout: zeiot_core::time::SimDuration::from_millis(timeout_ms),
                backoff,
            });
            for seq in 0..messages as u64 {
                let src = NodeId::new((seq % 7) as u32);
                let dst = NodeId::new(7 + (seq % 3) as u32);
                let hops = 1 + (seq % 4) as u32;
                prop_assert_eq!(
                    ff.transmit_over(src, dst, hops),
                    rt.transmit_over(src, dst, hops)
                );
            }
            prop_assert_eq!(ff.stats(), rt.stats());
            prop_assert_eq!(ff.now(), rt.now());
        }

        /// A lossless plan delivers everything on the first attempt under
        /// every policy, with identical stats.
        #[test]
        fn lossless_plans_never_touch_messages(
            messages in 1usize..300,
            policy_idx in 0usize..4,
        ) {
            let policy = [
                RecoveryPolicy::FailFast,
                RecoveryPolicy::Retransmit {
                    max_retries: 3,
                    timeout: zeiot_core::time::SimDuration::from_millis(10),
                    backoff: 2.0,
                },
                RecoveryPolicy::Degrade { mode: crate::policy::DegradeMode::ZeroFill },
                RecoveryPolicy::Degrade { mode: crate::policy::DegradeMode::LastValueHold },
            ][policy_idx];
            let mut fabric = LinkFabric::new(FaultPlan::lossless(), policy);
            for seq in 0..messages as u64 {
                let out = fabric.transmit(NodeId::new(0), NodeId::new((seq % 9) as u32));
                prop_assert_eq!(out, Delivery::Delivered { corrupted: false, attempts: 1 });
            }
            prop_assert_eq!(fabric.stats().sent, messages as u64);
            prop_assert_eq!(fabric.stats().delivered, messages as u64);
            prop_assert_eq!(fabric.stats().drops, 0);
            prop_assert_eq!(fabric.now(), SimTime::ZERO);
        }
    }
}
