//! Recovery policies: what a consumer does when a message never arrives.

use serde::{Deserialize, Serialize};
use zeiot_core::time::SimDuration;
use zeiot_sim::RetrySchedule;

/// How a degraded consumer substitutes a lost value.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum DegradeMode {
    /// Treat the lost value as zero (a silent unit).
    ZeroFill,
    /// Reuse the last value successfully delivered on that edge (zero
    /// before the first delivery).
    LastValueHold,
}

/// What to do about a lost message.
///
/// The semantics the workspace implements:
///
/// * [`RecoveryPolicy::FailFast`] — the computation consuming the
///   message aborts (an inference is counted failed, a MAC sample is
///   abandoned). No retries, no substitution.
/// * [`RecoveryPolicy::Retransmit`] — up to `max_retries` bounded
///   retransmissions, each a fresh deterministic link roll, spaced by a
///   simulated-time exponential-backoff schedule (`timeout`,
///   `timeout·backoff`, …). Exhaustion behaves exactly like
///   [`RecoveryPolicy::FailFast`] — in particular `max_retries = 0` *is*
///   `FailFast`, a property the fault test suite pins.
/// * [`RecoveryPolicy::Degrade`] — never abort: substitute the lost value
///   per [`DegradeMode`] and continue degraded.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum RecoveryPolicy {
    /// Abort the consuming computation on the first loss.
    FailFast,
    /// Bounded retransmission with simulated-time backoff, then fail.
    Retransmit {
        /// Retransmissions after the initial attempt.
        max_retries: u32,
        /// Delay before the first retransmission.
        timeout: SimDuration,
        /// Multiplicative backoff factor per further retransmission.
        backoff: f64,
    },
    /// Substitute lost values and continue.
    Degrade {
        /// The substitution mode.
        mode: DegradeMode,
    },
}

impl RecoveryPolicy {
    /// Total transmission attempts the policy allows per message.
    pub fn max_attempts(&self) -> u32 {
        match self {
            RecoveryPolicy::Retransmit { max_retries, .. } => 1 + max_retries,
            RecoveryPolicy::FailFast | RecoveryPolicy::Degrade { .. } => 1,
        }
    }

    /// The degradation mode, if the policy degrades instead of failing.
    pub fn degrade_mode(&self) -> Option<DegradeMode> {
        match self {
            RecoveryPolicy::Degrade { mode } => Some(*mode),
            _ => None,
        }
    }

    /// The simulated-time retry schedule for a retransmitting policy.
    pub fn retry_schedule(&self) -> Option<RetrySchedule> {
        match *self {
            RecoveryPolicy::Retransmit {
                max_retries,
                timeout,
                backoff,
            } => RetrySchedule::new(timeout, backoff, max_retries).ok(),
            _ => None,
        }
    }

    /// A short stable label for reports and metric names.
    pub fn label(&self) -> &'static str {
        match self {
            RecoveryPolicy::FailFast => "fail-fast",
            RecoveryPolicy::Retransmit { .. } => "retransmit",
            RecoveryPolicy::Degrade {
                mode: DegradeMode::ZeroFill,
            } => "zero-fill",
            RecoveryPolicy::Degrade {
                mode: DegradeMode::LastValueHold,
            } => "last-value-hold",
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn attempt_budgets_follow_the_policy() {
        assert_eq!(RecoveryPolicy::FailFast.max_attempts(), 1);
        assert_eq!(
            RecoveryPolicy::Degrade {
                mode: DegradeMode::ZeroFill
            }
            .max_attempts(),
            1
        );
        let r = RecoveryPolicy::Retransmit {
            max_retries: 3,
            timeout: SimDuration::from_millis(10),
            backoff: 2.0,
        };
        assert_eq!(r.max_attempts(), 4);
        assert!(r.retry_schedule().is_some());
        assert!(RecoveryPolicy::FailFast.retry_schedule().is_none());
    }

    #[test]
    fn zero_retry_retransmit_has_failfast_attempt_budget() {
        let r = RecoveryPolicy::Retransmit {
            max_retries: 0,
            timeout: SimDuration::from_millis(10),
            backoff: 2.0,
        };
        assert_eq!(r.max_attempts(), RecoveryPolicy::FailFast.max_attempts());
    }

    #[test]
    fn labels_are_stable() {
        assert_eq!(RecoveryPolicy::FailFast.label(), "fail-fast");
        assert_eq!(
            RecoveryPolicy::Degrade {
                mode: DegradeMode::LastValueHold
            }
            .label(),
            "last-value-hold"
        );
    }

    #[test]
    fn serde_round_trip() {
        let r = RecoveryPolicy::Retransmit {
            max_retries: 2,
            timeout: SimDuration::from_millis(50),
            backoff: 2.0,
        };
        let json = serde_json::to_string(&r).unwrap();
        let back: RecoveryPolicy = serde_json::from_str(&json).unwrap();
        assert_eq!(r, back);
    }
}
