//! Conservation laws of [`FaultStats`]: no transmission attempt and no
//! offered message is ever double-counted or lost by the bookkeeping,
//! for *any* fault plan, recovery policy and message schedule.
//!
//! The two invariants pinned here:
//!
//! * **attempt-level** — every attempt either arrives or is dropped:
//!   `sent == delivered + drops`.
//! * **message-level** — every offered message either arrives (possibly
//!   corrupted, possibly after retries) or fails after exhausting its
//!   attempts: `offered() == delivered + failed`.

use proptest::prelude::*;
use zeiot_core::id::NodeId;
use zeiot_core::time::{SimDuration, SimTime};
use zeiot_fault::{DegradeMode, FaultPlan, FaultStats, LinkFabric, RecoveryPolicy};

/// The swept policy space.
fn policy(idx: usize, max_retries: u32, timeout_ms: u64, backoff: f64) -> RecoveryPolicy {
    match idx % 4 {
        0 => RecoveryPolicy::FailFast,
        1 => RecoveryPolicy::Retransmit {
            max_retries,
            timeout: SimDuration::from_millis(timeout_ms),
            backoff,
        },
        2 => RecoveryPolicy::Degrade {
            mode: DegradeMode::ZeroFill,
        },
        _ => RecoveryPolicy::Degrade {
            mode: DegradeMode::LastValueHold,
        },
    }
}

/// Checks every conservation law one fabric's counters must satisfy.
fn assert_conserved(stats: &FaultStats, messages: u64) {
    assert_eq!(
        stats.sent,
        stats.delivered + stats.drops,
        "attempt conservation: {stats:?}"
    );
    assert_eq!(stats.offered(), messages, "offered(): {stats:?}");
    assert_eq!(
        stats.offered(),
        stats.delivered + stats.failed,
        "message conservation: {stats:?}"
    );
    assert!(stats.corrupted <= stats.delivered, "{stats:?}");
    assert!(stats.recovered <= stats.delivered, "{stats:?}");
    assert_eq!(stats.retries, stats.sent - stats.offered(), "{stats:?}");
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Conservation holds for random uniform-loss plans with corruption
    /// and outage windows, under every policy, over a random message
    /// schedule with interleaved clock advances.
    #[test]
    fn fault_stats_conserve_attempts_and_messages(
        seed in 0u64..100_000,
        drop in 0.0f64..1.0,
        corrupt in 0.0f64..0.5,
        outage_node in 0u32..6,
        outage_ms in 0u64..500,
        policy_idx in 0usize..4,
        max_retries in 0u32..5,
        timeout_ms in 1u64..200,
        backoff in 1.0f64..3.0,
        messages in 1usize..500,
        advance_every in 1usize..32,
    ) {
        let mut plan = FaultPlan::uniform(seed, drop)
            .expect("valid drop rate")
            .with_corruption(corrupt)
            .expect("valid corruption rate");
        if outage_ms > 0 {
            plan = plan
                .with_outage(
                    NodeId::new(outage_node),
                    SimTime::ZERO,
                    SimTime::from_millis(outage_ms),
                )
                .expect("valid window");
        }
        let mut fabric = LinkFabric::new(
            plan,
            policy(policy_idx, max_retries, timeout_ms, backoff),
        );
        for seq in 0..messages as u64 {
            let src = NodeId::new((seq % 5) as u32);
            let dst = NodeId::new((seq % 7) as u32);
            let hops = 1 + (seq % 3) as u32;
            let _ = fabric.transmit_over(src, dst, hops);
            if (seq as usize).is_multiple_of(advance_every) {
                fabric.advance(SimDuration::from_millis(10));
            }
        }
        assert_conserved(fabric.stats(), messages as u64);
        prop_assert_eq!(fabric.next_seq(), messages as u64);
    }

    /// Conservation survives merging: the merged counters of two
    /// independent fabrics satisfy the same laws with summed totals.
    #[test]
    fn fault_stats_conservation_survives_merge(
        seed in 0u64..100_000,
        drop_a in 0.0f64..1.0,
        drop_b in 0.0f64..1.0,
        messages_a in 1usize..300,
        messages_b in 1usize..300,
        policy_idx in 0usize..4,
    ) {
        let run = |plan_seed: u64, drop: f64, messages: usize| {
            let plan = FaultPlan::uniform(plan_seed, drop).expect("valid drop rate");
            let mut fabric = LinkFabric::new(plan, policy(policy_idx, 2, 50, 2.0));
            for seq in 0..messages as u64 {
                let _ = fabric.transmit(NodeId::new(0), NodeId::new(1 + (seq % 4) as u32));
            }
            *fabric.stats()
        };
        let a = run(seed, drop_a, messages_a);
        let b = run(seed ^ 0xB, drop_b, messages_b);
        let mut merged = FaultStats::default();
        merged.merge(&a);
        merged.merge(&b);
        assert_conserved(&merged, (messages_a + messages_b) as u64);
    }
}
