//! Composite venue scenarios with reliability-weighted context fusion.
//!
//! The paper's closing argument (§III.B, §V) is that no single sensing
//! modality recognizes a venue's context alone: direct backscatter
//! sensing, indirect wireless sensing, and learned models each see a
//! different slice, and the system-level contribution is *integrating*
//! them. This crate builds that integration layer on top of the
//! workspace's estimators and serving runtime:
//!
//! - [`estimator`] — one interface for every modality:
//!   `(observation, SimTime) → ClassPosterior`. The three §IV.B
//!   sensing estimators deploy behind it as naive-Bayes scorers
//!   ([`NbActivityEstimator`], also a [`zeiot_serve::ServeModel`] whose
//!   feature gathers ride the lossy fabric), and the distributed CNN
//!   family wraps directly ([`CnnActivityEstimator`]).
//! - [`fusion`] — the deterministic fusion engine:
//!   reliability-weighted log-linear pooling of per-modality class
//!   scores ([`fuse`]), with majority-vote and best-single baselines
//!   ([`FusionPolicy`]), weights driven by live serving signals
//!   ([`reliability_weight`] over degradation-state dwell times and
//!   answer rates), and graceful fallback when a modality goes stale
//!   or fails (zero weight is byte-identical to absence).
//! - [`scenario`] — the venue scenario compiler: declarative
//!   [`Scenario`] specs (train-line rush hour, stadium event day)
//!   compile one shared ground-truth schedule into correlated
//!   observation streams across all four modalities, ready to serve as
//!   [`zeiot_serve`] tenants and score fused-vs-single accuracy.
//!
//! Everything is deterministic: compilation is a pure function of the
//! spec, fusion is a pure fold over evidence in modality order, and
//! the serving path inherits the workspace's total-order guarantees.

pub mod estimator;
pub mod fusion;
pub mod scenario;

pub use estimator::{ClassPosterior, CnnActivityEstimator, Estimator, NbActivityEstimator};
pub use fusion::{
    fuse, log_posterior, mode_discount, reliability_weight, Evidence, FusionEngine, FusionPolicy,
    FusionStats, DEFAULT_EVIDENCE_FLOOR,
};
pub use scenario::{CompiledScenario, Modality, ModalityKind, Scenario, Venue, CONTEXT_LEVELS};
