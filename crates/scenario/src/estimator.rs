//! The unified estimator interface: every context-recognition modality
//! — the three §IV.B sensing estimators and the distributed CNN family
//! — answers one question, `(observation, SimTime) → ClassPosterior`.
//!
//! The sensing estimators are front-ended at scenario-compile time
//! (positioning, counting, localization run on the raw scene; see
//! [`crate::scenario`]) and their summary features are classified here
//! by a [`GaussianNb`] whose additive log-likelihoods are exactly what
//! the fusion engine pools. The CNN estimators wrap
//! [`DistributedCnn`]/[`QuantizedCnn`] so a trained deployment fits
//! behind the same interface.

use zeiot_core::id::NodeId;
use zeiot_core::time::SimTime;
use zeiot_microdeep::{DistributedCnn, LossyRuntime, QuantizedCnn, STAGE_SENSING};
use zeiot_nn::tensor::Tensor;
use zeiot_obs::trace::{ClockDomain, SpanEvent, SpanLayer, SpanScope};
use zeiot_sensing::GaussianNb;
use zeiot_serve::ServeModel;

/// Unnormalized class log-scores — the lingua franca of the fusion
/// engine. Per-modality scores of independent evidence *add*; any
/// common normalizer is constant across classes and cannot move the
/// argmax, so none is ever applied (keeping fusion a pure, exactly
/// reproducible sum).
#[derive(Debug, Clone, PartialEq)]
pub struct ClassPosterior {
    log_scores: Vec<f64>,
}

impl ClassPosterior {
    /// Wraps raw class log-scores.
    pub fn new(log_scores: Vec<f64>) -> Self {
        Self { log_scores }
    }

    /// The scores, in class order.
    pub fn log_scores(&self) -> &[f64] {
        &self.log_scores
    }

    /// Number of classes.
    pub fn class_count(&self) -> usize {
        self.log_scores.len()
    }

    /// The maximum-score class; first class wins ties (and the empty /
    /// all-`NEG_INFINITY` degenerate cases resolve to class 0),
    /// matching the workspace argmax convention.
    pub fn argmax(&self) -> usize {
        let mut best = 0usize;
        for (c, score) in self.log_scores.iter().enumerate().skip(1) {
            if score.total_cmp(&self.log_scores[best]) == std::cmp::Ordering::Greater {
                best = c;
            }
        }
        best
    }
}

/// One context-recognition modality: turns an observation into class
/// log-scores at a simulated instant.
///
/// `&mut self` because the CNN forward caches activations; estimators
/// must nonetheless be deterministic functions of their input (and, in
/// the lossy serving path, of the fabric state).
pub trait Estimator {
    /// The size of the shared label space.
    fn class_count(&self) -> usize;

    /// Estimates class log-scores for `observation` at instant `at`.
    fn estimate(&mut self, observation: &Tensor, at: SimTime) -> ClassPosterior;
}

/// A sensing modality's serve-time classifier: a [`GaussianNb`] over
/// the front-end estimator's summary features, deployable as a
/// [`ServeModel`] tenant whose feature gathers ride the lossy fabric.
#[derive(Debug, Clone, PartialEq)]
pub struct NbActivityEstimator {
    nb: GaussianNb,
    /// Mesh size used to map feature index → producing node when
    /// serving through a fabric: feature `i` is produced at node
    /// `1 + i % (gather_nodes − 1)` and gathered at node 0. With
    /// `gather_nodes ≤ 1` every gather is colocated (free).
    gather_nodes: usize,
}

impl NbActivityEstimator {
    /// Wraps a fitted classifier. `gather_nodes` is the mesh size its
    /// tenant is deployed on (drives the feature→node map above).
    pub fn new(nb: GaussianNb, gather_nodes: usize) -> Self {
        Self { nb, gather_nodes }
    }

    /// The underlying classifier.
    pub fn nb(&self) -> &GaussianNb {
        &self.nb
    }

    fn scores_f32(&self, features: &[f64]) -> Vec<f32> {
        self.nb
            .log_likelihoods(features)
            .into_iter()
            .map(|s| s as f32)
            .collect()
    }
}

impl Estimator for NbActivityEstimator {
    fn class_count(&self) -> usize {
        self.nb.class_count()
    }

    fn estimate(&mut self, observation: &Tensor, _at: SimTime) -> ClassPosterior {
        let features: Vec<f64> = observation.data().iter().map(|&v| f64::from(v)).collect();
        ClassPosterior::new(self.nb.log_likelihoods(&features))
    }
}

impl ServeModel for NbActivityEstimator {
    fn infer(&mut self, input: &Tensor) -> Vec<f32> {
        let features: Vec<f64> = input.data().iter().map(|&v| f64::from(v)).collect();
        self.scores_f32(&features)
    }

    fn infer_lossy(
        &mut self,
        input: &Tensor,
        rt: &mut LossyRuntime,
        scope: Option<&mut SpanScope<'_>>,
    ) -> Option<Vec<f32>> {
        // Gather every feature scalar from its producing node over the
        // fabric, bracketing the burst for a `fusion.gather` hop span
        // (the sensing analogue of the CNN's per-unit hop spans).
        let before = *rt.stats();
        let t0 = rt.fabric().now();
        let sink = NodeId::new(0);
        let mut features = Vec::with_capacity(input.data().len());
        let mut aborted = false;
        for (i, &raw) in input.data().iter().enumerate() {
            let src = if self.gather_nodes > 1 {
                NodeId::new((1 + i % (self.gather_nodes - 1)) as u32)
            } else {
                sink
            };
            match rt.transport(raw, src, sink, STAGE_SENSING, i, 0) {
                Some(v) => features.push(f64::from(v)),
                None => {
                    aborted = true;
                    break;
                }
            }
        }
        if let Some(scope) = scope {
            let d = rt.stats().delta_since(&before);
            if d.sent > 0 {
                let t1 = rt.fabric().now();
                let span =
                    scope.push_span(SpanLayer::Hop, "fusion.gather", ClockDomain::Fabric, t0, t1);
                scope.event(span, t1, SpanEvent::Messages { sent: d.sent });
                if d.drops > 0 {
                    scope.event(span, t1, SpanEvent::Loss { drops: d.drops });
                }
                if d.retries > 0 {
                    scope.event(span, t1, SpanEvent::Retransmit { retries: d.retries });
                }
                if d.degraded + d.corrupted > 0 {
                    scope.event(
                        span,
                        t1,
                        SpanEvent::Degraded {
                            substituted: d.degraded + d.corrupted,
                        },
                    );
                }
                if aborted {
                    scope.event(span, t1, SpanEvent::Aborted);
                }
            }
        }
        if aborted {
            return None;
        }
        Some(self.scores_f32(&features))
    }
}

/// The CNN family behind the unified interface: the f32 deployment,
/// optionally answering through its frozen int8 twin.
#[derive(Debug, Clone)]
pub struct CnnActivityEstimator {
    net: DistributedCnn,
    quantized: Option<QuantizedCnn>,
    classes: usize,
}

impl CnnActivityEstimator {
    /// Wraps a trained deployment answering in f32.
    pub fn new(net: DistributedCnn, classes: usize) -> Self {
        Self {
            net,
            quantized: None,
            classes,
        }
    }

    /// Freezes the deployment to int8, calibrated on `calibration`
    /// inputs; estimates then run the deployed integer path.
    pub fn quantized(mut net: DistributedCnn, calibration: &[Tensor], classes: usize) -> Self {
        let quantized = QuantizedCnn::new(&mut net, calibration);
        Self {
            net,
            quantized: Some(quantized),
            classes,
        }
    }

    /// The wrapped deployment.
    pub fn net(&self) -> &DistributedCnn {
        &self.net
    }
}

impl Estimator for CnnActivityEstimator {
    fn class_count(&self) -> usize {
        self.classes
    }

    fn estimate(&mut self, observation: &Tensor, _at: SimTime) -> ClassPosterior {
        let logits = match &mut self.quantized {
            Some(q) => q.forward_quantized(observation),
            None => self.net.forward(observation),
        };
        ClassPosterior::new(logits.data().iter().map(|&v| f64::from(v)).collect())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn nb() -> GaussianNb {
        let training = vec![
            (vec![0.0, 0.0], 0),
            (vec![0.1, -0.1], 0),
            (vec![5.0, 5.0], 1),
            (vec![5.1, 4.9], 1),
        ];
        GaussianNb::fit(&training, 2).expect("non-empty")
    }

    #[test]
    fn posterior_argmax_is_first_tie_wins() {
        assert_eq!(ClassPosterior::new(vec![1.0, 3.0, 3.0]).argmax(), 1);
        assert_eq!(ClassPosterior::new(vec![]).argmax(), 0);
        let ninf = f64::NEG_INFINITY;
        assert_eq!(ClassPosterior::new(vec![ninf, ninf]).argmax(), 0);
    }

    #[test]
    fn nb_estimator_agrees_with_its_classifier() {
        let mut est = NbActivityEstimator::new(nb(), 9);
        let mut obs = Tensor::zeros(vec![2]);
        obs.set(&[0], 4.9);
        obs.set(&[1], 5.2);
        let posterior = est.estimate(&obs, SimTime::ZERO);
        assert_eq!(posterior.class_count(), 2);
        assert_eq!(posterior.argmax(), 1);
        assert_eq!(posterior.argmax(), est.nb().predict(&[4.9, 5.2]));
        // The ServeModel face returns the same scores, narrowed to f32.
        let served = est.infer(&obs);
        for (s32, s64) in served.iter().zip(posterior.log_scores()) {
            assert_eq!(*s32, *s64 as f32);
        }
    }

    #[test]
    fn lossless_fabric_gather_matches_the_direct_path() {
        use zeiot_core::time::SimDuration;
        use zeiot_fault::{FaultPlan, RecoveryPolicy};
        use zeiot_net::Topology;

        let topo = Topology::grid(3, 3, 2.0, 3.0).expect("valid grid");
        let mut rt = LossyRuntime::new(
            FaultPlan::lossless(),
            RecoveryPolicy::FailFast,
            &topo,
            SimDuration::from_millis(100),
        );
        let mut est = NbActivityEstimator::new(nb(), topo.len());
        let mut obs = Tensor::zeros(vec![2]);
        obs.set(&[0], 0.1);
        obs.set(&[1], 0.0);
        let direct = est.infer(&obs);
        let gathered = est.infer_lossy(&obs, &mut rt, None).expect("lossless");
        assert_eq!(direct, gathered);
        assert!(rt.stats().sent > 0, "gathers crossed the fabric");
    }
}
