//! The deterministic fusion engine: reliability-weighted log-linear
//! pooling of per-modality class scores, with majority-vote and
//! best-single baselines.
//!
//! The paper's §III.B claim is that direct (backscatter) and indirect
//! (wireless) sensing are complementary and should be *integrated*.
//! Score-level fusion of naive-Bayes modalities is a weighted sum of
//! log-likelihoods: under unit weights it is exactly the joint
//! likelihood of independent evidence (the X2 harness's fusion), and
//! the weights let live serving signals — degradation-state dwell
//! times, answer rates, shed counts — discount a modality whose fabric
//! is misbehaving instead of letting it drag the estimate down.
//!
//! Everything here is pure arithmetic over the inputs, in input order:
//! fusion is byte-reproducible wherever the evidence is.

use crate::estimator::ClassPosterior;
use zeiot_obs::{Label, Recorder};
use zeiot_serve::{DwellState, ServiceMode, TenantStats};

/// One modality's contribution to a fused estimate: its class
/// log-scores and the reliability weight attached to them. A weight of
/// exactly `0.0` means "this modality has nothing to say" (failed,
/// shed, or deliberately dropped) and is skipped outright — fusing
/// with it is byte-identical to omitting it.
#[derive(Debug, Clone, PartialEq)]
pub struct Evidence {
    /// Class log-scores, one per shared class.
    pub log_scores: Vec<f64>,
    /// Non-negative reliability weight.
    pub weight: f64,
}

/// How per-modality evidence becomes one context estimate.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FusionPolicy {
    /// Log-linear pooling: fused score\[c\] = Σ_m weight_m ·
    /// log_scores_m\[c\], argmax'd. The paper-faithful integrator.
    ReliabilityWeighted,
    /// Each contributing modality casts one vote for its own argmax;
    /// the most-voted class wins, ties to the lowest class index.
    MajorityVote,
    /// Trust only the highest-weight modality (ties to the earliest);
    /// the no-fusion control arm.
    BestSingle,
}

impl FusionPolicy {
    /// Every policy, in report order.
    pub const ALL: [FusionPolicy; 3] = [
        FusionPolicy::ReliabilityWeighted,
        FusionPolicy::MajorityVote,
        FusionPolicy::BestSingle,
    ];

    /// Stable lowercase label for reports and metric names.
    pub fn label(&self) -> &'static str {
        match self {
            FusionPolicy::ReliabilityWeighted => "reliability_weighted",
            FusionPolicy::MajorityVote => "majority_vote",
            FusionPolicy::BestSingle => "best_single",
        }
    }
}

/// Log-linear pooling of `evidence`: fused\[c\] = Σ_m w_m · s_m\[c\],
/// summed in evidence order. Zero-weight modalities are skipped before
/// any arithmetic (so `0 · (−∞)` can never poison a class), making the
/// result byte-identical to fusing without them. Returns `None` when
/// no modality contributes or contributing modalities disagree on the
/// class count.
pub fn fuse(evidence: &[Evidence]) -> Option<ClassPosterior> {
    let mut fused: Option<Vec<f64>> = None;
    for e in evidence {
        if e.weight == 0.0 {
            continue;
        }
        let pool = fused.get_or_insert_with(|| vec![0.0; e.log_scores.len()]);
        if pool.len() != e.log_scores.len() {
            return None;
        }
        for (p, s) in pool.iter_mut().zip(&e.log_scores) {
            *p += e.weight * s;
        }
    }
    fused.map(ClassPosterior::new)
}

/// Default posterior floor for [`log_posterior`]: e⁻³ ≈ 0.05 per
/// class, so one modality can push a class at most 3 nats below its
/// own argmax.
pub const DEFAULT_EVIDENCE_FLOOR: f64 = -3.0;

/// Converts one modality's raw class log-scores into bounded
/// log-posteriors fit for cross-modality pooling.
///
/// Raw scores are not comparable across modalities: a naive-Bayes
/// classifier with tight fitted variances emits log-likelihoods
/// hundreds of nats apart while CNN logits sit within a few units, so
/// pooling them directly lets the loudest modality decide every
/// instant by magnitude alone. Log-sum-exp normalization turns each
/// score vector into a proper log-distribution (shifting by a
/// per-modality constant, so the modality's own argmax is unchanged),
/// and the `floor` clamp bounds how far one confidently-wrong modality
/// can push any class down — the classic robust-fusion temper.
///
/// Non-finite inputs (a maximum of `−∞` or `NaN`) are returned
/// unchanged; [`fuse`]'s zero-weight skip is the intended guard for
/// modalities with nothing to say.
pub fn log_posterior(log_scores: &[f64], floor: f64) -> Vec<f64> {
    let max = log_scores.iter().copied().fold(f64::NEG_INFINITY, f64::max);
    if !max.is_finite() {
        return log_scores.to_vec();
    }
    let lse = max
        + log_scores
            .iter()
            .map(|&s| (s - max).exp())
            .sum::<f64>()
            .ln();
    log_scores.iter().map(|&s| (s - lse).max(floor)).collect()
}

/// The reliability weight live serving signals assign a modality:
///
/// ```text
/// weight = calibration accuracy
///        × dwell health   (Full 1.0, Degraded 0.75, Stale 0.4, Failed 0.0,
///                          mixed by the tenant's dwell-time fractions)
///        × answer rate    (served / offered — sheds and failures count against)
/// ```
///
/// A tenant that never dwelt anywhere (no horizon accounted) is
/// treated as healthy; a tenant that was never offered a request gets
/// weight zero — it has no evidence to weigh.
pub fn reliability_weight(calib_accuracy: f64, stats: &TenantStats) -> f64 {
    let health = if stats.dwell.total().is_zero() {
        1.0
    } else {
        stats.dwell.fraction(DwellState::Full)
            + 0.75 * stats.dwell.fraction(DwellState::Degraded)
            + 0.4 * stats.dwell.fraction(DwellState::Stale)
    };
    let answer_rate = if stats.offered == 0 {
        0.0
    } else {
        stats.served as f64 / stats.offered as f64
    };
    calib_accuracy * health * answer_rate
}

/// The per-answer discount a modality's *service mode* applies on top
/// of its run-level weight, monotone down the degradation ladder: full
/// answers count whole, degraded answers at 0.6 (they were computed
/// from substituted inputs and are exactly the answers fusion should
/// let the other modalities outvote), stale answers at 0.4 (they
/// describe an earlier instant).
pub fn mode_discount(mode: ServiceMode) -> f64 {
    match mode {
        ServiceMode::Full => 1.0,
        ServiceMode::Degraded => 0.6,
        ServiceMode::Stale => 0.4,
    }
}

/// Running `fusion.*` counters for one fusion stream.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FusionStats {
    /// Estimates pooled from every modality.
    pub fused: u64,
    /// Estimates pooled from a strict, non-empty subset (graceful
    /// fallback past Stale/Failed modalities).
    pub fallback: u64,
    /// Instants with no contributing modality at all.
    pub abstained: u64,
}

impl FusionStats {
    /// Writes the counters into `recorder` under `label`.
    pub fn record_to(&self, recorder: &mut Recorder, label: Label) {
        recorder.add("fusion.fused", label.clone(), self.fused);
        recorder.add("fusion.fallback", label.clone(), self.fallback);
        recorder.add("fusion.abstained", label, self.abstained);
    }
}

/// A stateful fusion stream: applies one [`FusionPolicy`] per instant
/// and keeps the `fusion.*` counters honest.
#[derive(Debug, Clone)]
pub struct FusionEngine {
    policy: FusionPolicy,
    stats: FusionStats,
}

impl FusionEngine {
    /// A fresh stream under `policy`.
    pub fn new(policy: FusionPolicy) -> Self {
        Self {
            policy,
            stats: FusionStats::default(),
        }
    }

    /// The stream's policy.
    pub fn policy(&self) -> FusionPolicy {
        self.policy
    }

    /// The counters so far.
    pub fn stats(&self) -> FusionStats {
        self.stats
    }

    /// Writes the counters into `recorder` under `label`.
    pub fn record_to(&self, recorder: &mut Recorder, label: Label) {
        self.stats.record_to(recorder, label);
    }

    /// Fuses one instant's evidence into a class estimate, or `None`
    /// when every modality abstained.
    pub fn estimate(&mut self, evidence: &[Evidence]) -> Option<usize> {
        let contributing = evidence.iter().filter(|e| e.weight > 0.0).count();
        if contributing == 0 {
            self.stats.abstained += 1;
            return None;
        }
        if contributing == evidence.len() {
            self.stats.fused += 1;
        } else {
            self.stats.fallback += 1;
        }
        match self.policy {
            FusionPolicy::ReliabilityWeighted => fuse(evidence).map(|p| p.argmax()),
            FusionPolicy::MajorityVote => {
                let classes = evidence
                    .iter()
                    .find(|e| e.weight > 0.0)
                    .map(|e| e.log_scores.len())?;
                let mut votes = vec![0usize; classes];
                for e in evidence {
                    if e.weight == 0.0 || e.log_scores.len() != classes {
                        continue;
                    }
                    let vote = ClassPosterior::new(e.log_scores.clone()).argmax();
                    votes[vote] += 1;
                }
                // Most votes, ties to the lowest class index.
                let mut best = 0usize;
                for (c, &v) in votes.iter().enumerate().skip(1) {
                    if v > votes[best] {
                        best = c;
                    }
                }
                Some(best)
            }
            FusionPolicy::BestSingle => {
                let mut best: Option<&Evidence> = None;
                for e in evidence {
                    if e.weight == 0.0 {
                        continue;
                    }
                    let better = match best {
                        None => true,
                        Some(b) => e.weight > b.weight,
                    };
                    if better {
                        best = Some(e);
                    }
                }
                best.map(|e| ClassPosterior::new(e.log_scores.clone()).argmax())
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(scores: &[f64], weight: f64) -> Evidence {
        Evidence {
            log_scores: scores.to_vec(),
            weight,
        }
    }

    #[test]
    fn unit_weight_fusion_is_the_plain_sum() {
        let a = ev(&[-1.0, -2.0, -3.0], 1.0);
        let b = ev(&[-4.0, -0.5, -9.0], 1.0);
        let fused = fuse(&[a.clone(), b.clone()]).expect("evidence present");
        for (c, f) in fused.log_scores().iter().enumerate() {
            assert_eq!(*f, a.log_scores[c] + b.log_scores[c]);
        }
        assert_eq!(fused.argmax(), 1);
    }

    #[test]
    fn zero_weight_is_byte_identical_to_dropping() {
        let a = ev(&[-1.0, -2.0], 0.8);
        let dead = ev(&[f64::NEG_INFINITY, 100.0], 0.0);
        let with = fuse(&[a.clone(), dead]).expect("a contributes");
        let without = fuse(&[a]).expect("a contributes");
        assert_eq!(with, without);
        assert!(fuse(&[ev(&[1.0], 0.0)]).is_none());
    }

    #[test]
    fn mismatched_class_counts_refuse_to_fuse() {
        assert!(fuse(&[ev(&[1.0, 2.0], 1.0), ev(&[1.0], 1.0)]).is_none());
    }

    #[test]
    fn weights_tilt_the_pool() {
        // Modality a prefers class 0, b prefers class 1, same margin;
        // the heavier weight wins.
        let a = ev(&[-1.0, -2.0], 2.0);
        let b = ev(&[-2.0, -1.0], 1.0);
        assert_eq!(fuse(&[a.clone(), b.clone()]).expect("present").argmax(), 0);
        let a = ev(&[-1.0, -2.0], 1.0);
        let b = ev(&[-2.0, -1.0], 2.0);
        assert_eq!(fuse(&[a, b]).expect("present").argmax(), 1);
    }

    #[test]
    fn log_posterior_normalizes_and_floors_without_moving_the_argmax() {
        // A loud modality (naive-Bayes magnitudes) and a quiet one
        // (CNN logits) land on the same bounded scale.
        let loud = log_posterior(&[-900.0, -250.0, -910.0], DEFAULT_EVIDENCE_FLOOR);
        let quiet = log_posterior(&[0.2, 1.4, -0.3], DEFAULT_EVIDENCE_FLOOR);
        for scores in [&loud, &quiet] {
            assert_eq!(ClassPosterior::new(scores.to_vec()).argmax(), 1);
            for &s in scores.iter() {
                assert!((DEFAULT_EVIDENCE_FLOOR..=0.0).contains(&s), "{s}");
            }
        }
        // The floor caps the loud modality's margin at 3 nats.
        assert_eq!(loud[0], DEFAULT_EVIDENCE_FLOOR);
        assert_eq!(loud[2], DEFAULT_EVIDENCE_FLOOR);
        // A proper distribution normalizes to log 1 at a sure thing.
        let sure = log_posterior(&[500.0, -500.0], f64::NEG_INFINITY);
        assert!(sure[0].abs() < 1e-9);
        // Non-finite scores pass through untouched.
        let dead = vec![f64::NEG_INFINITY, f64::NEG_INFINITY];
        assert_eq!(log_posterior(&dead, -3.0), dead);
    }

    #[test]
    fn reliability_weight_tracks_dwell_and_answer_rate() {
        use zeiot_core::time::SimDuration;
        let mut healthy = TenantStats::default();
        healthy.offered = 10;
        healthy.served = 10;
        healthy
            .dwell
            .add(DwellState::Full, SimDuration::from_secs(4));
        assert!((reliability_weight(0.9, &healthy) - 0.9).abs() < 1e-12);

        let mut ailing = TenantStats::default();
        ailing.offered = 10;
        ailing.served = 5;
        ailing
            .dwell
            .add(DwellState::Stale, SimDuration::from_secs(4));
        // 0.9 × 0.4 (all-stale health) × 0.5 (answer rate)
        assert!((reliability_weight(0.9, &ailing) - 0.9 * 0.4 * 0.5).abs() < 1e-12);
        assert!(reliability_weight(0.9, &TenantStats::default()) == 0.0);
    }

    #[test]
    fn engine_counts_fused_fallback_abstained() {
        let mut engine = FusionEngine::new(FusionPolicy::ReliabilityWeighted);
        let a = ev(&[-1.0, -2.0], 1.0);
        let b = ev(&[-2.0, -1.0], 1.0);
        assert!(engine.estimate(&[a.clone(), b.clone()]).is_some());
        assert!(engine
            .estimate(&[a.clone(), ev(&[0.0, 0.0], 0.0)])
            .is_some());
        assert!(engine.estimate(&[ev(&[0.0, 0.0], 0.0)]).is_none());
        let stats = engine.stats();
        assert_eq!(
            (stats.fused, stats.fallback, stats.abstained),
            (1, 1, 1),
            "{stats:?}"
        );
        let mut rec = Recorder::new();
        engine.record_to(&mut rec, Label::part("t"));
        assert_eq!(rec.counter_value("fusion.fused", &Label::part("t")), 1);
    }

    #[test]
    fn majority_vote_and_best_single_baselines() {
        let prefers = |c: usize| {
            let mut s = vec![-5.0; 3];
            s[c] = -1.0;
            s
        };
        let evidence = vec![
            ev(&prefers(2), 0.2),
            ev(&prefers(2), 0.3),
            ev(&prefers(0), 0.9),
        ];
        let mut vote = FusionEngine::new(FusionPolicy::MajorityVote);
        assert_eq!(vote.estimate(&evidence), Some(2));
        let mut single = FusionEngine::new(FusionPolicy::BestSingle);
        assert_eq!(single.estimate(&evidence), Some(0));
        // Vote ties resolve to the lowest class.
        let tied = vec![ev(&prefers(1), 0.5), ev(&prefers(0), 0.5)];
        let mut vote = FusionEngine::new(FusionPolicy::MajorityVote);
        assert_eq!(vote.estimate(&tied), Some(0));
    }
}
