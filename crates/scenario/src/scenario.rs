//! The venue scenario compiler: declarative composite-venue specs
//! compiled into correlated multi-modality observation streams, ready
//! to serve as [`zeiot_serve`] tenants.
//!
//! A [`Scenario`] names a [`Venue`] (a piecewise schedule of context
//! levels over the day — a train line's rush hour, a stadium's event
//! surge) and sizes. [`Scenario::compile`] draws one shared
//! ground-truth level per observation instant and drives *every*
//! modality's `zeiot-data` generator from it, so surges are correlated
//! across modalities exactly as one physical crowd would be:
//!
//! - **congestion** — a [`TrainSceneGenerator`] ride at the truth
//!   level, positioned and voted by the §IV.B.1
//!   [`CongestionEstimator`]; the per-level car fractions feed a
//!   [`GaussianNb`].
//! - **counting** — WSN RSSI means at a truth-level crowd size,
//!   counted by the §IV.B.2 [`PeopleCounter`]; (predicted count,
//!   surrounding RSSI) feed a [`GaussianNb`].
//! - **csi** — a CSI frame from a truth-level zone, located by the
//!   §IV.B.3 [`CsiLocalizer`]; the located position feeds a
//!   [`GaussianNb`].
//! - **cnn** — a truth-level activity image classified end-to-end by a
//!   trained [`DistributedCnn`] deployment.
//!
//! Each modality carries an honest holdout calibration accuracy (its
//! prior reliability) and a per-instant sample pool aligned so that
//! request `seq = k` of every tenant observes instant `k` — periodic
//! arrivals make the four streams synchronous, and score-level fusion
//! across them is a pure pool over [`crate::fusion::Evidence`].

use crate::estimator::NbActivityEstimator;
use serde::{Deserialize, Serialize};
use zeiot_core::error::{ConfigError, Result};
use zeiot_core::rng::SeedRng;
use zeiot_core::time::SimDuration;
use zeiot_data::csi::{CsiGenerator, CsiPattern};
use zeiot_data::train::{CongestionLevel, TrainScene, TrainSceneGenerator};
use zeiot_microdeep::{Assignment, CnnConfig, DistributedCnn, WeightUpdate};
use zeiot_net::Topology;
use zeiot_nn::tensor::Tensor;
use zeiot_sensing::counting::{CountingFeatures, PeopleCounter};
use zeiot_sensing::csi::CsiLocalizer;
use zeiot_sensing::train::{LabelledScene, TrainObservation};
use zeiot_sensing::{CongestionEstimator, GaussianNb};
use zeiot_serve::{ArrivalProcess, Tenant, TenantSpec};

/// The shared label space: 0 = low, 1 = medium, 2 = high context
/// intensity (crowding), aligned with [`CongestionLevel`] indices.
pub const CONTEXT_LEVELS: usize = 3;

/// A venue archetype: how crowd intensity moves over the horizon, as a
/// piecewise-constant schedule of `(fraction of horizon, level)`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Venue {
    /// A commuter train line: quiet early service, a long rush-hour
    /// crest, then a taper.
    TrainRush,
    /// A stadium on event day: build-up, a sustained full house, and
    /// the egress wave.
    StadiumEvent,
}

impl Venue {
    /// Every venue, in report order.
    pub const ALL: [Venue; 2] = [Venue::TrainRush, Venue::StadiumEvent];

    /// Stable lowercase label for reports and metric names.
    pub fn label(&self) -> &'static str {
        match self {
            Venue::TrainRush => "train_rush",
            Venue::StadiumEvent => "stadium_event",
        }
    }

    /// The `(horizon fraction, level)` schedule; fractions sum to 1.
    pub fn schedule(&self) -> &'static [(f64, usize)] {
        match self {
            Venue::TrainRush => &[(0.25, 0), (0.5, 2), (0.25, 1)],
            Venue::StadiumEvent => &[(0.2, 0), (0.2, 1), (0.4, 2), (0.2, 1)],
        }
    }

    /// The scheduled truth level at `frac ∈ [0, 1)` of the horizon.
    pub fn level_at(&self, frac: f64) -> usize {
        let schedule = self.schedule();
        let mut acc = 0.0;
        for &(span, level) in schedule {
            acc += span;
            if frac < acc {
                return level;
            }
        }
        schedule.last().map(|&(_, level)| level).unwrap_or(0)
    }
}

/// A declarative composite-venue scenario: what plays out, how long,
/// and from which seed. Plain data — compile it with
/// [`Scenario::compile`].
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Scenario {
    /// The venue archetype driving the truth schedule.
    pub venue: Venue,
    /// Observation instants (one synchronized request per modality
    /// per instant).
    pub observations: usize,
    /// Calibration draws per context level and modality.
    pub training_per_level: usize,
    /// Gap between observation instants (every tenant's arrival
    /// period).
    pub period: SimDuration,
    /// Relative deadline granted to every request.
    pub deadline: SimDuration,
    /// Master seed; all compile-time streams derive from it.
    pub seed: u64,
}

impl Scenario {
    /// A scenario with the workspace's E10-family serving constants
    /// (500 ms cadence, 400 ms deadline).
    pub fn new(venue: Venue, observations: usize, training_per_level: usize, seed: u64) -> Self {
        Self {
            venue,
            observations,
            training_per_level,
            period: SimDuration::from_millis(500),
            deadline: SimDuration::from_millis(400),
            seed,
        }
    }

    /// Compiles the spec: draws the truth schedule, calibrates all four
    /// modality front-ends, and materializes the per-instant sample
    /// pools.
    ///
    /// # Errors
    ///
    /// Returns an error if the spec is degenerate (zero observations or
    /// calibration draws) or a front-end rejects its calibration set.
    pub fn compile(&self) -> Result<CompiledScenario> {
        if self.observations == 0 {
            return Err(ConfigError::new("observations", "must be positive"));
        }
        if self.training_per_level < 4 {
            return Err(ConfigError::new(
                "training_per_level",
                "needs at least 4 draws per level",
            ));
        }
        let truth: Vec<usize> = (0..self.observations)
            .map(|k| self.venue.level_at(k as f64 / self.observations as f64))
            .collect();

        let mut front_rng = SeedRng::with_stream(self.seed, 0xDA7A);
        let mut obs_rng = SeedRng::with_stream(self.seed, 0x0B5E);

        let modalities = vec![
            compile_congestion(self, &truth, &mut front_rng, &mut obs_rng)?,
            compile_counting(self, &truth, &mut front_rng, &mut obs_rng)?,
            compile_csi(self, &truth, &mut front_rng, &mut obs_rng)?,
            compile_cnn(self, &truth, &mut front_rng, &mut obs_rng)?,
        ];

        Ok(CompiledScenario {
            venue: self.venue,
            truth,
            period: self.period,
            deadline: self.deadline,
            modalities,
        })
    }
}

/// Which front-end produced a modality's evidence.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum ModalityKind {
    /// §IV.B.1 train congestion estimation.
    Congestion,
    /// §IV.B.2 WSN people counting.
    Counting,
    /// §IV.B.3 CSI localization.
    Csi,
    /// The distributed-CNN deployment.
    Cnn,
}

impl ModalityKind {
    /// Stable lowercase label for reports and metric names (doubles as
    /// the tenant name).
    pub fn label(&self) -> &'static str {
        match self {
            ModalityKind::Congestion => "congestion",
            ModalityKind::Counting => "counting",
            ModalityKind::Csi => "csi",
            ModalityKind::Cnn => "cnn",
        }
    }
}

/// What answers a modality's requests.
#[derive(Debug, Clone)]
enum ModalityModel {
    Nb(GaussianNb),
    // Boxed: a distributed deployment dwarfs the NB parameter tables.
    Cnn(Box<DistributedCnn>),
}

/// One compiled modality: its serving model, holdout reliability, and
/// per-instant observation pool (entry `k` observes instant `k`).
#[derive(Debug, Clone)]
pub struct Modality {
    /// Which front-end this is.
    pub kind: ModalityKind,
    /// Holdout calibration accuracy — the modality's prior
    /// reliability, before serving-time health discounts.
    pub calib_accuracy: f64,
    model: ModalityModel,
    pool: Vec<(Tensor, usize)>,
}

impl Modality {
    /// The per-instant sample pool (input, truth level).
    pub fn pool(&self) -> &[(Tensor, usize)] {
        &self.pool
    }

    /// Builds this modality's serving tenant. NB modalities deploy as
    /// custom [`NbActivityEstimator`] models whose feature gathers ride
    /// the fabric of a `gather_nodes`-node mesh; the CNN modality
    /// deploys its distributed net directly.
    fn tenant(&self, scenario: &CompiledScenario, gather_nodes: usize) -> Result<Tenant> {
        let spec = TenantSpec::new(
            self.kind.label(),
            ArrivalProcess::periodic(scenario.period),
            scenario.deadline,
        );
        match &self.model {
            ModalityModel::Nb(nb) => Tenant::with_model(
                spec,
                Box::new(NbActivityEstimator::new(nb.clone(), gather_nodes)),
                self.pool.clone(),
            ),
            ModalityModel::Cnn(net) => Tenant::new(spec, (**net).clone(), self.pool.clone()),
        }
        .map_err(|e| ConfigError::new("tenant", e))
    }
}

/// A compiled scenario: the shared truth schedule plus every
/// modality's calibrated model and aligned observation pool. Plain
/// data — clone tenants out of it per serving run.
#[derive(Debug, Clone)]
pub struct CompiledScenario {
    /// The venue this was compiled from.
    pub venue: Venue,
    /// Ground-truth context level per observation instant.
    pub truth: Vec<usize>,
    /// Gap between observation instants.
    pub period: SimDuration,
    /// Relative deadline granted to every request.
    pub deadline: SimDuration,
    modalities: Vec<Modality>,
}

impl CompiledScenario {
    /// The compiled modalities, in [`ModalityKind`] declaration order.
    pub fn modalities(&self) -> &[Modality] {
        &self.modalities
    }

    /// The serving horizon that yields exactly one request per
    /// observation instant per tenant (periodic arrivals, zero phase).
    pub fn horizon(&self) -> SimDuration {
        self.period * self.truth.len() as u64
    }

    /// Builds one serving tenant per modality, in modality order, for
    /// deployment on a `gather_nodes`-node mesh.
    ///
    /// # Errors
    ///
    /// Returns an error if a tenant rejects its pool (impossible for a
    /// compiled scenario's non-empty pools).
    pub fn make_tenants(&self, gather_nodes: usize) -> Result<Vec<Tenant>> {
        self.modalities
            .iter()
            .map(|m| m.tenant(self, gather_nodes))
            .collect()
    }
}

/// Accuracy of `predict` over a labelled holdout.
fn holdout_accuracy(holdout: &[(Vec<f64>, usize)], nb: &GaussianNb) -> f64 {
    if holdout.is_empty() {
        return 0.0;
    }
    let correct = holdout
        .iter()
        .filter(|(f, label)| nb.predict(f) == *label)
        .count();
    correct as f64 / holdout.len() as f64
}

fn feature_tensor(features: &[f64]) -> Tensor {
    let mut t = Tensor::zeros(vec![features.len()]);
    for (i, &f) in features.iter().enumerate() {
        t.set(&[i], f as f32);
    }
    t
}

/// Balanced labels for calibration draws: `per_level` of each level,
/// interleaved so truncation stays balanced.
fn balanced_levels(per_level: usize) -> impl Iterator<Item = usize> {
    (0..per_level * CONTEXT_LEVELS).map(|i| i % CONTEXT_LEVELS)
}

// ---------------------------------------------------------------------
// Congestion: train scenes → position + vote front-end → level-fraction
// features.
// ---------------------------------------------------------------------

fn scene_observation(scene: &TrainScene) -> TrainObservation {
    TrainObservation {
        cars: scene.cars(),
        reference_car: scene.reference_car.clone(),
        user_to_reference: scene.user_to_reference.clone(),
        user_to_user: scene.user_to_user.clone(),
    }
}

/// The congestion modality's summary features: the fraction of cars
/// the front-end estimates at each level.
fn congestion_features(est: &CongestionEstimator, obs: &TrainObservation) -> Vec<f64> {
    let positions = est.estimate_positions(obs);
    let levels = est.estimate_congestion(obs, &positions, true);
    let mut fractions = vec![0.0f64; CONTEXT_LEVELS];
    for &level in &levels {
        fractions[level.min(CONTEXT_LEVELS - 1)] += 1.0 / levels.len() as f64;
    }
    fractions
}

/// Per-car congestion mixing: a venue at context level `L` puts each
/// car at `L` with probability 0.6 and at an adjacent level otherwise
/// (clamped at the ends). Real rides are never uniform — the head car
/// of a packed train still breathes — and the overlap keeps the
/// congestion modality's Bayes accuracy honestly below 1.
fn mixed_congestion(level: usize, cars: usize, rng: &mut SeedRng) -> Vec<CongestionLevel> {
    let level = level.min(CONTEXT_LEVELS - 1) as i64;
    (0..cars)
        .map(|_| {
            let roll = rng.below(10);
            let offset = if roll < 6 {
                0
            } else if roll < 8 {
                -1
            } else {
                1
            };
            let car_level = (level + offset).clamp(0, CONTEXT_LEVELS as i64 - 1) as usize;
            CongestionLevel::ALL[car_level]
        })
        .collect()
}

fn congestion_draw(
    generator: &TrainSceneGenerator,
    est: &CongestionEstimator,
    level: usize,
    rng: &mut SeedRng,
) -> Vec<f64> {
    let mixed = mixed_congestion(level, generator.cars(), rng);
    let scene = generator.scene_with_congestion(&mixed, rng);
    congestion_features(est, &scene_observation(&scene))
}

fn compile_congestion(
    scenario: &Scenario,
    truth: &[usize],
    front_rng: &mut SeedRng,
    obs_rng: &mut SeedRng,
) -> Result<Modality> {
    let generator = TrainSceneGenerator::paper_train()?;
    // The front-end calibrates on mixed-congestion rides (it needs
    // every car-hop distance and level represented).
    let scenes: Vec<LabelledScene> = (0..scenario.training_per_level * CONTEXT_LEVELS)
        .map(|_| {
            let scene = generator.scene(front_rng);
            LabelledScene {
                observation: scene_observation(&scene),
                user_car: scene.user_car.clone(),
                congestion: scene.congestion.iter().map(|c| c.index()).collect(),
            }
        })
        .collect();
    let est = CongestionEstimator::fit(&scenes)?;

    let training: Vec<(Vec<f64>, usize)> = balanced_levels(scenario.training_per_level)
        .map(|level| (congestion_draw(&generator, &est, level, front_rng), level))
        .collect();
    let nb = GaussianNb::fit(&training, CONTEXT_LEVELS)?;
    let holdout: Vec<(Vec<f64>, usize)> = balanced_levels(scenario.training_per_level / 2)
        .map(|level| (congestion_draw(&generator, &est, level, front_rng), level))
        .collect();

    let pool = truth
        .iter()
        .map(|&level| {
            (
                feature_tensor(&congestion_draw(&generator, &est, level, obs_rng)),
                level,
            )
        })
        .collect();
    Ok(Modality {
        kind: ModalityKind::Congestion,
        calib_accuracy: holdout_accuracy(&holdout, &nb),
        model: ModalityModel::Nb(nb),
        pool,
    })
}

// ---------------------------------------------------------------------
// Counting: crowd-size RSSI means → people counter front-end →
// (predicted count, surrounding RSSI) features.
// ---------------------------------------------------------------------

/// Crowd-size range per context level (people in the counting zone).
const COUNT_RANGES: [(usize, usize); CONTEXT_LEVELS] = [(2, 6), (8, 14), (16, 24)];

/// Synthetic WSN RSSI means at a given crowd size: bodies attenuate
/// the inter-node links (≈ −0.8 dB/person) and *raise* the ambient
/// surrounding level (≈ +0.9 dB/person of reflected energy), with
/// enough measurement noise that adjacent levels overlap.
fn counting_measurement(count: usize, rng: &mut SeedRng) -> CountingFeatures {
    let inter = -60.0 - 0.8 * count as f64 + rng.normal_with(0.0, 5.0);
    let surrounding = -95.0 + 0.9 * count as f64 + rng.normal_with(0.0, 4.0);
    CountingFeatures::new(inter, surrounding)
}

fn level_count(level: usize, rng: &mut SeedRng) -> usize {
    let (lo, hi) = COUNT_RANGES[level.min(CONTEXT_LEVELS - 1)];
    lo + rng.below(hi - lo + 1)
}

/// The counting modality's summary features: the front-end's count
/// estimate plus the raw surrounding level it worked from.
fn counting_features(counter: &PeopleCounter, m: &CountingFeatures) -> Vec<f64> {
    vec![counter.predict(m) as f64, m.mean_surrounding_dbm]
}

fn compile_counting(
    scenario: &Scenario,
    truth: &[usize],
    front_rng: &mut SeedRng,
    obs_rng: &mut SeedRng,
) -> Result<Modality> {
    let calibration: Vec<(CountingFeatures, usize)> = balanced_levels(scenario.training_per_level)
        .map(|level| {
            let count = level_count(level, front_rng);
            (counting_measurement(count, front_rng), count)
        })
        .collect();
    let counter = PeopleCounter::fit(&calibration)?;

    let draw = |level: usize, rng: &mut SeedRng| -> Vec<f64> {
        counting_features(
            &counter,
            &counting_measurement(level_count(level, rng), rng),
        )
    };
    let training: Vec<(Vec<f64>, usize)> = balanced_levels(scenario.training_per_level)
        .map(|level| (draw(level, front_rng), level))
        .collect();
    let nb = GaussianNb::fit(&training, CONTEXT_LEVELS)?;
    let holdout: Vec<(Vec<f64>, usize)> = balanced_levels(scenario.training_per_level / 2)
        .map(|level| (draw(level, front_rng), level))
        .collect();

    let pool = truth
        .iter()
        .map(|&level| (feature_tensor(&draw(level, obs_rng)), level))
        .collect();
    Ok(Modality {
        kind: ModalityKind::Counting,
        calib_accuracy: holdout_accuracy(&holdout, &nb),
        model: ModalityModel::Nb(nb),
        pool,
    })
}

// ---------------------------------------------------------------------
// CSI: level-zone frames → localizer front-end → located-position
// feature.
// ---------------------------------------------------------------------

/// Which of the 7 CSI positions each context level's crowd occupies.
/// Adjacent zones share a boundary position (2 and 4), so even a
/// perfect localizer cannot separate the levels completely — the
/// modality's Bayes accuracy is honestly below 1.
const LEVEL_POSITIONS: [&[usize]; CONTEXT_LEVELS] = [&[0, 1, 2], &[2, 3, 4], &[4, 5, 6]];

/// Reference frames per position for the localizer's kNN database.
const CSI_REFERENCES_PER_POSITION: usize = 8;

fn compile_csi(
    scenario: &Scenario,
    truth: &[usize],
    front_rng: &mut SeedRng,
    obs_rng: &mut SeedRng,
) -> Result<Modality> {
    let generator = CsiGenerator::new(scenario.seed ^ 0xC51)?;
    // One fixed pattern throughout: CSI signatures are
    // pattern-specific, so calibration and live frames must share one.
    // The paper's best (walking + divergent antennas).
    let pattern = CsiPattern::all()[4];

    let references: Vec<(Vec<f64>, usize)> = (0..CSI_REFERENCES_PER_POSITION)
        .flat_map(|_| 0..zeiot_data::csi::CSI_POSITIONS)
        .map(|position| {
            (
                generator.sample(position, pattern, front_rng).features,
                position,
            )
        })
        .collect();
    let localizer = CsiLocalizer::fit(&references, 3)?;

    let draw = |level: usize, rng: &mut SeedRng| -> Vec<f64> {
        let zone = LEVEL_POSITIONS[level.min(CONTEXT_LEVELS - 1)];
        let position = zone[rng.below(zone.len())];
        let sample = generator.sample(position, pattern, rng);
        vec![localizer.localize(&sample.features) as f64]
    };
    let training: Vec<(Vec<f64>, usize)> = balanced_levels(scenario.training_per_level)
        .map(|level| (draw(level, front_rng), level))
        .collect();
    let nb = GaussianNb::fit(&training, CONTEXT_LEVELS)?;
    let holdout: Vec<(Vec<f64>, usize)> = balanced_levels(scenario.training_per_level / 2)
        .map(|level| (draw(level, front_rng), level))
        .collect();

    let pool = truth
        .iter()
        .map(|&level| (feature_tensor(&draw(level, obs_rng)), level))
        .collect();
    Ok(Modality {
        kind: ModalityKind::Csi,
        calib_accuracy: holdout_accuracy(&holdout, &nb),
        model: ModalityModel::Nb(nb),
        pool,
    })
}

// ---------------------------------------------------------------------
// CNN: level-coded activity images → trained distributed deployment.
// ---------------------------------------------------------------------

/// Pixel noise on the activity images; high enough that the small CNN
/// plateaus below perfect accuracy (an honestly fallible modality).
const CNN_NOISE_SIGMA: f64 = 0.9;

/// Training epochs / learning rate / batch for the CNN modality
/// (matches the E9–E13 family).
const CNN_EPOCHS: usize = 6;
const CNN_LEARNING_RATE: f32 = 0.08;
const CNN_BATCH: usize = 8;

/// A synthetic 8×8 activity image: each context level lights its own
/// quadrant (low → top-left, medium → top-right, high → bottom-right)
/// under heavy pixel noise.
fn level_image(level: usize, rng: &mut SeedRng) -> Tensor {
    let (y0, x0) = match level {
        0 => (0, 0),
        1 => (0, 4),
        _ => (4, 4),
    };
    let mut image = Tensor::zeros(vec![1, 8, 8]);
    for y in 0..8 {
        for x in 0..8 {
            let lit = (y0..y0 + 4).contains(&y) && (x0..x0 + 4).contains(&x);
            let base = if lit { 1.0 } else { 0.0 };
            let v = base + rng.normal_with(0.0, CNN_NOISE_SIGMA);
            image.set(&[0, y, x], v as f32);
        }
    }
    image
}

fn compile_cnn(
    scenario: &Scenario,
    truth: &[usize],
    front_rng: &mut SeedRng,
    obs_rng: &mut SeedRng,
) -> Result<Modality> {
    let config = CnnConfig::new(1, 8, 8, 2, 3, 2, 8, CONTEXT_LEVELS)?;
    let topo = Topology::grid(3, 3, 2.0, 3.0)?;
    let graph = config.unit_graph()?;
    let assignment = Assignment::balanced_correspondence(&graph, &topo);
    let mut model_rng = SeedRng::with_stream(scenario.seed, 0x0DE1);
    let mut net = DistributedCnn::new(
        config,
        assignment,
        WeightUpdate::Independent,
        &mut model_rng,
    );

    let training: Vec<(Tensor, usize)> = balanced_levels(scenario.training_per_level)
        .map(|level| (level_image(level, front_rng), level))
        .collect();
    let mut train_rng = SeedRng::with_stream(scenario.seed, 0x7124);
    for _ in 0..CNN_EPOCHS {
        net.train_epoch(&training, CNN_LEARNING_RATE, CNN_BATCH, &mut train_rng);
    }

    let holdout: Vec<(Tensor, usize)> = balanced_levels(scenario.training_per_level / 2)
        .map(|level| (level_image(level, front_rng), level))
        .collect();
    let correct = holdout
        .iter()
        .filter(|(image, label)| {
            let logits = net.forward(image);
            let mut best = 0usize;
            for (c, v) in logits.data().iter().enumerate().skip(1) {
                if v.total_cmp(&logits.data()[best]) == std::cmp::Ordering::Greater {
                    best = c;
                }
            }
            best == *label
        })
        .count();
    let calib_accuracy = if holdout.is_empty() {
        0.0
    } else {
        correct as f64 / holdout.len() as f64
    };

    let pool = truth
        .iter()
        .map(|&level| (level_image(level, obs_rng), level))
        .collect();
    Ok(Modality {
        kind: ModalityKind::Cnn,
        calib_accuracy,
        model: ModalityModel::Cnn(Box::new(net)),
        pool,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small(venue: Venue) -> Scenario {
        Scenario::new(venue, 8, 8, 7)
    }

    #[test]
    fn venue_schedules_cover_the_horizon() {
        for venue in Venue::ALL {
            let total: f64 = venue.schedule().iter().map(|&(span, _)| span).sum();
            assert!((total - 1.0).abs() < 1e-12, "{venue:?} spans {total}");
            assert_eq!(venue.level_at(0.0), venue.schedule()[0].1);
            assert!(venue.level_at(0.999) < CONTEXT_LEVELS);
        }
        // Rush hour peaks in the middle of the horizon.
        assert_eq!(Venue::TrainRush.level_at(0.5), 2);
        assert_eq!(Venue::TrainRush.level_at(0.05), 0);
    }

    #[test]
    fn compiled_pools_align_with_the_truth_schedule() {
        let compiled = small(Venue::StadiumEvent).compile().expect("compiles");
        assert_eq!(compiled.truth.len(), 8);
        assert_eq!(compiled.modalities().len(), 4);
        for modality in compiled.modalities() {
            assert_eq!(modality.pool().len(), compiled.truth.len());
            for ((_, label), &level) in modality.pool().iter().zip(&compiled.truth) {
                assert_eq!(*label, level, "{:?} pool misaligned", modality.kind);
            }
            assert!(
                modality.calib_accuracy > 1.0 / CONTEXT_LEVELS as f64,
                "{:?} calibrated below chance: {}",
                modality.kind,
                modality.calib_accuracy
            );
        }
        assert_eq!(
            compiled.horizon(),
            SimDuration::from_millis(500) * compiled.truth.len() as u64
        );
    }

    #[test]
    fn compilation_is_deterministic() {
        let a = small(Venue::TrainRush).compile().expect("compiles");
        let b = small(Venue::TrainRush).compile().expect("compiles");
        assert_eq!(a.truth, b.truth);
        for (ma, mb) in a.modalities().iter().zip(b.modalities()) {
            assert_eq!(ma.calib_accuracy.to_bits(), mb.calib_accuracy.to_bits());
            assert_eq!(ma.pool(), mb.pool());
        }
    }

    #[test]
    fn tenants_deploy_every_modality() {
        let compiled = small(Venue::TrainRush).compile().expect("compiles");
        let tenants = compiled.make_tenants(9).expect("non-empty pools");
        assert_eq!(tenants.len(), 4);
        let names: Vec<&str> = tenants.iter().map(|t| t.spec.name.as_str()).collect();
        assert_eq!(names, ["congestion", "counting", "csi", "cnn"]);
        for tenant in &tenants {
            assert_eq!(tenant.sample(0).1, compiled.truth[0]);
        }
    }
}
