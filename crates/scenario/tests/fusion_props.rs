//! Property coverage for the fusion engine (`zeiot_scenario::fusion`)
//! — the determinism and graceful-fallback arguments E14 rests on.
//!
//! Pinned properties:
//!
//! * **uniform pooling is the exact joint likelihood** — fusing
//!   naive-Bayes modalities under unit weights produces, bit for bit,
//!   the sum of the per-modality class log-likelihoods (the
//!   independent-evidence joint the X2 harness computes by hand);
//! * **zero weight ≡ absence** — a modality with weight exactly `0.0`
//!   leaves the fused scores byte-identical to dropping it from the
//!   evidence list, even when its scores are `−∞` or garbage;
//! * **fusion is total and label-safe** — any non-empty contributing
//!   evidence set yields an argmax inside the shared class space, for
//!   every policy.

use proptest::prelude::*;
use zeiot_core::rng::SeedRng;
use zeiot_scenario::{fuse, Evidence, FusionEngine, FusionPolicy};
use zeiot_sensing::GaussianNb;

const CLASSES: usize = 3;
const DIMS: usize = 2;

/// A deterministic classifier from a seed: three well-spread Gaussian
/// blobs in 2-D.
fn nb_from_seed(seed: u64) -> GaussianNb {
    let mut rng = SeedRng::new(seed);
    let training: Vec<(Vec<f64>, usize)> = (0..CLASSES)
        .flat_map(|class| (0..8).map(move |i| (class, i)).collect::<Vec<_>>())
        .map(|(class, _)| {
            let centre = class as f64 * 4.0;
            (
                (0..DIMS)
                    .map(|_| centre + rng.normal_with(0.0, 1.0))
                    .collect(),
                class,
            )
        })
        .collect();
    GaussianNb::fit(&training, CLASSES).expect("non-empty training")
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Unit-weight fusion of real naive-Bayes modalities is bitwise
    /// the sum of their per-class log-likelihoods.
    #[test]
    fn uniform_weights_pool_to_the_exact_log_likelihood_sum(
        seeds in proptest::collection::vec(0u64..1 << 48, 1..5),
        features in proptest::collection::vec(-8.0f64..16.0, DIMS..DIMS + 1),
    ) {
        let models: Vec<GaussianNb> = seeds.iter().map(|&s| nb_from_seed(s)).collect();
        let evidence: Vec<Evidence> = models
            .iter()
            .map(|nb| Evidence {
                log_scores: nb.log_likelihoods(&features),
                weight: 1.0,
            })
            .collect();
        let fused = fuse(&evidence).expect("all modalities contribute");
        prop_assert_eq!(fused.class_count(), CLASSES);
        for class in 0..CLASSES {
            let by_hand: f64 = models
                .iter()
                .map(|nb| nb.log_likelihood(&features, class))
                .sum();
            prop_assert_eq!(
                fused.log_scores()[class].to_bits(),
                by_hand.to_bits(),
                "class {} diverged: fused {} vs sum {}",
                class,
                fused.log_scores()[class],
                by_hand
            );
        }
    }

    /// A zero-weight modality is byte-identical to an absent one, no
    /// matter what its scores hold — including `−∞` (a class its
    /// classifier never saw) and extreme magnitudes.
    #[test]
    fn zero_weight_modality_is_byte_identical_to_dropping_it(
        scores in proptest::collection::vec(
            proptest::collection::vec(-1e12f64..1e12, CLASSES..CLASSES + 1),
            1..5,
        ),
        weights in proptest::collection::vec(0.01f64..3.0, 1..5),
        dead_slot in 0usize..5,
        dead_is_ninf in proptest::bool::ANY,
    ) {
        let live: Vec<Evidence> = scores
            .iter()
            .zip(weights.iter().cycle())
            .map(|(s, &w)| Evidence { log_scores: s.clone(), weight: w })
            .collect();
        let dead = Evidence {
            log_scores: if dead_is_ninf {
                vec![f64::NEG_INFINITY; CLASSES]
            } else {
                vec![9e99; CLASSES]
            },
            weight: 0.0,
        };
        let mut with_dead = live.clone();
        with_dead.insert(dead_slot % (live.len() + 1), dead);

        let fused_without = fuse(&live).expect("live evidence present");
        let fused_with = fuse(&with_dead).expect("live evidence present");
        for (a, b) in fused_without
            .log_scores()
            .iter()
            .zip(fused_with.log_scores())
        {
            prop_assert_eq!(a.to_bits(), b.to_bits());
        }

        // The engine agrees under every policy, and books the dead
        // modality as a fallback, not an abstention.
        for policy in FusionPolicy::ALL {
            let mut with_engine = FusionEngine::new(policy);
            let mut without_engine = FusionEngine::new(policy);
            prop_assert_eq!(
                with_engine.estimate(&with_dead),
                without_engine.estimate(&live),
                "{} diverged on a zero-weight modality",
                policy.label()
            );
            prop_assert_eq!(with_engine.stats().fallback, 1);
            prop_assert_eq!(with_engine.stats().abstained, 0);
        }
    }

    /// Every policy answers any contributing evidence set with a class
    /// index inside the shared label space.
    #[test]
    fn policies_are_total_over_contributing_evidence(
        scores in proptest::collection::vec(
            proptest::collection::vec(-1e6f64..1e6, CLASSES..CLASSES + 1),
            1..6,
        ),
        weights in proptest::collection::vec(0.0f64..2.0, 1..6),
    ) {
        let evidence: Vec<Evidence> = scores
            .iter()
            .zip(weights.iter().cycle())
            .map(|(s, &w)| Evidence { log_scores: s.clone(), weight: w })
            .collect();
        let contributing = evidence.iter().filter(|e| e.weight > 0.0).count();
        for policy in FusionPolicy::ALL {
            let mut engine = FusionEngine::new(policy);
            match engine.estimate(&evidence) {
                Some(class) => {
                    prop_assert!(contributing > 0);
                    prop_assert!(class < CLASSES, "{} escaped the label space", class);
                }
                None => prop_assert_eq!(contributing, 0),
            }
        }
    }
}
