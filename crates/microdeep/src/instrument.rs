//! Per-node traffic instrumentation for distributed propagation.
//!
//! [`TrafficInstrument`] records what each node's radio actually does
//! during one forward/backward pass — per-node transmit/receive message
//! and byte counters under `microdeep.*` names — into an observability
//! [`Recorder`]. It deliberately does **not** reuse
//! [`CostModel`](crate::cost::CostModel) or
//! [`TrafficLedger`](zeiot_net::traffic::TrafficLedger): it walks the
//! dependency edges and route hops itself, so the integration test that
//! checks measured counters against the static cost model compares two
//! independent implementations of the paper's counting rule.

use crate::assignment::Assignment;
use zeiot_core::id::NodeId;
use zeiot_net::routing::RoutingTable;
use zeiot_net::topology::Topology;
use zeiot_nn::topology::UnitGraph;
use zeiot_obs::{Label, Recorder};

/// Payload bytes of one propagated value (an `f32` activation or error
/// term).
pub const VALUE_BYTES: u64 = 4;

/// Which propagation direction a pass instruments.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Direction {
    /// Producer layer → consumer layer (activations).
    Forward,
    /// Consumer layer → producer layer (error terms).
    Backward,
}

/// Records per-node radio activity of distributed CNN passes.
#[derive(Debug)]
pub struct TrafficInstrument {
    routes: RoutingTable,
}

impl TrafficInstrument {
    /// Builds the instrument (computes all-pairs routes once).
    pub fn new(topo: &Topology) -> Self {
        Self {
            routes: RoutingTable::shortest_paths(topo),
        }
    }

    /// Charges one message (plus its relays) from `src` to `dst` into the
    /// per-node counters. Local delivery is free; unreachable pairs
    /// charge nothing, matching the cost model.
    fn charge(&self, recorder: &mut Recorder, src: NodeId, dst: NodeId) {
        if src == dst {
            return;
        }
        let Some(path) = self.routes.path(src, dst) else {
            return;
        };
        for hop in path.windows(2) {
            recorder.inc("microdeep.tx_messages", Label::node(hop[0]));
            recorder.add("microdeep.tx_bytes", Label::node(hop[0]), VALUE_BYTES);
            recorder.inc("microdeep.rx_messages", Label::node(hop[1]));
            recorder.add("microdeep.rx_bytes", Label::node(hop[1]), VALUE_BYTES);
        }
    }

    fn record_pass(
        &self,
        graph: &UnitGraph,
        assignment: &Assignment,
        direction: Direction,
        recorder: &mut Recorder,
    ) {
        for l in 1..graph.layer_count() {
            for u in 0..graph.units_in_layer(l) {
                let consumer = assignment.host_of(l, u);
                for &d in graph.dependencies(l, u) {
                    let producer = assignment.host_of(l - 1, d);
                    match direction {
                        Direction::Forward => self.charge(recorder, producer, consumer),
                        Direction::Backward => self.charge(recorder, consumer, producer),
                    }
                }
            }
        }
    }

    /// Records the radio activity of one forward pass: one message per
    /// cross-node dependency edge, activations flowing producer →
    /// consumer.
    pub fn record_forward(
        &self,
        graph: &UnitGraph,
        assignment: &Assignment,
        recorder: &mut Recorder,
    ) {
        self.record_pass(graph, assignment, Direction::Forward, recorder);
    }

    /// Records the radio activity of one backward pass: one error term
    /// per cross-node dependency edge, flowing consumer → producer.
    pub fn record_backward(
        &self,
        graph: &UnitGraph,
        assignment: &Assignment,
        recorder: &mut Recorder,
    ) {
        self.record_pass(graph, assignment, Direction::Backward, recorder);
    }

    /// Records one full training step (forward + backward).
    pub fn record_training_step(
        &self,
        graph: &UnitGraph,
        assignment: &Assignment,
        recorder: &mut Recorder,
    ) {
        self.record_forward(graph, assignment, recorder);
        self.record_backward(graph, assignment, recorder);
    }

    /// Records the distribution of per-node forward-pass costs (tx + rx,
    /// the paper's Fig. 10 bar heights) into the
    /// `microdeep.assignment_cost` histogram, and the peak into the
    /// `microdeep.assignment_peak_cost` gauge.
    pub fn record_assignment_cost(
        &self,
        graph: &UnitGraph,
        assignment: &Assignment,
        node_count: usize,
        recorder: &mut Recorder,
    ) {
        let mut scratch = Recorder::new();
        self.record_forward(graph, assignment, &mut scratch);
        let mut peak = 0u64;
        for i in 0..node_count {
            let node = Label::node(NodeId::new(i as u32));
            let cost = scratch.counter_value("microdeep.tx_messages", &node)
                + scratch.counter_value("microdeep.rx_messages", &node);
            peak = peak.max(cost);
            recorder.observe("microdeep.assignment_cost", Label::Global, cost as f64);
        }
        recorder.set_gauge("microdeep.assignment_peak_cost", Label::Global, peak as f64);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::CnnConfig;
    use crate::cost::CostModel;

    fn setup() -> (UnitGraph, Topology) {
        let config = CnnConfig::new(1, 8, 8, 2, 3, 2, 8, 2).unwrap();
        (
            config.unit_graph().unwrap(),
            Topology::grid(3, 3, 2.0, 3.0).unwrap(),
        )
    }

    #[test]
    fn forward_counters_match_the_static_cost_model() {
        let (graph, topo) = setup();
        let assignment = Assignment::balanced_correspondence(&graph, &topo);
        let instrument = TrafficInstrument::new(&topo);
        let mut rec = Recorder::new();
        instrument.record_forward(&graph, &assignment, &mut rec);

        let ledger = CostModel::new(&topo).forward_cost(&graph, &assignment);
        for i in 0..topo.len() {
            let node = NodeId::new(i as u32);
            assert_eq!(
                rec.counter_value("microdeep.tx_messages", &Label::node(node)),
                ledger.tx(node),
                "tx mismatch at {node}"
            );
            assert_eq!(
                rec.counter_value("microdeep.rx_messages", &Label::node(node)),
                ledger.rx(node),
                "rx mismatch at {node}"
            );
        }
    }

    #[test]
    fn bytes_are_messages_times_value_size() {
        let (graph, topo) = setup();
        let assignment = Assignment::centralized(&graph, &topo);
        let instrument = TrafficInstrument::new(&topo);
        let mut rec = Recorder::new();
        instrument.record_training_step(&graph, &assignment, &mut rec);
        for i in 0..topo.len() {
            let node = Label::node(NodeId::new(i as u32));
            assert_eq!(
                rec.counter_value("microdeep.tx_bytes", &node),
                rec.counter_value("microdeep.tx_messages", &node) * VALUE_BYTES
            );
        }
    }

    #[test]
    fn training_step_doubles_a_symmetric_pass() {
        // Total forward and backward traffic are equal (hop distances are
        // symmetric), so a full step totals twice the forward pass.
        let (graph, topo) = setup();
        let assignment = Assignment::balanced_correspondence(&graph, &topo);
        let instrument = TrafficInstrument::new(&topo);
        let mut fwd = Recorder::new();
        instrument.record_forward(&graph, &assignment, &mut fwd);
        let mut step = Recorder::new();
        instrument.record_training_step(&graph, &assignment, &mut step);
        let total = |r: &Recorder, name: &str| -> u64 {
            r.counters()
                .filter(|(n, _, _)| *n == name)
                .map(|(_, _, v)| v)
                .sum()
        };
        assert_eq!(
            total(&step, "microdeep.tx_messages"),
            2 * total(&fwd, "microdeep.tx_messages")
        );
    }

    #[test]
    fn assignment_cost_histogram_covers_every_node() {
        let (graph, topo) = setup();
        let assignment = Assignment::balanced_correspondence(&graph, &topo);
        let instrument = TrafficInstrument::new(&topo);
        let mut rec = Recorder::new();
        instrument.record_assignment_cost(&graph, &assignment, topo.len(), &mut rec);
        let hist = rec
            .histogram_ref("microdeep.assignment_cost", &Label::Global)
            .unwrap();
        assert_eq!(hist.len(), topo.len());
        let peak = rec
            .gauge("microdeep.assignment_peak_cost", &Label::Global)
            .unwrap();
        let ledger = CostModel::new(&topo).forward_cost(&graph, &assignment);
        assert_eq!(peak as u64, ledger.max_cost());
    }
}
