//! Resilience to node failures.
//!
//! Paper §V: "A part of tiny IoT devices may be broken. The development
//! of resilient distributed machine learning mechanisms in the
//! environments containing such broken IoT devices is also important."
//!
//! This module re-assigns units orphaned by node failures to surviving
//! neighbours (respecting the balance cap) and quantifies the cost and
//! coverage consequences.

use crate::assignment::Assignment;
use zeiot_core::id::NodeId;
use zeiot_net::routing::RoutingTable;
use zeiot_net::topology::Topology;
use zeiot_nn::topology::UnitGraph;

/// Outcome of a failure-recovery pass.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RecoveryReport {
    /// Units that had to move.
    pub moved_units: usize,
    /// Units that could not be re-hosted (no reachable survivor with
    /// capacity).
    pub stranded_units: usize,
    /// Input (sensor) units lost with their nodes — their readings are
    /// simply gone.
    pub lost_inputs: usize,
}

impl RecoveryReport {
    /// Whether every computational unit found a new home.
    pub fn fully_recovered(&self) -> bool {
        self.stranded_units == 0
    }
}

/// Re-assigns units hosted on `failed` nodes to the nearest surviving
/// node with spare capacity (cap = ⌈units / surviving nodes⌉); input
/// units on failed sensors are counted as lost.
///
/// Returns the repaired assignment and a report.
///
/// # Panics
///
/// Panics if every node failed.
pub fn reassign_after_failures(
    graph: &UnitGraph,
    topo: &Topology,
    assignment: &Assignment,
    failed: &[NodeId],
) -> (Assignment, RecoveryReport) {
    let surviving: Vec<NodeId> = topo.node_ids().filter(|n| !failed.contains(n)).collect();
    assert!(!surviving.is_empty(), "all nodes failed");

    // Routes over the degraded topology (failed nodes cannot relay).
    let degraded = topo.without_nodes(failed);
    let routes = RoutingTable::shortest_paths(&degraded);
    let cap = graph.total_units().div_ceil(surviving.len());

    let mut repaired = assignment.clone();
    let mut load = vec![0usize; topo.len()];
    for l in 1..graph.layer_count() {
        for u in 0..graph.units_in_layer(l) {
            let h = assignment.host_of(l, u);
            if !failed.contains(&h) {
                load[h.index()] += 1;
            }
        }
    }

    let mut moved = 0usize;
    let mut stranded = 0usize;
    for l in 1..graph.layer_count() {
        for u in 0..graph.units_in_layer(l) {
            let host = assignment.host_of(l, u);
            if !failed.contains(&host) {
                continue;
            }
            // Nearest surviving node (by hops in the degraded mesh from
            // any of this unit's producer hosts — fall back to id order).
            let candidate = surviving
                .iter()
                .filter(|n| load[n.index()] < cap)
                .min_by_key(|n| {
                    let d = graph
                        .dependencies(l, u)
                        .iter()
                        .map(|&dep| {
                            let src = repaired.host_of(l - 1, dep);
                            routes.hop_distance(src, **n).unwrap_or(1_000)
                        })
                        .sum::<usize>();
                    (d, n.raw())
                })
                .copied();
            match candidate {
                Some(new_host) => {
                    repaired.set_host(l, u, new_host);
                    load[new_host.index()] += 1;
                    moved += 1;
                }
                None => stranded += 1,
            }
        }
    }

    let lost_inputs = (0..graph.units_in_layer(0))
        .filter(|&i| failed.contains(&assignment.host_of(0, i)))
        .count();

    (
        repaired,
        RecoveryReport {
            moved_units: moved,
            stranded_units: stranded,
            lost_inputs,
        },
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::CnnConfig;

    fn setup() -> (UnitGraph, Topology, Assignment) {
        let config = CnnConfig::new(1, 8, 8, 4, 3, 2, 16, 2).unwrap();
        let graph = config.unit_graph().unwrap();
        let topo = Topology::grid(4, 4, 2.0, 3.0).unwrap();
        let assignment = Assignment::balanced_correspondence(&graph, &topo);
        (graph, topo, assignment)
    }

    #[test]
    fn no_failures_is_identity() {
        let (graph, topo, assignment) = setup();
        let (repaired, report) = reassign_after_failures(&graph, &topo, &assignment, &[]);
        assert_eq!(repaired, assignment);
        assert_eq!(report.moved_units, 0);
        assert_eq!(report.stranded_units, 0);
        assert_eq!(report.lost_inputs, 0);
        assert!(report.fully_recovered());
    }

    #[test]
    fn single_failure_moves_its_units() {
        let (graph, topo, assignment) = setup();
        let victim = NodeId::new(5);
        let victim_units: usize = (1..graph.layer_count())
            .map(|l| {
                (0..graph.units_in_layer(l))
                    .filter(|&u| assignment.host_of(l, u) == victim)
                    .count()
            })
            .sum();
        assert!(victim_units > 0, "victim hosted nothing — bad test setup");
        let (repaired, report) = reassign_after_failures(&graph, &topo, &assignment, &[victim]);
        assert_eq!(report.moved_units, victim_units);
        assert!(report.fully_recovered());
        // No unit remains on the victim.
        for l in 1..graph.layer_count() {
            for u in 0..graph.units_in_layer(l) {
                assert_ne!(repaired.host_of(l, u), victim);
            }
        }
    }

    #[test]
    fn repaired_assignment_respects_survivor_cap() {
        let (graph, topo, assignment) = setup();
        let failed = vec![NodeId::new(0), NodeId::new(1), NodeId::new(2)];
        let (repaired, report) = reassign_after_failures(&graph, &topo, &assignment, &failed);
        assert!(report.fully_recovered());
        let cap = graph.total_units().div_ceil(topo.len() - failed.len());
        let loads = repaired.units_per_node();
        for f in &failed {
            assert_eq!(loads[f.index()], 0);
        }
        for n in topo.node_ids() {
            if !failed.contains(&n) {
                assert!(
                    loads[n.index()] <= cap,
                    "node {n} over cap: {}",
                    loads[n.index()]
                );
            }
        }
    }

    #[test]
    fn lost_inputs_counted() {
        let (graph, topo, assignment) = setup();
        let victim = NodeId::new(0);
        let expected: usize = (0..graph.units_in_layer(0))
            .filter(|&i| assignment.host_of(0, i) == victim)
            .count();
        let (_, report) = reassign_after_failures(&graph, &topo, &assignment, &[victim]);
        assert_eq!(report.lost_inputs, expected);
        assert!(expected > 0);
    }

    #[test]
    #[should_panic]
    fn total_failure_panics() {
        let (graph, topo, assignment) = setup();
        let all: Vec<NodeId> = topo.node_ids().collect();
        let _ = reassign_after_failures(&graph, &topo, &assignment, &all);
    }
}
