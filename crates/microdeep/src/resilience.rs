//! Resilience to node failures — the static, offline recovery pass.
//!
//! Paper §V: "A part of tiny IoT devices may be broken. The development
//! of resilient distributed machine learning mechanisms in the
//! environments containing such broken IoT devices is also important."
//!
//! This module predates the runtime re-placement engine and survives as
//! a thin wrapper: [`reassign_after_failures`] is now implemented as an
//! unbounded [`crate::replace::plan_incremental`] pass (one a-priori
//! epoch, no fabric, no migration budget). New code should use
//! [`crate::replace`] directly — it adds liveness polling, bounded
//! budgets, state handoff over the lossy fabric, and `replace.*`
//! observability.

use crate::assignment::Assignment;
use crate::cost::CostModel;
use crate::replace::plan_incremental;
use zeiot_core::id::NodeId;
use zeiot_net::topology::Topology;
use zeiot_nn::topology::UnitGraph;

/// Outcome of a failure-recovery pass.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RecoveryReport {
    /// Units that had to move.
    pub moved_units: usize,
    /// Units that could not be re-hosted (no reachable survivor with
    /// capacity).
    pub stranded_units: usize,
    /// Input (sensor) units lost with their nodes — their readings are
    /// simply gone.
    pub lost_inputs: usize,
    /// Total forward-pass traffic of the repaired assignment over the
    /// degraded mesh minus the original assignment's over the healthy
    /// mesh: the recurring per-pass cost of routing around the hole
    /// (positive = recovery made every inference more expensive;
    /// one-time state-handoff traffic is the runtime engine's ledger,
    /// not this one).
    pub traffic_delta: i64,
}

impl RecoveryReport {
    /// Whether every computational unit found a new home.
    pub fn fully_recovered(&self) -> bool {
        self.stranded_units == 0
    }
}

/// Re-assigns units hosted on `failed` nodes to the surviving node with
/// spare capacity (cap = ⌈units / surviving nodes⌉) nearest the unit's
/// producers and consumers; input units on failed sensors are counted
/// as lost.
///
/// Returns the repaired assignment and a report.
///
/// # Panics
///
/// Panics if every node failed.
#[deprecated(
    since = "0.1.0",
    note = "use `replace::plan_incremental` / `ReplacementEngine` — the runtime \
            re-placement engine with liveness polling, migration budgets and \
            fabric-charged state handoff"
)]
pub fn reassign_after_failures(
    graph: &UnitGraph,
    topo: &Topology,
    assignment: &Assignment,
    failed: &[NodeId],
) -> (Assignment, RecoveryReport) {
    let (repaired, outcome) = plan_incremental(graph, topo, assignment, failed, usize::MAX);

    let degraded = topo.without_nodes(failed);
    let before = CostModel::new(topo)
        .forward_cost(graph, assignment)
        .total_cost();
    let after = CostModel::new(&degraded)
        .forward_cost(graph, &repaired)
        .total_cost();
    let traffic_delta = after as i64 - before as i64;

    (
        repaired,
        RecoveryReport {
            moved_units: outcome.migrations.len(),
            stranded_units: outcome.stranded,
            lost_inputs: outcome.lost_inputs,
            traffic_delta,
        },
    )
}

#[cfg(test)]
#[allow(deprecated)] // exercising the deprecated wrapper is the point
mod tests {
    use super::*;
    use crate::config::CnnConfig;

    fn setup() -> (UnitGraph, Topology, Assignment) {
        let config = CnnConfig::new(1, 8, 8, 4, 3, 2, 16, 2).unwrap();
        let graph = config.unit_graph().unwrap();
        let topo = Topology::grid(4, 4, 2.0, 3.0).unwrap();
        let assignment = Assignment::balanced_correspondence(&graph, &topo);
        (graph, topo, assignment)
    }

    #[test]
    fn no_failures_is_identity() {
        let (graph, topo, assignment) = setup();
        let (repaired, report) = reassign_after_failures(&graph, &topo, &assignment, &[]);
        assert_eq!(repaired, assignment);
        assert_eq!(report.moved_units, 0);
        assert_eq!(report.stranded_units, 0);
        assert_eq!(report.lost_inputs, 0);
        assert_eq!(report.traffic_delta, 0);
        assert!(report.fully_recovered());
    }

    #[test]
    fn single_failure_moves_its_units() {
        let (graph, topo, assignment) = setup();
        let victim = NodeId::new(5);
        let victim_units: usize = (1..graph.layer_count())
            .map(|l| {
                (0..graph.units_in_layer(l))
                    .filter(|&u| assignment.host_of(l, u) == victim)
                    .count()
            })
            .sum();
        assert!(victim_units > 0, "victim hosted nothing — bad test setup");
        let (repaired, report) = reassign_after_failures(&graph, &topo, &assignment, &[victim]);
        assert_eq!(report.moved_units, victim_units);
        assert!(report.fully_recovered());
        // No unit remains on the victim.
        for l in 1..graph.layer_count() {
            for u in 0..graph.units_in_layer(l) {
                assert_ne!(repaired.host_of(l, u), victim);
            }
        }
        // Re-routing around a hole in an equalized placement costs
        // traffic; the delta must be reported and finite.
        assert_ne!(report.traffic_delta, 0);
    }

    #[test]
    fn repaired_assignment_respects_survivor_cap() {
        let (graph, topo, assignment) = setup();
        let failed = vec![NodeId::new(0), NodeId::new(1), NodeId::new(2)];
        let (repaired, report) = reassign_after_failures(&graph, &topo, &assignment, &failed);
        assert!(report.fully_recovered());
        let cap = graph.total_units().div_ceil(topo.len() - failed.len());
        let loads = repaired.units_per_node();
        for f in &failed {
            assert_eq!(loads[f.index()], 0);
        }
        for n in topo.node_ids() {
            if !failed.contains(&n) {
                assert!(
                    loads[n.index()] <= cap,
                    "node {n} over cap: {}",
                    loads[n.index()]
                );
            }
        }
    }

    #[test]
    fn lost_inputs_counted() {
        let (graph, topo, assignment) = setup();
        let victim = NodeId::new(0);
        let expected: usize = (0..graph.units_in_layer(0))
            .filter(|&i| assignment.host_of(0, i) == victim)
            .count();
        let (_, report) = reassign_after_failures(&graph, &topo, &assignment, &[victim]);
        assert_eq!(report.lost_inputs, expected);
        assert!(expected > 0);
    }

    #[test]
    #[should_panic]
    fn total_failure_panics() {
        let (graph, topo, assignment) = setup();
        let all: Vec<NodeId> = topo.node_ids().collect();
        let _ = reassign_after_failures(&graph, &topo, &assignment, &all);
    }
}
