//! Distributed training semantics.
//!
//! MicroDeep executes the canonical CNN *in place* on the mesh. Dense
//! units own their weight rows, so their updates are local and exact. The
//! convolution is different: its kernel is shared by every spatial unit,
//! but those units live on many nodes — keeping one shared kernel would
//! require gradient aggregation traffic every step. MicroDeep instead
//! gives each hosting node a *replica* of the kernel and lets it update
//! the replica **independently** from the gradients of its own units only
//! (paper §IV.C: "Weights of units are updated independently by each
//! sensor node to avoid communication overhead, sacrificing some
//! accuracy").
//!
//! [`DistributedCnn`] implements both semantics:
//!
//! * [`WeightUpdate::Synchronized`] — replica gradients are summed and a
//!   common update applied everywhere; numerically identical to the
//!   centralized baseline (used to verify the machinery and as the
//!   ablation's upper bound);
//! * [`WeightUpdate::Independent`] — each replica applies only its own
//!   accumulated gradient; replicas drift apart and accuracy typically
//!   lands a couple of points below the baseline, with zero
//!   weight-synchronization traffic.

use crate::assignment::Assignment;
use crate::config::CnnConfig;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use zeiot_core::id::NodeId;
use zeiot_core::rng::SeedRng;
use zeiot_nn::loss::cross_entropy;
use zeiot_nn::tensor::Tensor;
use zeiot_obs::{Label, Recorder};

/// How convolution kernel replicas are updated.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum WeightUpdate {
    /// Sum replica gradients, apply one common update (exact SGD).
    Synchronized,
    /// Each node updates its kernel replica from local gradients only —
    /// replicas drift apart.
    Independent,
    /// Every conv unit owns its kernel (locally-connected layer): weight
    /// sharing is dropped so each unit's update is complete with zero
    /// communication — the most faithful reading of the paper's "weights
    /// of units are updated independently by each sensor node".
    PerUnit,
}

#[derive(Debug, Clone, Serialize, Deserialize)]
pub(crate) struct UnitKernels {
    /// `[units, in_channels, k, k]` — one kernel per conv output unit.
    pub(crate) weights: Tensor,
    /// `[units]`.
    pub(crate) bias: Tensor,
    pub(crate) grad_weights: Tensor,
    pub(crate) grad_bias: Tensor,
}

#[derive(Debug, Clone, Serialize, Deserialize)]
pub(crate) struct ConvReplica {
    pub(crate) weights: Tensor, // [oc, ic, k, k]
    pub(crate) bias: Tensor,    // [oc]
    pub(crate) grad_weights: Tensor,
    pub(crate) grad_bias: Tensor,
    /// Number of conv units hosted by this replica's node.
    pub(crate) units: usize,
}

#[derive(Debug, Clone, Serialize, Deserialize)]
pub(crate) struct DenseParams {
    pub(crate) weights: Tensor, // [out, in]
    pub(crate) bias: Tensor,
    pub(crate) grad_weights: Tensor,
    pub(crate) grad_bias: Tensor,
}

impl DenseParams {
    fn new(in_len: usize, out_len: usize, rng: &mut SeedRng) -> Self {
        let scale = (6.0 / in_len as f32).sqrt();
        Self {
            weights: Tensor::uniform(vec![out_len, in_len], scale, rng),
            bias: Tensor::zeros(vec![out_len]),
            grad_weights: Tensor::zeros(vec![out_len, in_len]),
            grad_bias: Tensor::zeros(vec![out_len]),
        }
    }

    fn forward(&self, x: &[f32]) -> Vec<f32> {
        let out_len = self.bias.len();
        let in_len = x.len();
        (0..out_len)
            .map(|o| {
                let row = &self.weights.data()[o * in_len..(o + 1) * in_len];
                self.bias.data()[o] + row.iter().zip(x).map(|(w, v)| w * v).sum::<f32>()
            })
            .collect()
    }

    fn backward(&mut self, x: &[f32], grad_out: &[f32]) -> Vec<f32> {
        let in_len = x.len();
        let mut grad_in = vec![0.0f32; in_len];
        for (o, &g) in grad_out.iter().enumerate() {
            if g == 0.0 {
                continue;
            }
            self.grad_bias.data_mut()[o] += g;
            let row_start = o * in_len;
            for i in 0..in_len {
                self.grad_weights.data_mut()[row_start + i] += g * x[i];
                grad_in[i] += g * self.weights.data()[row_start + i];
            }
        }
        grad_in
    }

    fn apply(&mut self, lr: f32) {
        self.weights.add_scaled(&self.grad_weights, -lr);
        self.bias.add_scaled(&self.grad_bias, -lr);
        self.grad_weights.fill_zero();
        self.grad_bias.fill_zero();
    }
}

/// The canonical CNN executed with per-node convolution replicas.
///
/// # Example
///
/// ```
/// # fn main() -> Result<(), zeiot_core::ConfigError> {
/// use zeiot_microdeep::{Assignment, CnnConfig, DistributedCnn, WeightUpdate};
/// use zeiot_net::Topology;
/// use zeiot_core::rng::SeedRng;
/// use zeiot_nn::tensor::Tensor;
///
/// let config = CnnConfig::new(1, 8, 8, 2, 3, 2, 8, 2)?;
/// let topo = Topology::grid(3, 3, 2.0, 3.0)?;
/// let graph = config.unit_graph()?;
/// let assignment = Assignment::balanced_correspondence(&graph, &topo);
/// let mut rng = SeedRng::new(1);
/// let mut net = DistributedCnn::new(config, assignment, WeightUpdate::Independent, &mut rng);
/// let logits = net.forward(&Tensor::zeros(vec![1, 8, 8]));
/// assert_eq!(logits.len(), 2);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct DistributedCnn {
    pub(crate) config: CnnConfig,
    pub(crate) update: WeightUpdate,
    /// The full placement (inputs pinned to sensors, units to hosts) —
    /// what the lossy execution path routes messages against.
    pub(crate) assignment: Assignment,
    /// Host node of each conv output unit (layer-1 unit order).
    pub(crate) conv_unit_host: Vec<NodeId>,
    pub(crate) replicas: BTreeMap<NodeId, ConvReplica>,
    pub(crate) per_unit: Option<UnitKernels>,
    pub(crate) dense1: DenseParams,
    pub(crate) dense2: DenseParams,
    // Forward caches.
    pub(crate) last_input: Option<Tensor>,
    pub(crate) conv_pre_relu: Vec<f32>,
    pub(crate) pool_out: Vec<f32>,
    pub(crate) pool_argmax: Vec<usize>,
    pub(crate) hidden_pre_relu: Vec<f32>,
    pub(crate) hidden_out: Vec<f32>,
}

impl DistributedCnn {
    /// Builds a distributed CNN over `assignment`. All replicas start
    /// from one common initialization (the initial broadcast every
    /// distributed learner performs).
    ///
    /// # Panics
    ///
    /// Panics if the assignment's layer sizes disagree with the config.
    pub fn new(
        config: CnnConfig,
        assignment: Assignment,
        update: WeightUpdate,
        rng: &mut SeedRng,
    ) -> Self {
        let graph = config.unit_graph().expect("validated config");
        assert_eq!(
            assignment.layer_count(),
            graph.layer_count(),
            "assignment does not match config"
        );
        let conv_units = graph.units_in_layer(1);
        let conv_unit_host: Vec<NodeId> =
            (0..conv_units).map(|u| assignment.host_of(1, u)).collect();

        // Common initial parameters.
        let (oc, ic, k) = (
            config.conv_channels(),
            config.in_channels(),
            config.kernel(),
        );
        let fan_in = (ic * k * k) as f32;
        let init_w = Tensor::uniform(vec![oc, ic, k, k], (6.0 / fan_in).sqrt(), rng);
        let init_b = Tensor::zeros(vec![oc]);

        let mut replicas = BTreeMap::new();
        for host in &conv_unit_host {
            replicas
                .entry(*host)
                .or_insert_with(|| ConvReplica {
                    weights: init_w.clone(),
                    bias: init_b.clone(),
                    grad_weights: Tensor::zeros(vec![oc, ic, k, k]),
                    grad_bias: Tensor::zeros(vec![oc]),
                    units: 0,
                })
                .units += 1;
        }

        // Per-unit kernels start from the shared initialization of their
        // output channel (the one-time broadcast every node receives).
        let per_unit = (update == WeightUpdate::PerUnit).then(|| {
            let per_ch = conv_units / oc;
            let mut weights = Tensor::zeros(vec![conv_units, ic, k, k]);
            let kernel_len = ic * k * k;
            for unit in 0..conv_units {
                let o = unit / per_ch;
                let src = &init_w.data()[o * kernel_len..(o + 1) * kernel_len];
                weights.data_mut()[unit * kernel_len..(unit + 1) * kernel_len].copy_from_slice(src);
            }
            UnitKernels {
                weights,
                bias: Tensor::zeros(vec![conv_units]),
                grad_weights: Tensor::zeros(vec![conv_units, ic, k, k]),
                grad_bias: Tensor::zeros(vec![conv_units]),
            }
        });

        let dense1 = DenseParams::new(config.feature_len(), config.hidden(), rng);
        let dense2 = DenseParams::new(config.hidden(), config.classes(), rng);
        Self {
            config,
            update,
            assignment,
            conv_unit_host,
            replicas,
            per_unit,
            dense1,
            dense2,
            last_input: None,
            conv_pre_relu: Vec::new(),
            pool_out: Vec::new(),
            pool_argmax: Vec::new(),
            hidden_pre_relu: Vec::new(),
            hidden_out: Vec::new(),
        }
    }

    /// The configuration this network was built from.
    pub fn config(&self) -> &CnnConfig {
        &self.config
    }

    /// Serializes the full model (placement + every node's weights) to
    /// JSON — what a gateway would persist so a re-deployed mesh can
    /// resume without retraining.
    ///
    /// # Errors
    ///
    /// Returns an error string if serialization fails (it cannot for
    /// well-formed models).
    pub fn to_json(&self) -> Result<String, String> {
        serde_json::to_string(self).map_err(|e| e.to_string())
    }

    /// Restores a model from [`DistributedCnn::to_json`] output.
    ///
    /// The restored model is validated against its own config's unit
    /// graph before being returned: a persisted placement or replica set
    /// that no longer matches the config (a config edit, a truncated
    /// file, a hand-patched deployment) is rejected here instead of
    /// panicking deep inside [`DistributedCnn::forward`].
    ///
    /// # Errors
    ///
    /// Returns an error string on malformed input or on a model whose
    /// placement, replicas or parameter shapes are inconsistent with its
    /// config.
    pub fn from_json(json: &str) -> Result<Self, String> {
        let model: Self = serde_json::from_str(json).map_err(|e| e.to_string())?;
        model.validate()?;
        Ok(model)
    }

    /// Checks internal consistency: the assignment matches the config's
    /// unit graph, every conv unit has a hosting replica, and all
    /// parameter tensors have the shapes the config dictates.
    pub(crate) fn validate(&self) -> Result<(), String> {
        let c = &self.config;
        let graph = c.unit_graph().map_err(|e| format!("invalid config: {e}"))?;
        if self.assignment.layer_count() != graph.layer_count() {
            return Err(format!(
                "assignment has {} layers, config's unit graph has {}",
                self.assignment.layer_count(),
                graph.layer_count()
            ));
        }
        if self.assignment.input_count() != graph.units_in_layer(0) {
            return Err(format!(
                "assignment pins {} input units, config has {}",
                self.assignment.input_count(),
                graph.units_in_layer(0)
            ));
        }
        for (i, &size) in self.assignment.layer_sizes().iter().enumerate() {
            let expected = graph.units_in_layer(i + 1);
            if size != expected {
                return Err(format!(
                    "assignment layer {} has {size} units, config needs {expected}",
                    i + 1
                ));
            }
        }
        let conv_units = graph.units_in_layer(1);
        if self.conv_unit_host.len() != conv_units {
            return Err(format!(
                "conv host table has {} entries, config has {conv_units} conv units",
                self.conv_unit_host.len()
            ));
        }
        let mut expected_units: BTreeMap<NodeId, usize> = BTreeMap::new();
        for (u, &host) in self.conv_unit_host.iter().enumerate() {
            if host != self.assignment.host_of(1, u) {
                return Err(format!(
                    "conv unit {u} hosted on {host:?} but assigned to {:?}",
                    self.assignment.host_of(1, u)
                ));
            }
            *expected_units.entry(host).or_default() += 1;
        }
        if !self.replicas.keys().eq(expected_units.keys()) {
            return Err(format!(
                "replica nodes {:?} disagree with hosting nodes {:?}",
                self.replicas.keys().collect::<Vec<_>>(),
                expected_units.keys().collect::<Vec<_>>()
            ));
        }
        let (oc, ic, k) = (c.conv_channels(), c.in_channels(), c.kernel());
        for (node, rep) in &self.replicas {
            if rep.units != expected_units[node] {
                return Err(format!(
                    "replica on {node:?} claims {} units, hosts {}",
                    rep.units, expected_units[node]
                ));
            }
            if rep.weights.shape() != [oc, ic, k, k] || rep.bias.len() != oc {
                return Err(format!("replica on {node:?} has wrong kernel shape"));
            }
            if rep.grad_weights.shape() != rep.weights.shape()
                || rep.grad_bias.len() != rep.bias.len()
            {
                return Err(format!("replica on {node:?} has wrong gradient shape"));
            }
        }
        if (self.update == WeightUpdate::PerUnit) != self.per_unit.is_some() {
            return Err(format!(
                "per-unit kernels present: {}, update mode: {:?}",
                self.per_unit.is_some(),
                self.update
            ));
        }
        if let Some(pk) = &self.per_unit {
            if pk.weights.shape() != [conv_units, ic, k, k] || pk.bias.len() != conv_units {
                return Err("per-unit kernel table has wrong shape".to_string());
            }
        }
        if self.dense1.weights.shape() != [c.hidden(), c.feature_len()]
            || self.dense1.bias.len() != c.hidden()
        {
            return Err("dense1 parameters have wrong shape".to_string());
        }
        if self.dense2.weights.shape() != [c.classes(), c.hidden()]
            || self.dense2.bias.len() != c.classes()
        {
            return Err("dense2 parameters have wrong shape".to_string());
        }
        Ok(())
    }

    /// The placement this network executes over.
    pub fn assignment(&self) -> &Assignment {
        &self.assignment
    }

    /// Number of convolution replicas (nodes hosting conv units).
    pub fn replica_count(&self) -> usize {
        self.replicas.len()
    }

    /// Mean pairwise L2 distance between replica kernels — 0 under
    /// synchronized updates, growing under independent updates. In
    /// PerUnit mode, the mean L2 distance of each unit's kernel to its
    /// output channel's mean kernel (how far weight sharing has been
    /// abandoned).
    pub fn replica_divergence(&self) -> f64 {
        if let Some(pk) = &self.per_unit {
            let units = pk.bias.len();
            let oc = self.config.conv_channels();
            let per_ch = units / oc;
            let kernel_len = pk.weights.len() / units;
            let mut total = 0.0f64;
            for o in 0..oc {
                let mut mean = vec![0.0f64; kernel_len];
                for u in 0..per_ch {
                    let unit = o * per_ch + u;
                    let w = &pk.weights.data()[unit * kernel_len..(unit + 1) * kernel_len];
                    for (m, &x) in mean.iter_mut().zip(w) {
                        *m += x as f64 / per_ch as f64;
                    }
                }
                for u in 0..per_ch {
                    let unit = o * per_ch + u;
                    let w = &pk.weights.data()[unit * kernel_len..(unit + 1) * kernel_len];
                    let d: f64 = w
                        .iter()
                        .zip(&mean)
                        .map(|(&x, &m)| (x as f64 - m).powi(2))
                        .sum();
                    total += d.sqrt();
                }
            }
            return total / units as f64;
        }
        let replicas: Vec<&ConvReplica> = self.replicas.values().collect();
        if replicas.len() < 2 {
            return 0.0;
        }
        let mut total = 0.0;
        let mut pairs = 0usize;
        for i in 0..replicas.len() {
            for j in (i + 1)..replicas.len() {
                let d: f32 = replicas[i]
                    .weights
                    .data()
                    .iter()
                    .zip(replicas[j].weights.data())
                    .map(|(a, b)| (a - b) * (a - b))
                    .sum();
                total += (d as f64).sqrt();
                pairs += 1;
            }
        }
        total / pairs as f64
    }

    /// Forward pass; numerically identical to the centralized baseline
    /// whenever all replicas are equal.
    pub fn forward(&mut self, input: &Tensor) -> Tensor {
        let c = &self.config;
        assert_eq!(
            input.shape(),
            &[c.in_channels(), c.in_height(), c.in_width()],
            "input shape mismatch"
        );
        let (oh, ow) = c.conv_dims();
        let (ph, pw) = c.pool_dims();
        let oc = c.conv_channels();
        let k = c.kernel();
        let (ih, iw) = (c.in_height(), c.in_width());

        // Convolution with per-node replicas or per-unit kernels, ReLU
        // fused afterwards.
        let kernel_len = c.in_channels() * k * k;
        let mut conv = vec![0.0f32; oc * oh * ow];
        for o in 0..oc {
            for oy in 0..oh {
                for ox in 0..ow {
                    let unit = o * oh * ow + oy * ow + ox;
                    let (weights, bias): (&[f32], f32) = match &self.per_unit {
                        Some(pk) => (
                            &pk.weights.data()[unit * kernel_len..(unit + 1) * kernel_len],
                            pk.bias.data()[unit],
                        ),
                        None => {
                            let rep = &self.replicas[&self.conv_unit_host[unit]];
                            (
                                &rep.weights.data()[o * kernel_len..(o + 1) * kernel_len],
                                rep.bias.data()[o],
                            )
                        }
                    };
                    let mut acc = bias;
                    let mut w_off = 0;
                    for icn in 0..c.in_channels() {
                        for ky in 0..k {
                            for kx in 0..k {
                                let iy = oy + ky;
                                let ix = ox + kx;
                                acc += weights[w_off] * input.data()[icn * ih * iw + iy * iw + ix];
                                w_off += 1;
                            }
                        }
                    }
                    conv[unit] = acc;
                }
            }
        }
        self.conv_pre_relu = conv.clone();
        let relu: Vec<f32> = conv.iter().map(|&v| v.max(0.0)).collect();

        // Max pooling.
        let mut pooled = vec![0.0f32; oc * ph * pw];
        let mut argmax = vec![0usize; oc * ph * pw];
        let p = c.pool();
        for ch in 0..oc {
            for py in 0..ph {
                for px in 0..pw {
                    let mut best = f32::NEG_INFINITY;
                    let mut best_off = 0;
                    for ky in 0..p {
                        for kx in 0..p {
                            let y = py * p + ky;
                            let x = px * p + kx;
                            let off = ch * oh * ow + y * ow + x;
                            if relu[off] > best {
                                best = relu[off];
                                best_off = off;
                            }
                        }
                    }
                    pooled[ch * ph * pw + py * pw + px] = best;
                    argmax[ch * ph * pw + py * pw + px] = best_off;
                }
            }
        }
        self.pool_out = pooled.clone();
        self.pool_argmax = argmax;

        // Dense 1 + ReLU, dense 2.
        let hidden_pre = self.dense1.forward(&pooled);
        self.hidden_pre_relu = hidden_pre.clone();
        let hidden: Vec<f32> = hidden_pre.iter().map(|&v| v.max(0.0)).collect();
        self.hidden_out = hidden.clone();
        let logits = self.dense2.forward(&hidden);
        self.last_input = Some(input.clone());
        Tensor::from_vec(vec![c.classes()], logits).expect("logit shape")
    }

    /// Predicted class for an input.
    pub fn predict(&mut self, input: &Tensor) -> usize {
        self.forward(input).argmax()
    }

    /// Backward pass from a loss gradient on the logits, accumulating
    /// per-replica convolution gradients.
    ///
    /// # Panics
    ///
    /// Panics if called before [`DistributedCnn::forward`].
    pub fn backward(&mut self, grad_logits: &Tensor) {
        let input = self
            .last_input
            .as_ref()
            .expect("backward before forward")
            .clone();
        let c = &self.config;
        let (oh, ow) = c.conv_dims();
        let oc = c.conv_channels();
        let k = c.kernel();
        let (ih, iw) = (c.in_height(), c.in_width());

        // Dense 2 ← logits.
        let hidden_out = self.hidden_out.clone();
        let grad_hidden = self.dense2.backward(&hidden_out, grad_logits.data());
        // ReLU on hidden.
        let grad_hidden_pre: Vec<f32> = grad_hidden
            .iter()
            .zip(&self.hidden_pre_relu)
            .map(|(&g, &v)| if v > 0.0 { g } else { 0.0 })
            .collect();
        // Dense 1 ← hidden.
        let pool_out = self.pool_out.clone();
        let grad_pool = self.dense1.backward(&pool_out, &grad_hidden_pre);
        // Un-pool: gradient flows to argmax positions.
        let mut grad_relu = vec![0.0f32; oc * oh * ow];
        for (i, &src) in self.pool_argmax.iter().enumerate() {
            grad_relu[src] += grad_pool[i];
        }
        // ReLU on conv.
        let grad_conv: Vec<f32> = grad_relu
            .iter()
            .zip(&self.conv_pre_relu)
            .map(|(&g, &v)| if v > 0.0 { g } else { 0.0 })
            .collect();
        // Convolution: accumulate into the owning kernel (the hosting
        // node's replica, or the unit's own kernel in PerUnit mode).
        let kernel_len = c.in_channels() * k * k;
        for o in 0..oc {
            for oy in 0..oh {
                for ox in 0..ow {
                    let unit = o * oh * ow + oy * ow + ox;
                    let g = grad_conv[unit];
                    if g == 0.0 {
                        continue;
                    }
                    let (grad_w, grad_b_slot): (&mut [f32], &mut f32) = match &mut self.per_unit {
                        Some(pk) => (
                            &mut pk.grad_weights.data_mut()
                                [unit * kernel_len..(unit + 1) * kernel_len],
                            &mut pk.grad_bias.data_mut()[unit],
                        ),
                        None => {
                            let rep = self
                                .replicas
                                .get_mut(&self.conv_unit_host[unit])
                                .expect("replica exists");
                            (
                                &mut rep.grad_weights.data_mut()
                                    [o * kernel_len..(o + 1) * kernel_len],
                                &mut rep.grad_bias.data_mut()[o],
                            )
                        }
                    };
                    *grad_b_slot += g;
                    let mut w_off = 0;
                    for icn in 0..c.in_channels() {
                        for ky in 0..k {
                            for kx in 0..k {
                                let iy = oy + ky;
                                let ix = ox + kx;
                                grad_w[w_off] += g * input.data()[icn * ih * iw + iy * iw + ix];
                                w_off += 1;
                            }
                        }
                    }
                }
            }
        }
    }

    /// Applies accumulated gradients according to the update mode.
    pub fn apply_gradients(&mut self, lr: f32) {
        if let Some(pk) = &mut self.per_unit {
            // Locally-connected: each unit's gradient is complete for its
            // own kernel, but carries ~1/positions of the gradient mass a
            // shared kernel would accumulate; compensate so the units
            // learn at the shared-kernel pace.
            let positions = (self.conv_unit_host.len() / self.config.conv_channels()) as f32;
            pk.weights.add_scaled(&pk.grad_weights, -lr * positions);
            pk.bias.add_scaled(&pk.grad_bias, -lr * positions);
            pk.grad_weights.fill_zero();
            pk.grad_bias.fill_zero();
            self.dense1.apply(lr);
            self.dense2.apply(lr);
            return;
        }
        match self.update {
            WeightUpdate::Synchronized => {
                // Sum replica gradients (each unit contributed to exactly
                // one replica, so the sum is the full-batch gradient) and
                // apply the common update to every replica.
                let oc = self.config.conv_channels();
                let ic = self.config.in_channels();
                let k = self.config.kernel();
                let mut total_w = Tensor::zeros(vec![oc, ic, k, k]);
                let mut total_b = Tensor::zeros(vec![oc]);
                for rep in self.replicas.values() {
                    total_w.add_scaled(&rep.grad_weights, 1.0);
                    total_b.add_scaled(&rep.grad_bias, 1.0);
                }
                for rep in self.replicas.values_mut() {
                    rep.weights.add_scaled(&total_w, -lr);
                    rep.bias.add_scaled(&total_b, -lr);
                    rep.grad_weights.fill_zero();
                    rep.grad_bias.fill_zero();
                }
            }
            WeightUpdate::PerUnit => unreachable!("handled by the early return above"),
            WeightUpdate::Independent => {
                for rep in self.replicas.values_mut() {
                    // Mild compensation for seeing only a fraction of the
                    // units' gradients: scale by the square root of the
                    // hosting ratio. Full compensation (the raw ratio)
                    // makes sparse replicas take huge noisy steps and
                    // destroys accuracy; none makes them learn too
                    // slowly.
                    let boost = if rep.units > 0 {
                        (self.conv_unit_host.len() as f32 / rep.units as f32).sqrt()
                    } else {
                        0.0
                    };
                    rep.weights.add_scaled(&rep.grad_weights, -lr * boost);
                    rep.bias.add_scaled(&rep.grad_bias, -lr * boost);
                    rep.grad_weights.fill_zero();
                    rep.grad_bias.fill_zero();
                }
            }
        }
        self.dense1.apply(lr);
        self.dense2.apply(lr);
    }

    /// Trains one epoch; returns the mean loss.
    ///
    /// # Panics
    ///
    /// Panics if `data` is empty or `batch_size` is zero.
    pub fn train_epoch(
        &mut self,
        data: &[(Tensor, usize)],
        lr: f32,
        batch_size: usize,
        rng: &mut SeedRng,
    ) -> f32 {
        self.train_epoch_inner(data, lr, batch_size, rng, None)
    }

    /// Like [`DistributedCnn::train_epoch`], additionally recording
    /// per-step observability metrics: after every batch update the
    /// current replica divergence is written to the
    /// `microdeep.replica_drift` gauge and the
    /// `microdeep.replica_drift_step` histogram, and the batch's mean
    /// loss to `microdeep.batch_loss`. The trained weights are bit-for-bit
    /// identical to an unobserved epoch.
    ///
    /// # Panics
    ///
    /// Panics if `data` is empty or `batch_size` is zero.
    pub fn train_epoch_observed(
        &mut self,
        data: &[(Tensor, usize)],
        lr: f32,
        batch_size: usize,
        rng: &mut SeedRng,
        recorder: &mut Recorder,
    ) -> f32 {
        self.train_epoch_inner(data, lr, batch_size, rng, Some(recorder))
    }

    fn train_epoch_inner(
        &mut self,
        data: &[(Tensor, usize)],
        lr: f32,
        batch_size: usize,
        rng: &mut SeedRng,
        mut observe: Option<&mut Recorder>,
    ) -> f32 {
        assert!(!data.is_empty() && batch_size > 0, "invalid training call");
        let mut order: Vec<usize> = (0..data.len()).collect();
        rng.shuffle(&mut order);
        let mut total = 0.0;
        for batch in order.chunks(batch_size) {
            let mut batch_loss = 0.0;
            for &i in batch {
                let (x, t) = &data[i];
                let logits = self.forward(x);
                let (loss, grad) = cross_entropy(&logits, *t);
                batch_loss += loss;
                self.backward(&grad);
            }
            total += batch_loss;
            self.apply_gradients(lr / batch.len() as f32);
            if let Some(rec) = observe.as_deref_mut() {
                let drift = self.replica_divergence();
                rec.set_gauge("microdeep.replica_drift", Label::Global, drift);
                rec.observe("microdeep.replica_drift_step", Label::Global, drift);
                rec.observe(
                    "microdeep.batch_loss",
                    Label::Global,
                    f64::from(batch_loss / batch.len() as f32),
                );
            }
        }
        total / data.len() as f32
    }

    /// Accuracy over a labelled set.
    ///
    /// # Panics
    ///
    /// Panics if `data` is empty.
    pub fn accuracy(&mut self, data: &[(Tensor, usize)]) -> f64 {
        assert!(!data.is_empty(), "empty evaluation set");
        let correct = data.iter().filter(|(x, t)| self.predict(x) == *t).count();
        correct as f64 / data.len() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use zeiot_net::Topology;

    fn setup(update: WeightUpdate, seed: u64) -> (DistributedCnn, Vec<(Tensor, usize)>) {
        let config = CnnConfig::new(1, 8, 8, 2, 3, 2, 8, 2).unwrap();
        let topo = Topology::grid(3, 3, 2.0, 3.0).unwrap();
        let graph = config.unit_graph().unwrap();
        let assignment = Assignment::balanced_correspondence(&graph, &topo);
        let mut rng = SeedRng::new(seed);
        let net = DistributedCnn::new(config, assignment, update, &mut rng);

        // Spatial two-class task: bright top-left vs bright bottom-right.
        let mut data = Vec::new();
        let mut drng = SeedRng::new(99);
        for _ in 0..30 {
            for class in 0..2usize {
                let mut img = Tensor::zeros(vec![1, 8, 8]);
                for y in 0..4 {
                    for x in 0..4 {
                        let (yy, xx) = if class == 0 { (y, x) } else { (y + 4, x + 4) };
                        img.set(&[0, yy, xx], 1.0 + drng.normal_with(0.0, 0.1) as f32);
                    }
                }
                data.push((img, class));
            }
        }
        (net, data)
    }

    #[test]
    fn synchronized_matches_centralized_forward() {
        // With equal replicas, the distributed forward equals a
        // centralized conv with the same weights — verified by checking
        // determinism across update modes before any training.
        let (mut a, data) = setup(WeightUpdate::Synchronized, 7);
        let (mut b, _) = setup(WeightUpdate::Independent, 7);
        for (x, _) in data.iter().take(5) {
            assert_eq!(a.forward(x).data(), b.forward(x).data());
        }
    }

    #[test]
    fn synchronized_replicas_never_diverge() {
        let (mut net, data) = setup(WeightUpdate::Synchronized, 8);
        let mut rng = SeedRng::new(1);
        for _ in 0..3 {
            net.train_epoch(&data, 0.05, 8, &mut rng);
        }
        assert!(net.replica_divergence() < 1e-6);
    }

    #[test]
    fn independent_replicas_diverge() {
        let (mut net, data) = setup(WeightUpdate::Independent, 8);
        let mut rng = SeedRng::new(1);
        for _ in 0..3 {
            net.train_epoch(&data, 0.05, 8, &mut rng);
        }
        assert!(
            net.replica_divergence() > 1e-4,
            "{}",
            net.replica_divergence()
        );
    }

    #[test]
    fn both_modes_learn_the_task() {
        for update in [WeightUpdate::Synchronized, WeightUpdate::Independent] {
            let (mut net, data) = setup(update, 9);
            let mut rng = SeedRng::new(2);
            for _ in 0..20 {
                net.train_epoch(&data, 0.08, 8, &mut rng);
            }
            let acc = net.accuracy(&data);
            assert!(acc > 0.85, "{update:?}: acc={acc}");
        }
    }

    #[test]
    fn loss_decreases_during_training() {
        let (mut net, data) = setup(WeightUpdate::Independent, 10);
        let mut rng = SeedRng::new(3);
        let first = net.train_epoch(&data, 0.05, 8, &mut rng);
        let mut last = first;
        for _ in 0..10 {
            last = net.train_epoch(&data, 0.05, 8, &mut rng);
        }
        assert!(last < first, "first={first} last={last}");
    }

    #[test]
    fn replica_count_matches_hosting_nodes() {
        let (net, _) = setup(WeightUpdate::Independent, 11);
        assert!(net.replica_count() > 1);
        assert!(net.replica_count() <= 9);
    }

    #[test]
    fn serde_round_trip_preserves_the_model() {
        let (mut net, data) = setup(WeightUpdate::PerUnit, 21);
        let mut rng = SeedRng::new(9);
        for _ in 0..3 {
            net.train_epoch(&data, 0.05, 8, &mut rng);
        }
        let json = net.to_json().unwrap();
        let mut restored = DistributedCnn::from_json(&json).unwrap();
        for (x, _) in data.iter().take(10) {
            assert_eq!(net.forward(x).data(), restored.forward(x).data());
        }
        assert!(DistributedCnn::from_json("not json").is_err());
    }

    #[test]
    fn from_json_rejects_tampered_models() {
        let (net, _) = setup(WeightUpdate::Independent, 22);
        let json = net.to_json().unwrap();
        assert!(DistributedCnn::from_json(&json).is_ok());

        // Textually tamper the persisted model the way a config edit or a
        // hand-patched deployment would, and require a clean error
        // instead of the pre-validation behavior (a panic deep inside
        // forward()).
        let tamper = |from: &str, to: &str| -> String {
            let out = json.replacen(from, to, 1);
            assert_ne!(out, json, "tamper target `{from}` missing from JSON");
            out
        };

        // Config no longer matching the persisted placement: the model
        // was built for 8×8 inputs / 2 classes.
        assert!(DistributedCnn::from_json(&tamper("\"in_height\":8", "\"in_height\":10")).is_err());
        assert!(DistributedCnn::from_json(&tamper("\"classes\":2", "\"classes\":3")).is_err());

        // A replica claiming to host the wrong number of conv units.
        let bad_units = tamper("\"units\":8}", "\"units\":9}");
        let err = DistributedCnn::from_json(&bad_units).unwrap_err();
        assert!(err.contains("replica"), "unexpected error: {err}");

        // A placement entry pointing a conv unit at a node other than
        // the one the assignment records.
        let first_host = json
            .split("\"conv_unit_host\":[")
            .nth(1)
            .and_then(|rest| rest.split(',').next())
            .expect("conv_unit_host present");
        let other = if first_host == "3" { "4" } else { "3" };
        assert!(DistributedCnn::from_json(&tamper(
            &format!("\"conv_unit_host\":[{first_host},"),
            &format!("\"conv_unit_host\":[{other},"),
        ))
        .is_err());

        // A replica weight tensor reshaped away from [oc, ic, k, k].
        assert!(
            DistributedCnn::from_json(&tamper("\"shape\":[2,1,3,3]", "\"shape\":[2,1,9]")).is_err()
        );
    }

    #[test]
    fn observed_epoch_trains_identically_and_records_drift() {
        let (mut plain, data) = setup(WeightUpdate::Independent, 30);
        let (mut observed, _) = setup(WeightUpdate::Independent, 30);
        let mut rng_a = SeedRng::new(4);
        let mut rng_b = SeedRng::new(4);
        let mut rec = Recorder::new();
        let loss_a = plain.train_epoch(&data, 0.05, 8, &mut rng_a);
        let loss_b = observed.train_epoch_observed(&data, 0.05, 8, &mut rng_b, &mut rec);
        assert_eq!(loss_a, loss_b);
        for (x, _) in data.iter().take(5) {
            assert_eq!(plain.forward(x).data(), observed.forward(x).data());
        }
        let drift = rec
            .gauge("microdeep.replica_drift", &Label::Global)
            .unwrap();
        assert_eq!(drift, observed.replica_divergence());
        let steps = rec
            .histogram_ref("microdeep.replica_drift_step", &Label::Global)
            .unwrap();
        assert_eq!(steps.len(), data.len().div_ceil(8));
        assert!(rec
            .histogram_ref("microdeep.batch_loss", &Label::Global)
            .is_some());
    }

    #[test]
    #[should_panic]
    fn backward_before_forward_panics() {
        let (mut net, _) = setup(WeightUpdate::Independent, 12);
        let g = Tensor::zeros(vec![2]);
        net.backward(&g);
    }
}
