//! The canonical MicroDeep CNN.
//!
//! Both paper experiments use the same shape: one convolutional layer,
//! one (max-)pooling layer, and two fully-connected layers (§IV.C: "We
//! used CNN consisting of one convolutional layer, one pooling layer and
//! two fully-connected layers"). [`CnnConfig`] captures its
//! hyperparameters, builds the centralized baseline network, and exposes
//! the unit graph the assignment algorithms work on.

use serde::{Deserialize, Serialize};
use zeiot_core::error::{ConfigError, Result};
use zeiot_core::rng::SeedRng;
use zeiot_nn::layers::{Conv2d, Dense, Flatten, MaxPool2d, Relu};
use zeiot_nn::network::Sequential;
use zeiot_nn::topology::{conv_output_dims, LayerSpec, UnitGraph};

/// Hyperparameters of the canonical MicroDeep CNN
/// (conv → ReLU → max-pool → flatten → dense → ReLU → dense).
///
/// See the crate-level example.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct CnnConfig {
    in_channels: usize,
    in_height: usize,
    in_width: usize,
    conv_channels: usize,
    kernel: usize,
    pool: usize,
    hidden: usize,
    classes: usize,
}

impl CnnConfig {
    /// Creates a configuration.
    ///
    /// The convolution uses stride 1 and no padding; the pooling window
    /// must evenly divide the convolution output.
    ///
    /// # Errors
    ///
    /// Returns an error if any dimension is zero, the kernel does not fit
    /// the input, or the pool window does not divide the conv output.
    #[allow(clippy::too_many_arguments)]
    pub fn new(
        in_channels: usize,
        in_height: usize,
        in_width: usize,
        conv_channels: usize,
        kernel: usize,
        pool: usize,
        hidden: usize,
        classes: usize,
    ) -> Result<Self> {
        for (name, v) in [
            ("in_channels", in_channels),
            ("in_height", in_height),
            ("in_width", in_width),
            ("conv_channels", conv_channels),
            ("kernel", kernel),
            ("pool", pool),
            ("hidden", hidden),
            ("classes", classes),
        ] {
            if v == 0 {
                return Err(ConfigError::new(name, "must be non-zero"));
            }
        }
        if kernel > in_height || kernel > in_width {
            return Err(ConfigError::new("kernel", "larger than input"));
        }
        let (ch, cw) = conv_output_dims(in_height, in_width, kernel, 1, 0);
        if ch % pool != 0 || cw % pool != 0 {
            return Err(ConfigError::new(
                "pool",
                format!("window {pool} does not divide conv output {ch}×{cw}"),
            ));
        }
        if classes < 2 {
            return Err(ConfigError::new("classes", "need at least two classes"));
        }
        Ok(Self {
            in_channels,
            in_height,
            in_width,
            conv_channels,
            kernel,
            pool,
            hidden,
            classes,
        })
    }

    /// Input channels.
    pub fn in_channels(&self) -> usize {
        self.in_channels
    }

    /// Input height.
    pub fn in_height(&self) -> usize {
        self.in_height
    }

    /// Input width.
    pub fn in_width(&self) -> usize {
        self.in_width
    }

    /// Convolution output channels.
    pub fn conv_channels(&self) -> usize {
        self.conv_channels
    }

    /// Convolution kernel size.
    pub fn kernel(&self) -> usize {
        self.kernel
    }

    /// Pooling window.
    pub fn pool(&self) -> usize {
        self.pool
    }

    /// Hidden dense width.
    pub fn hidden(&self) -> usize {
        self.hidden
    }

    /// Number of output classes.
    pub fn classes(&self) -> usize {
        self.classes
    }

    /// Convolution output spatial dimensions.
    pub fn conv_dims(&self) -> (usize, usize) {
        conv_output_dims(self.in_height, self.in_width, self.kernel, 1, 0)
    }

    /// Pool output spatial dimensions.
    pub fn pool_dims(&self) -> (usize, usize) {
        let (ch, cw) = self.conv_dims();
        (ch / self.pool, cw / self.pool)
    }

    /// Flattened feature length entering the dense layers.
    pub fn feature_len(&self) -> usize {
        let (ph, pw) = self.pool_dims();
        self.conv_channels * ph * pw
    }

    /// Builds the centralized baseline network (standard CNN on one
    /// machine — the paper's comparison point).
    pub fn build_centralized(&self, rng: &mut SeedRng) -> Sequential {
        let (ch, cw) = self.conv_dims();
        let mut net = Sequential::new();
        net.push(Conv2d::new(
            self.in_channels,
            self.conv_channels,
            self.in_height,
            self.in_width,
            self.kernel,
            1,
            0,
            rng,
        ));
        net.push(Relu::new());
        net.push(MaxPool2d::new(self.conv_channels, ch, cw, self.pool));
        net.push(Flatten::new());
        net.push(Dense::new(self.feature_len(), self.hidden, rng));
        net.push(Relu::new());
        net.push(Dense::new(self.hidden, self.classes, rng));
        net
    }

    /// The structural layer specs (computational + fused).
    pub fn layer_specs(&self) -> Vec<LayerSpec> {
        let (ch, cw) = self.conv_dims();
        vec![
            LayerSpec::Conv2d {
                in_channels: self.in_channels,
                in_height: self.in_height,
                in_width: self.in_width,
                out_channels: self.conv_channels,
                kernel: self.kernel,
                stride: 1,
                padding: 0,
            },
            LayerSpec::Elementwise {
                len: self.conv_channels * ch * cw,
            },
            LayerSpec::Pool2d {
                channels: self.conv_channels,
                in_height: ch,
                in_width: cw,
                kernel: self.pool,
            },
            LayerSpec::Flatten {
                len: self.feature_len(),
            },
            LayerSpec::Dense {
                in_len: self.feature_len(),
                out_len: self.hidden,
            },
            LayerSpec::Elementwise { len: self.hidden },
            LayerSpec::Dense {
                in_len: self.hidden,
                out_len: self.classes,
            },
        ]
    }

    /// The expanded unit graph.
    ///
    /// # Errors
    ///
    /// Never fails for a validated config; the signature matches
    /// [`UnitGraph::from_specs`].
    pub fn unit_graph(&self) -> Result<UnitGraph> {
        UnitGraph::from_specs(&self.layer_specs())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use zeiot_nn::tensor::Tensor;

    #[test]
    fn validation_rejects_bad_geometry() {
        assert!(CnnConfig::new(1, 8, 8, 4, 9, 2, 16, 2).is_err()); // kernel > input
        assert!(CnnConfig::new(1, 8, 8, 4, 3, 4, 16, 2).is_err()); // 6 % 4 != 0
        assert!(CnnConfig::new(1, 8, 8, 0, 3, 2, 16, 2).is_err()); // zero channels
        assert!(CnnConfig::new(1, 8, 8, 4, 3, 2, 16, 1).is_err()); // one class
        assert!(CnnConfig::new(1, 8, 8, 4, 3, 2, 16, 2).is_ok());
    }

    #[test]
    fn derived_dimensions() {
        let c = CnnConfig::new(1, 8, 8, 4, 3, 2, 16, 2).unwrap();
        assert_eq!(c.conv_dims(), (6, 6));
        assert_eq!(c.pool_dims(), (3, 3));
        assert_eq!(c.feature_len(), 36);
    }

    #[test]
    fn centralized_network_runs_and_matches_specs() {
        let c = CnnConfig::new(1, 8, 8, 4, 3, 2, 16, 2).unwrap();
        let mut rng = SeedRng::new(1);
        let mut net = c.build_centralized(&mut rng);
        let out = net.forward(&Tensor::zeros(vec![1, 8, 8]));
        assert_eq!(out.shape(), &[2]);
        // Specs from the live network agree with the static description.
        assert_eq!(net.specs(), c.layer_specs());
    }

    #[test]
    fn unit_graph_sizes() {
        let c = CnnConfig::new(1, 8, 8, 4, 3, 2, 16, 2).unwrap();
        let g = c.unit_graph().unwrap();
        assert_eq!(g.units_in_layer(0), 64);
        assert_eq!(g.units_in_layer(1), 4 * 36);
        assert_eq!(g.units_in_layer(2), 4 * 9);
        assert_eq!(g.units_in_layer(3), 16);
        assert_eq!(g.units_in_layer(4), 2);
    }

    #[test]
    fn serde_round_trip() {
        let c = CnnConfig::new(1, 9, 9, 8, 2, 2, 32, 3).unwrap();
        let json = serde_json::to_string(&c).unwrap();
        let back: CnnConfig = serde_json::from_str(&json).unwrap();
        assert_eq!(c, back);
    }
}
