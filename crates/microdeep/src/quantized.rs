//! Quantized distributed execution.
//!
//! µW-class backscatter nodes execute integer arithmetic (PAPERS.md,
//! "Energy-Aware Deep Learning on Resource-Constrained Hardware"), so
//! the deployed forward path must not be the f32 training path. This
//! module freezes a trained [`DistributedCnn`] into a [`QuantizedCnn`]:
//! symmetric per-layer i8 weights, per-layer activation scales selected
//! from calibration activations at deploy time, and a forward pass whose
//! hot loops are pure i8×i8→i32 integer arithmetic
//! ([`zeiot_nn::quant`]).
//!
//! **Why this strengthens the determinism contract.** The f32 lossy path
//! keeps its guarantees by replicating one canonical accumulation order
//! everywhere. The quantized path needs no such discipline: `i32`
//! addition is associative and commutative, so any blocking, any loop
//! order, and any distribution of partial sums across nodes produces the
//! same bits. The audit's d3 no-float-order-hazard rule is satisfied *by
//! construction* — there is no floating-point accumulation to reorder.
//!
//! **Fabric transport.** A quantized activation is one signed byte. The
//! lossy path ships it through the existing [`LossyRuntime`] as its
//! exact `f32` image (every i8 is exactly representable), so all fault
//! machinery — drops, retransmission, corruption, degrade substitution —
//! applies unchanged; the receiver re-quantizes deterministically
//! (round half away from zero, clamp to ±127, NaN to 0) before the value
//! ever reaches an accumulator. With a lossless plan the lossy quantized
//! pass is **bit-identical** to [`QuantizedCnn::forward_quantized`].

use crate::distributed::DistributedCnn;
use crate::lossy::{
    HopProbe, LossyRuntime, STAGE_CONV_POOL, STAGE_HIDDEN_LOGIT, STAGE_INPUT_CONV,
    STAGE_POOL_HIDDEN,
};
use crate::{Assignment, CnnConfig};
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use zeiot_core::id::NodeId;
use zeiot_nn::quant::{dense_i8_blocked, dot_i8, quantize_slice, scale_for, Calibration, Requant};
use zeiot_nn::tensor::Tensor;
use zeiot_obs::trace::SpanScope;
use zeiot_obs::{Label, Recorder};

/// One node's frozen convolution kernel replica: i8 weights at the
/// common conv weight scale, biases pre-scaled into the i32 accumulator
/// domain.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
struct QConvReplica {
    weights: Vec<i8>, // [oc, ic, k, k]
    bias: Vec<i32>,   // [oc], accumulator domain
}

/// A frozen dense layer: i8 weight rows, accumulator-domain i32 biases.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
struct QDense {
    weights: Vec<i8>, // [out, in]
    bias: Vec<i32>,   // [out], accumulator domain
}

/// Per-unit kernels for [`crate::WeightUpdate::PerUnit`] models.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
struct QUnitKernels {
    weights: Vec<i8>, // [units, ic, k, k]
    bias: Vec<i32>,   // [units], accumulator domain
}

/// Saturation and usage counters for a quantized model.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct QuantStats {
    /// Completed quantized forward passes.
    pub forwards: u64,
    /// Input values that clamped at ±127 when quantized.
    pub input_saturated: u64,
    /// Requantized activations that clamped at ±127.
    pub activation_saturated: u64,
}

impl QuantStats {
    /// Writes the counters into `recorder` under `label` as
    /// `quant.forwards` / `quant.input_saturated` /
    /// `quant.activation_saturated`.
    pub fn record_to(&self, recorder: &mut Recorder, label: Label) {
        recorder.add("quant.forwards", label.clone(), self.forwards);
        recorder.add("quant.input_saturated", label.clone(), self.input_saturated);
        recorder.add(
            "quant.activation_saturated",
            label,
            self.activation_saturated,
        );
    }
}

/// A [`DistributedCnn`] frozen for integer deployment: i8 weights, i32
/// exact accumulation, deterministic fixed-point requantization between
/// layers, and lossy-fabric execution mirroring the f32 runtime.
///
/// # Example
///
/// ```
/// # fn main() -> Result<(), zeiot_core::ConfigError> {
/// use zeiot_microdeep::{Assignment, CnnConfig, DistributedCnn, QuantizedCnn, WeightUpdate};
/// use zeiot_net::Topology;
/// use zeiot_core::rng::SeedRng;
/// use zeiot_nn::tensor::Tensor;
///
/// let config = CnnConfig::new(1, 8, 8, 2, 3, 2, 8, 2)?;
/// let topo = Topology::grid(3, 3, 2.0, 3.0)?;
/// let graph = config.unit_graph()?;
/// let assignment = Assignment::balanced_correspondence(&graph, &topo);
/// let mut rng = SeedRng::new(1);
/// let mut net = DistributedCnn::new(config, assignment, WeightUpdate::Independent, &mut rng);
/// let calibration = vec![Tensor::uniform(vec![1, 8, 8], 1.0, &mut rng)];
/// let mut qnet = QuantizedCnn::new(&mut net, &calibration);
/// let logits = qnet.forward_quantized(&calibration[0]);
/// assert_eq!(logits.len(), 2);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct QuantizedCnn {
    config: CnnConfig,
    assignment: Assignment,
    conv_unit_host: Vec<NodeId>,
    replicas: BTreeMap<NodeId, QConvReplica>,
    per_unit: Option<QUnitKernels>,
    dense1: QDense,
    dense2: QDense,
    /// Input quantization scale (calibrated).
    input_scale: f32,
    /// Shared conv weight scale — kept so re-placed replicas can be
    /// re-frozen into the exact deployed integer domain.
    conv_weight_scale: f32,
    /// Conv accumulator scale (`input_scale × conv_weight_scale`),
    /// kept for re-freezing migrated replica biases.
    conv_acc_scale: f64,
    /// Conv accumulator → conv activation domain.
    conv_requant: Requant,
    /// Dense-1 accumulator → hidden activation domain.
    hidden_requant: Requant,
    /// Dense-2 accumulator → real logits.
    logit_scale: f64,
    stats: QuantStats,
}

/// Deterministically re-quantizes a value received off the fabric: the
/// producer sent an i8 as its exact f32 image, but corruption or degrade
/// substitution may have replaced it with anything — round half away
/// from zero, clamp to the symmetric range, map NaN to 0 (the saturating
/// float→int cast).
fn requantize_received(v: f32) -> i8 {
    v.round().clamp(-127.0, 127.0) as i8
}

impl QuantizedCnn {
    /// Freezes `net` for integer deployment. Runs f32 forward passes
    /// over `calibration` to select per-layer activation scales (max-abs
    /// range), quantizes every replica's weights at one common per-layer
    /// scale, and pre-scales biases into the accumulator domains.
    ///
    /// # Panics
    ///
    /// Panics if `calibration` is empty.
    pub fn new(net: &mut DistributedCnn, calibration: &[Tensor]) -> Self {
        assert!(!calibration.is_empty(), "calibration set must be non-empty");
        let mut cal_in = Calibration::new();
        let mut cal_conv = Calibration::new();
        let mut cal_hidden = Calibration::new();
        for x in calibration {
            cal_in.observe(x.data());
            let _ = net.forward(x);
            cal_conv.observe(&net.conv_pre_relu);
            cal_hidden.observe(&net.hidden_pre_relu);
        }
        let s_in = cal_in.scale();
        let s_a1 = cal_conv.scale();
        let s_a2 = cal_hidden.scale();

        // One weight scale per layer, shared by every replica, so all
        // nodes speak the same integer domain over the fabric.
        let max_abs = |xs: &[f32]| xs.iter().fold(0.0f32, |m, &v| m.max(v.abs()));
        let mut w1_max = 0.0f32;
        for rep in net.replicas.values() {
            w1_max = w1_max.max(max_abs(rep.weights.data()));
        }
        if let Some(pk) = &net.per_unit {
            w1_max = w1_max.max(max_abs(pk.weights.data()));
        }
        let s_w1 = scale_for(w1_max);
        let s_w2 = scale_for(max_abs(net.dense1.weights.data()));
        let s_w3 = scale_for(max_abs(net.dense2.weights.data()));

        // Accumulator-domain scales and the fixed-point requantizers
        // that bridge them to the next activation domain.
        let acc1 = s_in as f64 * s_w1 as f64;
        let acc2 = s_a1 as f64 * s_w2 as f64;
        let acc3 = s_a2 as f64 * s_w3 as f64;
        let quant_bias = |b: f32, acc_scale: f64| (b as f64 / acc_scale).round() as i32;

        let replicas = net
            .replicas
            .iter()
            .map(|(node, rep)| {
                let (weights, _) = quantize_slice(rep.weights.data(), s_w1);
                let bias = rep
                    .bias
                    .data()
                    .iter()
                    .map(|&b| quant_bias(b, acc1))
                    .collect();
                (*node, QConvReplica { weights, bias })
            })
            .collect();
        let per_unit = net.per_unit.as_ref().map(|pk| {
            let (weights, _) = quantize_slice(pk.weights.data(), s_w1);
            let bias = pk
                .bias
                .data()
                .iter()
                .map(|&b| quant_bias(b, acc1))
                .collect();
            QUnitKernels { weights, bias }
        });
        let quant_dense = |w: &Tensor, b: &Tensor, s_w: f32, acc: f64| {
            let (weights, _) = quantize_slice(w.data(), s_w);
            QDense {
                weights,
                bias: b.data().iter().map(|&v| quant_bias(v, acc)).collect(),
            }
        };
        Self {
            config: net.config,
            assignment: net.assignment.clone(),
            conv_unit_host: net.conv_unit_host.clone(),
            replicas,
            per_unit,
            dense1: quant_dense(&net.dense1.weights, &net.dense1.bias, s_w2, acc2),
            dense2: quant_dense(&net.dense2.weights, &net.dense2.bias, s_w3, acc3),
            input_scale: s_in,
            conv_weight_scale: s_w1,
            conv_acc_scale: acc1,
            conv_requant: Requant::from_ratio(acc1 / s_a1 as f64),
            hidden_requant: Requant::from_ratio(acc2 / s_a2 as f64),
            logit_scale: acc3,
            stats: QuantStats::default(),
        }
    }

    /// The configuration this network was frozen from.
    pub fn config(&self) -> &CnnConfig {
        &self.config
    }

    /// The calibrated input quantization scale.
    pub fn input_scale(&self) -> f32 {
        self.input_scale
    }

    /// Usage and saturation counters accumulated so far.
    pub fn stats(&self) -> &QuantStats {
        &self.stats
    }

    /// Re-aligns this frozen deployment with `net`'s placement after the
    /// re-placement engine migrated units: placement tables are adopted,
    /// replicas on nodes that lost all their units are dropped, and
    /// replicas on newly hosting nodes are frozen from `net`'s f32 state
    /// at the **original** calibrated scales — the migrated i8 image is
    /// therefore exactly the quantization of the shipped f32 replica, as
    /// if the node had been part of the original freeze. Activation
    /// scales and requantizers are untouched (re-placement moves units,
    /// it does not retrain them), so an unchanged placement is a no-op.
    pub fn resync_placement(&mut self, net: &DistributedCnn) {
        self.assignment = net.assignment.clone();
        self.conv_unit_host = net.conv_unit_host.clone();
        self.replicas
            .retain(|node, _| net.replicas.contains_key(node));
        let quant_bias = |b: f32| (b as f64 / self.conv_acc_scale).round() as i32;
        for (node, rep) in &net.replicas {
            if self.replicas.contains_key(node) {
                continue;
            }
            let (weights, _) = quantize_slice(rep.weights.data(), self.conv_weight_scale);
            let bias = rep.bias.data().iter().map(|&b| quant_bias(b)).collect();
            self.replicas.insert(*node, QConvReplica { weights, bias });
        }
    }

    /// Quantizes an input tensor into the deployed input domain,
    /// counting saturated values into the model's stats.
    fn quantize_input(&mut self, input: &Tensor) -> Vec<i8> {
        let c = &self.config;
        assert_eq!(
            input.shape(),
            &[c.in_channels(), c.in_height(), c.in_width()],
            "input shape mismatch"
        );
        let (q, sat) = quantize_slice(input.data(), self.input_scale);
        self.stats.input_saturated += sat;
        q
    }

    /// The kernel and accumulator-domain bias for one conv output unit.
    fn unit_kernel(&self, unit: usize, o: usize, kernel_len: usize) -> (&[i8], i32) {
        match &self.per_unit {
            Some(pk) => (
                &pk.weights[unit * kernel_len..(unit + 1) * kernel_len],
                pk.bias[unit],
            ),
            None => {
                let rep = &self.replicas[&self.conv_unit_host[unit]];
                (
                    &rep.weights[o * kernel_len..(o + 1) * kernel_len],
                    rep.bias[o],
                )
            }
        }
    }

    /// Max-pools i8 conv activations (ReLU already applied).
    fn pool_i8(&self, relu: &[i8]) -> Vec<i8> {
        let c = &self.config;
        let (oh, ow) = c.conv_dims();
        let (ph, pw) = c.pool_dims();
        let (oc, p) = (c.conv_channels(), c.pool());
        let mut pooled = vec![0i8; oc * ph * pw];
        for ch in 0..oc {
            for py in 0..ph {
                for px in 0..pw {
                    let mut best = i8::MIN;
                    for ky in 0..p {
                        for kx in 0..p {
                            let off = ch * oh * ow + (py * p + ky) * ow + (px * p + kx);
                            best = best.max(relu[off]);
                        }
                    }
                    pooled[ch * ph * pw + py * pw + px] = best;
                }
            }
        }
        pooled
    }

    /// Requantizes a vector of i32 accumulators into i8 activations and
    /// applies ReLU in the integer domain (sound because the requantizer
    /// is monotone), counting saturation.
    fn requant_relu(&mut self, accs: &[i32], requant: Requant) -> Vec<i8> {
        let mut sat = 0u64;
        let out = accs
            .iter()
            .map(|&a| requant.apply_i8(a, &mut sat).max(0))
            .collect();
        self.stats.activation_saturated += sat;
        out
    }

    /// Dequantizes final i32 logit accumulators into real-valued logits.
    fn dequant_logits(&self, accs: &[i32]) -> Tensor {
        let logits: Vec<f32> = accs
            .iter()
            .map(|&a| (a as f64 * self.logit_scale) as f32)
            .collect();
        Tensor::from_vec(vec![self.config.classes()], logits).expect("logit shape")
    }

    /// Integer forward pass. Bit-exact under any loop order or thread
    /// count: every accumulation is exact i32 addition.
    pub fn forward_quantized(&mut self, input: &Tensor) -> Tensor {
        let q_input = self.quantize_input(input);
        let c = self.config;
        let (oh, ow) = c.conv_dims();
        let (oc, k) = (c.conv_channels(), c.kernel());
        let (ih, iw) = (c.in_height(), c.in_width());
        let kernel_len = c.in_channels() * k * k;

        // Convolution with per-node replica kernels, all-i32 exact.
        let mut conv = vec![0i32; oc * oh * ow];
        for o in 0..oc {
            for oy in 0..oh {
                for ox in 0..ow {
                    let unit = o * oh * ow + oy * ow + ox;
                    let (weights, bias) = self.unit_kernel(unit, o, kernel_len);
                    let mut acc = bias;
                    let mut w_off = 0;
                    for icn in 0..c.in_channels() {
                        for ky in 0..k {
                            for kx in 0..k {
                                let x = q_input[icn * ih * iw + (oy + ky) * iw + (ox + kx)];
                                acc += weights[w_off] as i32 * x as i32;
                                w_off += 1;
                            }
                        }
                    }
                    conv[unit] = acc;
                }
            }
        }
        let relu = self.requant_relu(&conv, self.conv_requant);
        let pooled = self.pool_i8(&relu);

        // Dense 1 + ReLU, dense 2 — the same cache-blocked kernel the
        // perf trajectory benchmarks.
        let hidden_acc =
            dense_i8_blocked(&self.dense1.weights, &self.dense1.bias, &pooled, c.hidden());
        let hidden = self.requant_relu(&hidden_acc, self.hidden_requant);
        let logit_acc = dense_i8_blocked(
            &self.dense2.weights,
            &self.dense2.bias,
            &hidden,
            c.classes(),
        );
        self.stats.forwards += 1;
        self.dequant_logits(&logit_acc)
    }

    /// Predicted class for an input.
    pub fn predict_quantized(&mut self, input: &Tensor) -> usize {
        self.forward_quantized(input).argmax()
    }

    /// Accuracy over a labelled set.
    ///
    /// # Panics
    ///
    /// Panics if `data` is empty.
    pub fn accuracy_quantized(&mut self, data: &[(Tensor, usize)]) -> f64 {
        assert!(!data.is_empty(), "empty evaluation set");
        let correct = data
            .iter()
            .filter(|(x, t)| self.predict_quantized(x) == *t)
            .count();
        correct as f64 / data.len() as f64
    }

    /// Integer forward pass through a lossy fabric; the quantized
    /// analogue of [`DistributedCnn::forward_lossy`]. Returns `None`
    /// when a lost message aborts the inference under a non-degrading
    /// policy. With a lossless plan this is bit-identical to
    /// [`QuantizedCnn::forward_quantized`].
    ///
    /// # Panics
    ///
    /// Panics if the input shape disagrees with the config.
    pub fn forward_quantized_lossy(
        &mut self,
        input: &Tensor,
        rt: &mut LossyRuntime,
    ) -> Option<Tensor> {
        self.forward_quantized_lossy_traced(input, rt, None)
    }

    /// [`QuantizedCnn::forward_quantized_lossy`] with per-unit hop spans
    /// (`hop.qconv`, `hop.qpool`, `hop.qhidden`, `hop.qlogit`) pushed
    /// under `scope` when given; `scope = None` is byte-for-byte the
    /// untraced path.
    ///
    /// # Panics
    ///
    /// Panics if the input shape disagrees with the config.
    pub fn forward_quantized_lossy_traced(
        &mut self,
        input: &Tensor,
        rt: &mut LossyRuntime,
        mut scope: Option<&mut SpanScope<'_>>,
    ) -> Option<Tensor> {
        let q_input = self.quantize_input(input);
        let c = self.config;
        let (oh, ow) = c.conv_dims();
        let (ph, pw) = c.pool_dims();
        let (oc, k, p) = (c.conv_channels(), c.kernel(), c.pool());
        let (ih, iw) = (c.in_height(), c.in_width());
        let kernel_len = c.in_channels() * k * k;

        // Convolution: each conv unit pulls its receptive field (one
        // byte per input unit, shipped as its exact f32 image) from the
        // sensors hosting the input units.
        let mut conv = vec![0i32; oc * oh * ow];
        for o in 0..oc {
            for oy in 0..oh {
                for ox in 0..ow {
                    let unit = o * oh * ow + oy * ow + ox;
                    let dst = self.conv_unit_host[unit];
                    let (weights, bias) = match &self.per_unit {
                        Some(pk) => (
                            &pk.weights[unit * kernel_len..(unit + 1) * kernel_len],
                            pk.bias[unit],
                        ),
                        None => {
                            let rep = &self.replicas[&dst];
                            (
                                &rep.weights[o * kernel_len..(o + 1) * kernel_len],
                                rep.bias[o],
                            )
                        }
                    };
                    let probe = scope.is_some().then(|| HopProbe::open(rt));
                    let mut acc = bias;
                    let mut w_off = 0;
                    for icn in 0..c.in_channels() {
                        for ky in 0..k {
                            for kx in 0..k {
                                let in_unit = icn * ih * iw + (oy + ky) * iw + (ox + kx);
                                let src = self.assignment.host_of(0, in_unit);
                                let sent = q_input[in_unit] as f32;
                                let v =
                                    rt.fetch(sent, src, dst, STAGE_INPUT_CONV, in_unit, unit)?;
                                acc += weights[w_off] as i32 * requantize_received(v) as i32;
                                w_off += 1;
                            }
                        }
                    }
                    if let (Some(s), Some(pr)) = (scope.as_mut(), probe) {
                        pr.close(rt, s, "hop.qconv");
                    }
                    conv[unit] = acc;
                }
            }
        }
        let relu = self.requant_relu(&conv, self.conv_requant);

        // Max pooling: each pool unit pulls its window from the conv
        // units' hosts and maxes in the i8 domain.
        let mut pooled = vec![0i8; oc * ph * pw];
        for ch in 0..oc {
            for py in 0..ph {
                for px in 0..pw {
                    let punit = ch * ph * pw + py * pw + px;
                    let dst = self.assignment.host_of(2, punit);
                    let probe = scope.is_some().then(|| HopProbe::open(rt));
                    let mut best = i8::MIN;
                    for ky in 0..p {
                        for kx in 0..p {
                            let off = ch * oh * ow + (py * p + ky) * ow + (px * p + kx);
                            let src = self.conv_unit_host[off];
                            let v =
                                rt.fetch(relu[off] as f32, src, dst, STAGE_CONV_POOL, off, punit)?;
                            best = best.max(requantize_received(v));
                        }
                    }
                    if let (Some(s), Some(pr)) = (scope.as_mut(), probe) {
                        pr.close(rt, s, "hop.qpool");
                    }
                    pooled[punit] = best;
                }
            }
        }

        // Dense 1 + ReLU: each hidden unit pulls the pooled vector.
        let mut hidden_acc = vec![0i32; c.hidden()];
        for (h, slot) in hidden_acc.iter_mut().enumerate() {
            let dst = self.assignment.host_of(3, h);
            let row = &self.dense1.weights[h * pooled.len()..(h + 1) * pooled.len()];
            let probe = scope.is_some().then(|| HopProbe::open(rt));
            let mut received = Vec::with_capacity(pooled.len());
            for (i, &v) in pooled.iter().enumerate() {
                let src = self.assignment.host_of(2, i);
                let got = rt.fetch(v as f32, src, dst, STAGE_POOL_HIDDEN, i, h)?;
                received.push(requantize_received(got));
            }
            if let (Some(s), Some(pr)) = (scope.as_mut(), probe) {
                pr.close(rt, s, "hop.qhidden");
            }
            *slot = self.dense1.bias[h] + dot_i8(row, &received);
        }
        let hidden = self.requant_relu(&hidden_acc, self.hidden_requant);

        // Dense 2: each class unit pulls the hidden vector.
        let mut logit_acc = vec![0i32; c.classes()];
        for (o, slot) in logit_acc.iter_mut().enumerate() {
            let dst = self.assignment.host_of(4, o);
            let row = &self.dense2.weights[o * c.hidden()..(o + 1) * c.hidden()];
            let probe = scope.is_some().then(|| HopProbe::open(rt));
            let mut received = Vec::with_capacity(c.hidden());
            for (h, &v) in hidden.iter().enumerate() {
                let src = self.assignment.host_of(3, h);
                let got = rt.fetch(v as f32, src, dst, STAGE_HIDDEN_LOGIT, h, o)?;
                received.push(requantize_received(got));
            }
            if let (Some(s), Some(pr)) = (scope.as_mut(), probe) {
                pr.close(rt, s, "hop.qlogit");
            }
            *slot = self.dense2.bias[o] + dot_i8(row, &received);
        }
        self.stats.forwards += 1;
        Some(self.dequant_logits(&logit_acc))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::distributed::WeightUpdate;
    use crate::replace::{apply_offline, plan_incremental};
    use zeiot_core::rng::SeedRng;
    use zeiot_core::time::SimDuration;
    use zeiot_fault::{DegradeMode, FaultPlan, RecoveryPolicy};
    use zeiot_net::Topology;

    fn trained_setup(update: WeightUpdate, seed: u64) -> (DistributedCnn, Vec<(Tensor, usize)>) {
        let config = CnnConfig::new(1, 8, 8, 2, 3, 2, 8, 2).unwrap();
        let topo = Topology::grid(3, 3, 2.0, 3.0).unwrap();
        let graph = config.unit_graph().unwrap();
        let assignment = Assignment::balanced_correspondence(&graph, &topo);
        let mut rng = SeedRng::new(seed);
        let mut net = DistributedCnn::new(config, assignment, update, &mut rng);

        let mut data = Vec::new();
        let mut drng = SeedRng::new(99);
        for _ in 0..30 {
            for class in 0..2usize {
                let mut img = Tensor::zeros(vec![1, 8, 8]);
                for y in 0..4 {
                    for x in 0..4 {
                        let (yy, xx) = if class == 0 { (y, x) } else { (y + 4, x + 4) };
                        img.set(&[0, yy, xx], 1.0 + drng.normal_with(0.0, 0.1) as f32);
                    }
                }
                data.push((img, class));
            }
        }
        let mut trng = SeedRng::new(7);
        for _ in 0..15 {
            net.train_epoch(&data, 0.08, 8, &mut trng);
        }
        (net, data)
    }

    fn grid_topology() -> Topology {
        Topology::grid(3, 3, 2.0, 3.0).unwrap()
    }

    #[test]
    fn quantized_model_agrees_with_f32_on_a_trained_task() {
        let (mut net, data) = trained_setup(WeightUpdate::Independent, 20);
        let calibration: Vec<Tensor> = data.iter().take(16).map(|(x, _)| x.clone()).collect();
        let mut qnet = QuantizedCnn::new(&mut net, &calibration);
        let f32_acc = net.accuracy(&data);
        let q_acc = qnet.accuracy_quantized(&data);
        assert!(f32_acc > 0.85, "f32 baseline failed to train: {f32_acc}");
        assert!(
            (f32_acc - q_acc).abs() <= 0.1,
            "quantization cost too much accuracy: f32={f32_acc} i8={q_acc}"
        );
        assert_eq!(qnet.stats().forwards, data.len() as u64);
    }

    #[test]
    fn resync_placement_tracks_migrations_and_preserves_the_function() {
        // Per-unit kernels travel with their units, so the quantized
        // function is placement-invariant: the resynced model must
        // produce bit-identical logits after a migration epoch.
        let (mut net, data) = trained_setup(WeightUpdate::PerUnit, 23);
        let calibration: Vec<Tensor> = data.iter().take(8).map(|(x, _)| x.clone()).collect();
        let mut qnet = QuantizedCnn::new(&mut net, &calibration);

        // Unchanged placement: resync is a no-op on the frozen state.
        let frozen = serde_json::to_string(&qnet).unwrap();
        let mut clone = qnet.clone();
        clone.resync_placement(&net);
        assert_eq!(serde_json::to_string(&clone).unwrap(), frozen);

        let baseline: Vec<Vec<f32>> = data
            .iter()
            .take(6)
            .map(|(x, _)| qnet.forward_quantized(x).data().to_vec())
            .collect();

        let topo = grid_topology();
        let graph = net.config.unit_graph().unwrap();
        let down = vec![NodeId::new(4)];
        let (_, outcome) = plan_incremental(&graph, &topo, &net.assignment, &down, usize::MAX);
        assert!(!outcome.migrations.is_empty(), "center node hosted nothing");
        apply_offline(&mut net, &graph, &outcome.migrations, &down);

        qnet.resync_placement(&net);
        assert_eq!(qnet.assignment, net.assignment);
        assert_eq!(qnet.conv_unit_host, net.conv_unit_host);
        assert!(qnet.replicas.keys().eq(net.replicas.keys()));
        for (i, (x, _)) in data.iter().take(6).enumerate() {
            assert_eq!(qnet.forward_quantized(x).data(), &baseline[i][..]);
        }
    }

    #[test]
    fn resynced_replicas_match_a_fresh_freeze() {
        // Under replica sharing the destination's new i8 replica must be
        // exactly the quantization of the f32 replica it adopted — i.e.
        // what QuantizedCnn::new would have produced had the node hosted
        // units at freeze time.
        let (mut net, data) = trained_setup(WeightUpdate::Independent, 24);
        let calibration: Vec<Tensor> = data.iter().take(8).map(|(x, _)| x.clone()).collect();
        let mut qnet = QuantizedCnn::new(&mut net, &calibration);

        let topo = grid_topology();
        let graph = net.config.unit_graph().unwrap();
        let down = vec![NodeId::new(4)];
        let (_, outcome) = plan_incremental(&graph, &topo, &net.assignment, &down, usize::MAX);
        apply_offline(&mut net, &graph, &outcome.migrations, &down);
        qnet.resync_placement(&net);

        for (node, qrep) in &qnet.replicas {
            let frep = &net.replicas[node];
            let (expect_w, _) = quantize_slice(frep.weights.data(), qnet.conv_weight_scale);
            assert_eq!(qrep.weights, expect_w, "node {node}");
        }
    }

    #[test]
    fn quantized_forward_is_reproducible() {
        let (mut net, data) = trained_setup(WeightUpdate::Independent, 21);
        let calibration: Vec<Tensor> = data.iter().take(8).map(|(x, _)| x.clone()).collect();
        let mut a = QuantizedCnn::new(&mut net, &calibration);
        let mut b = a.clone();
        for (x, _) in data.iter().take(10) {
            assert_eq!(a.forward_quantized(x).data(), b.forward_quantized(x).data());
        }
    }

    #[test]
    fn lossless_lossy_pass_is_bit_identical_to_plain_quantized() {
        for update in [WeightUpdate::Independent, WeightUpdate::PerUnit] {
            let (mut net, data) = trained_setup(update, 22);
            let calibration: Vec<Tensor> = data.iter().take(8).map(|(x, _)| x.clone()).collect();
            let mut a = QuantizedCnn::new(&mut net, &calibration);
            let mut b = a.clone();
            let topo = grid_topology();
            let mut rt = LossyRuntime::new(
                FaultPlan::lossless(),
                RecoveryPolicy::FailFast,
                &topo,
                SimDuration::from_millis(500),
            );
            for (x, _) in data.iter().take(10) {
                let plain = a.forward_quantized(x);
                let lossy = b
                    .forward_quantized_lossy(x, &mut rt)
                    .expect("lossless never aborts");
                assert_eq!(plain.data(), lossy.data(), "{update:?}");
                rt.advance_pass();
            }
        }
    }

    #[test]
    fn degraded_quantized_pass_never_aborts_and_is_reproducible() {
        let run = |mode| {
            let (mut net, data) = trained_setup(WeightUpdate::Independent, 23);
            let calibration: Vec<Tensor> = data.iter().take(8).map(|(x, _)| x.clone()).collect();
            let mut qnet = QuantizedCnn::new(&mut net, &calibration);
            let topo = grid_topology();
            let mut rt = LossyRuntime::new(
                FaultPlan::uniform(3, 0.2).unwrap(),
                RecoveryPolicy::Degrade { mode },
                &topo,
                SimDuration::from_millis(500),
            );
            let mut out = Vec::new();
            for (x, _) in data.iter().take(10) {
                let logits = qnet
                    .forward_quantized_lossy(x, &mut rt)
                    .expect("degrade never aborts");
                out.extend_from_slice(logits.data());
                rt.advance_pass();
            }
            assert!(rt.stats().degraded > 0, "{mode:?}");
            out
        };
        for mode in [DegradeMode::ZeroFill, DegradeMode::LastValueHold] {
            assert_eq!(run(mode), run(mode));
        }
    }

    #[test]
    fn fail_fast_aborts_under_certain_loss() {
        let (mut net, data) = trained_setup(WeightUpdate::Independent, 24);
        let calibration: Vec<Tensor> = data.iter().take(4).map(|(x, _)| x.clone()).collect();
        let mut qnet = QuantizedCnn::new(&mut net, &calibration);
        let topo = grid_topology();
        let mut rt = LossyRuntime::new(
            FaultPlan::uniform(1, 1.0).unwrap(),
            RecoveryPolicy::FailFast,
            &topo,
            SimDuration::from_millis(500),
        );
        assert!(qnet.forward_quantized_lossy(&data[0].0, &mut rt).is_none());
    }

    #[test]
    fn traced_quantized_pass_matches_untraced_and_emits_hop_spans() {
        use zeiot_core::time::SimTime;
        use zeiot_obs::trace::{ClockDomain, SpanEvent, SpanLayer, TraceSampler, Tracer};
        let (mut net, data) = trained_setup(WeightUpdate::Independent, 25);
        let calibration: Vec<Tensor> = data.iter().take(8).map(|(x, _)| x.clone()).collect();
        let mut a = QuantizedCnn::new(&mut net, &calibration);
        let mut b = a.clone();
        let topo = grid_topology();
        let mk = || {
            LossyRuntime::new(
                FaultPlan::uniform(7, 0.1).unwrap(),
                RecoveryPolicy::Degrade {
                    mode: DegradeMode::ZeroFill,
                },
                &topo,
                SimDuration::from_millis(500),
            )
        };
        let (mut rt_a, mut rt_b) = (mk(), mk());
        let mut tracer = Tracer::new(TraceSampler::always());
        let root = tracer
            .begin(0, 0, "serve.request", SpanLayer::Request, SimTime::ZERO)
            .unwrap();
        let mut scope = tracer.scope(0, 0, root).unwrap();
        let plain = a.forward_quantized_lossy(&data[0].0, &mut rt_a).unwrap();
        let traced = b
            .forward_quantized_lossy_traced(&data[0].0, &mut rt_b, Some(&mut scope))
            .unwrap();
        assert_eq!(plain.data(), traced.data());
        assert_eq!(*rt_a.stats(), *rt_b.stats());
        tracer.finish(0, 0, SimTime::ZERO);
        let trace = tracer.take_finished().remove(0);
        let hop_spans: Vec<_> = trace
            .spans
            .iter()
            .filter(|s| s.layer == SpanLayer::Hop)
            .collect();
        assert!(!hop_spans.is_empty(), "cross-node fetches must leave spans");
        assert!(hop_spans.iter().all(|s| s.clock == ClockDomain::Fabric));
        assert!(hop_spans.iter().any(|s| s.name.starts_with("hop.q")));
        let span_messages: u64 = hop_spans
            .iter()
            .flat_map(|s| &s.events)
            .map(|e| match e.event {
                SpanEvent::Messages { sent } => sent,
                _ => 0,
            })
            .sum();
        assert_eq!(span_messages, rt_b.stats().sent);
    }

    #[test]
    fn stats_reach_the_recorder() {
        let (mut net, data) = trained_setup(WeightUpdate::Independent, 26);
        let calibration: Vec<Tensor> = data.iter().take(4).map(|(x, _)| x.clone()).collect();
        let mut qnet = QuantizedCnn::new(&mut net, &calibration);
        for (x, _) in data.iter().take(5) {
            let _ = qnet.forward_quantized(x);
        }
        let mut rec = Recorder::new();
        qnet.stats().record_to(&mut rec, Label::Global);
        assert_eq!(rec.counter_value("quant.forwards", &Label::Global), 5);
    }

    #[test]
    fn serde_round_trip_preserves_the_quantized_model() {
        let (mut net, data) = trained_setup(WeightUpdate::Independent, 27);
        let calibration: Vec<Tensor> = data.iter().take(4).map(|(x, _)| x.clone()).collect();
        let mut qnet = QuantizedCnn::new(&mut net, &calibration);
        let json = serde_json::to_string(&qnet).unwrap();
        let mut restored: QuantizedCnn = serde_json::from_str(&json).unwrap();
        for (x, _) in data.iter().take(5) {
            assert_eq!(
                qnet.forward_quantized(x).data(),
                restored.forward_quantized(x).data()
            );
        }
    }

    #[test]
    fn received_value_requantization_is_total() {
        assert_eq!(requantize_received(5.0), 5);
        assert_eq!(requantize_received(5.4), 5);
        assert_eq!(requantize_received(-5.5), -6);
        assert_eq!(requantize_received(1e9), 127);
        assert_eq!(requantize_received(-1e9), -127);
        assert_eq!(requantize_received(f32::NAN), 0);
        assert_eq!(requantize_received(f32::INFINITY), 127);
    }
}
