//! Unit-to-node assignment.
//!
//! The paper compares (a) the best-accuracy standard CNN executed
//! centrally against (b) "heuristic assignment to maximize the
//! correspondence of CNN links and WSN links equalizing the number of
//! units assigned to each sensor node". Three strategies are provided:
//!
//! * [`Assignment::centralized`] — every computational unit on one sink
//!   node; sensors forward raw readings there. The communication-cost
//!   baseline (all traffic converges on the sink).
//! * [`Assignment::grid_projection`] — spatial units placed on the sensor
//!   nearest their receptive-field centroid (Fig. 8), dense units
//!   round-robin. Good locality, no load guarantee.
//! * [`Assignment::balanced_correspondence`] — the paper's heuristic:
//!   grid projection under a per-node unit cap of
//!   ⌈units/nodes⌉, followed by local-search sweeps that move units to
//!   cheaper nodes whenever it reduces their communication distance.
//!
//! Input units (sensor readings) are not assignable: each lives on the
//! sensor that produced it.

use serde::{Deserialize, Serialize};
use zeiot_core::geometry::Point2;
use zeiot_core::id::NodeId;
use zeiot_net::routing::RoutingTable;
use zeiot_net::topology::Topology;
use zeiot_nn::topology::UnitGraph;

/// A complete placement: hosts for the input layer (pinned to sensors)
/// and every computational unit.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Assignment {
    /// Host of each input unit.
    input_host: Vec<NodeId>,
    /// `unit_host[l][u]` = host of unit `u` in computational layer `l+1`.
    unit_host: Vec<Vec<NodeId>>,
    node_count: usize,
}

impl Assignment {
    /// Pins input units to sensors: spatial inputs to the nearest node of
    /// their grid position (scaled into the topology's bounding box),
    /// non-spatial inputs round-robin.
    fn input_hosts(graph: &UnitGraph, topo: &Topology) -> Vec<NodeId> {
        let bbox = bounding_box(topo);
        (0..graph.units_in_layer(0))
            .map(|i| match graph.input_position(i) {
                Some(p) => topo.nearest_node(scale_into(p, bbox)),
                None => NodeId::new((i % topo.len()) as u32),
            })
            .collect()
    }

    /// All computational units on `sink`; inputs stay on their sensors.
    pub fn centralized_at(graph: &UnitGraph, topo: &Topology, sink: NodeId) -> Self {
        assert!(sink.index() < topo.len(), "sink out of range");
        let unit_host = (1..graph.layer_count())
            .map(|l| vec![sink; graph.units_in_layer(l)])
            .collect();
        Self {
            input_host: Self::input_hosts(graph, topo),
            unit_host,
            node_count: topo.len(),
        }
    }

    /// [`Assignment::centralized_at`] with node 0 as the sink.
    pub fn centralized(graph: &UnitGraph, topo: &Topology) -> Self {
        Self::centralized_at(graph, topo, NodeId::new(0))
    }

    /// Spatial units to the nearest sensor, dense units round-robin — no
    /// load cap.
    pub fn grid_projection(graph: &UnitGraph, topo: &Topology) -> Self {
        let bbox = bounding_box(topo);
        let mut unit_host = Vec::with_capacity(graph.layer_count() - 1);
        let mut rr = 0usize;
        for l in 1..graph.layer_count() {
            let mut layer = Vec::with_capacity(graph.units_in_layer(l));
            for u in 0..graph.units_in_layer(l) {
                let host = match graph.position(l, u) {
                    Some(p) => topo.nearest_node(scale_into(p, bbox)),
                    None => {
                        let id = NodeId::new((rr % topo.len()) as u32);
                        rr += 1;
                        id
                    }
                };
                layer.push(host);
            }
            unit_host.push(layer);
        }
        Self {
            input_host: Self::input_hosts(graph, topo),
            unit_host,
            node_count: topo.len(),
        }
    }

    /// The paper's heuristic: locality-first placement under a per-node
    /// cap of ⌈total units / nodes⌉, then local-search sweeps that move
    /// each unit to the candidate node minimizing its total hop distance
    /// to its producers and consumers.
    pub fn balanced_correspondence(graph: &UnitGraph, topo: &Topology) -> Self {
        Self::balanced_correspondence_threaded(graph, topo, 1)
    }

    /// [`Assignment::balanced_correspondence`] with the local search's
    /// candidate scoring fanned out over `threads` workers (`0` meaning
    /// available parallelism).
    ///
    /// Only the *scoring* of move candidates runs concurrently — every
    /// candidate is evaluated against the same immutable assignment,
    /// routing table, and load vector, and the winning move is applied
    /// serially. Because serial and parallel paths score the same
    /// candidate set and select by the same total order (cost, then node
    /// id), the accepted-move sequence — and therefore the returned
    /// assignment — is identical for every thread count.
    pub fn balanced_correspondence_threaded(
        graph: &UnitGraph,
        topo: &Topology,
        threads: usize,
    ) -> Self {
        let routes = RoutingTable::shortest_paths(topo);
        let cap = graph.total_units().div_ceil(topo.len());
        let bbox = bounding_box(topo);
        let input_host = Self::input_hosts(graph, topo);
        let mut load = vec![0usize; topo.len()];
        let mut unit_host: Vec<Vec<NodeId>> = Vec::with_capacity(graph.layer_count() - 1);

        // Pass 1: locality-greedy placement under the cap. Spatial units
        // go to the sensor nearest their receptive field. Dense units
        // read the *entire* previous layer, so their message count is the
        // same wherever they live — what matters for the maximal per-node
        // cost is spreading them, hence round-robin.
        let mut rr = 0usize;
        for l in 1..graph.layer_count() {
            let mut layer = Vec::with_capacity(graph.units_in_layer(l));
            for u in 0..graph.units_in_layer(l) {
                let preferred = match graph.position(l, u) {
                    Some(p) => topo.nearest_node(scale_into(p, bbox)),
                    None => {
                        // Round-robin over nodes, skipping full ones.
                        let n = topo.len();
                        let mut chosen = NodeId::new((rr % n) as u32);
                        for probe in 0..n {
                            let candidate = NodeId::new(((rr + probe) % n) as u32);
                            if load[candidate.index()] < cap {
                                chosen = candidate;
                                rr += probe + 1;
                                break;
                            }
                        }
                        chosen
                    }
                };
                let host = if load[preferred.index()] < cap {
                    preferred
                } else {
                    // Nearest (by hops) node with spare capacity.
                    topo.node_ids()
                        .filter(|n| load[n.index()] < cap)
                        .min_by_key(|n| {
                            (
                                routes.hop_distance(preferred, *n).unwrap_or(usize::MAX),
                                n.raw(),
                            )
                        })
                        .unwrap_or(preferred)
                };
                load[host.index()] += 1;
                layer.push(host);
            }
            unit_host.push(layer);
        }

        let mut assignment = Self {
            input_host,
            unit_host,
            node_count: topo.len(),
        };

        // Pass 2: local-search sweeps under the cap. Only spatial units
        // move — a dense unit's traffic is placement-invariant, and
        // letting it chase its producers would re-concentrate load.
        //
        // Candidate *scoring* is side-effect free (it reads the frozen
        // assignment and routing table), so it fans out across threads;
        // the *move* — the only mutation — is applied serially. Selection
        // uses a total order (cost, then node id) so the accepted-move
        // sequence does not depend on scoring order or thread count.
        let threads = if threads == 0 {
            rayon::current_num_threads()
        } else {
            threads
        };
        let consumers = reverse_dependencies(graph);
        for _sweep in 0..3 {
            let mut improved = false;
            for l in 1..graph.layer_count() {
                // `u` addresses four structures of different shapes;
                // iterating any one of them would obscure that.
                #[allow(clippy::needless_range_loop)]
                for u in 0..graph.units_in_layer(l) {
                    if graph.position(l, u).is_none() {
                        continue;
                    }
                    let current = assignment.unit_host[l - 1][u];
                    let cost_at = |candidate: NodeId, asg: &Assignment| -> usize {
                        let mut c = 0;
                        for &d in graph.dependencies(l, u) {
                            let src = asg.host_of(l - 1, d);
                            c += routes.hop_distance(src, candidate).unwrap_or(1_000);
                        }
                        if l + 1 < graph.layer_count() {
                            for &k in &consumers[l - 1][u] {
                                let dst = asg.unit_host[l][k];
                                c += routes.hop_distance(candidate, dst).unwrap_or(1_000);
                            }
                        }
                        c
                    };
                    let current_cost = cost_at(current, &assignment);
                    // Candidates: current node's neighbourhood plus the
                    // hosts of this unit's producers, minus full nodes.
                    let mut candidates: Vec<NodeId> = topo.neighbors(current).to_vec();
                    for &d in graph.dependencies(l, u) {
                        candidates.push(assignment.host_of(l - 1, d));
                    }
                    candidates.sort_unstable();
                    candidates.dedup();
                    candidates.retain(|&c| c != current && load[c.index()] < cap);

                    let mut costs = vec![0usize; candidates.len()];
                    if threads > 1 && candidates.len() > 1 {
                        let frozen = &assignment;
                        rayon::scope(|s| {
                            for (slot, &cand) in costs.iter_mut().zip(&candidates) {
                                let cost_at = &cost_at;
                                s.spawn(move |_| *slot = cost_at(cand, frozen));
                            }
                        });
                    } else {
                        for (slot, &cand) in costs.iter_mut().zip(&candidates) {
                            *slot = cost_at(cand, &assignment);
                        }
                    }
                    let best = candidates
                        .iter()
                        .zip(&costs)
                        .filter(|&(_, &cost)| cost < current_cost)
                        .min_by_key(|&(cand, &cost)| (cost, cand.raw()));
                    if let Some((&cand, _)) = best {
                        load[current.index()] -= 1;
                        load[cand.index()] += 1;
                        assignment.unit_host[l - 1][u] = cand;
                        improved = true;
                    }
                }
            }
            if !improved {
                break;
            }
        }
        assignment
    }

    /// Number of nodes in the hosting topology.
    pub fn node_count(&self) -> usize {
        self.node_count
    }

    /// Host of a unit; `layer` 0 addresses input units.
    ///
    /// # Panics
    ///
    /// Panics if the layer or unit index is out of range.
    pub fn host_of(&self, layer: usize, unit: usize) -> NodeId {
        if layer == 0 {
            self.input_host[unit]
        } else {
            self.unit_host[layer - 1][unit]
        }
    }

    /// Overrides the host of a computational unit (used by resilience
    /// re-assignment).
    ///
    /// # Panics
    ///
    /// Panics if `layer` is 0 (input units are pinned) or out of range.
    pub fn set_host(&mut self, layer: usize, unit: usize, host: NodeId) {
        assert!(layer >= 1, "input units are pinned to their sensors");
        self.unit_host[layer - 1][unit] = host;
    }

    /// Number of computational layers (excluding input).
    pub fn layer_count(&self) -> usize {
        self.unit_host.len() + 1
    }

    /// Units per computational layer: `layer_sizes()[l]` is the number of
    /// units in layer `l + 1` (what a deserialized placement is checked
    /// against the config's unit graph with).
    pub fn layer_sizes(&self) -> Vec<usize> {
        self.unit_host.iter().map(Vec::len).collect()
    }

    /// Number of input units.
    pub fn input_count(&self) -> usize {
        self.input_host.len()
    }

    /// Units hosted per node (computational units only).
    pub fn units_per_node(&self) -> Vec<usize> {
        let mut counts = vec![0usize; self.node_count];
        for layer in &self.unit_host {
            for host in layer {
                counts[host.index()] += 1;
            }
        }
        counts
    }

    /// The largest per-node unit load.
    pub fn max_units_per_node(&self) -> usize {
        self.units_per_node().into_iter().max().unwrap_or(0)
    }

    /// Total computational units assigned.
    pub fn total_units(&self) -> usize {
        self.unit_host.iter().map(Vec::len).sum()
    }

    /// Whether the load respects `cap` everywhere.
    pub fn is_balanced(&self, cap: usize) -> bool {
        self.units_per_node().into_iter().all(|c| c <= cap)
    }

    /// Nodes hosting at least one computational unit.
    pub fn active_nodes(&self) -> Vec<NodeId> {
        self.units_per_node()
            .into_iter()
            .enumerate()
            .filter(|&(_, c)| c > 0)
            .map(|(i, _)| NodeId::new(i as u32))
            .collect()
    }
}

/// `consumers[l][p]` = units of layer `l+1` reading unit `p` of layer
/// `l`, for **every** value-producing layer including the input layer —
/// the edge relation [`crate::cost::CostModel`] traverses. Dependency
/// lists may contain duplicates; each occurrence is one edge here.
pub(crate) fn producer_consumers(graph: &UnitGraph) -> Vec<Vec<Vec<usize>>> {
    let mut consumers: Vec<Vec<Vec<usize>>> = (0..graph.layer_count() - 1)
        .map(|l| vec![Vec::new(); graph.units_in_layer(l)])
        .collect();
    for l in 1..graph.layer_count() {
        for u in 0..graph.units_in_layer(l) {
            for &d in graph.dependencies(l, u) {
                consumers[l - 1][d].push(u);
            }
        }
    }
    consumers
}

/// `consumers[l][u]` = units of layer `l+2` reading unit `u` of layer
/// `l+1` (reverse of the dependency relation, computational layers only).
pub(crate) fn reverse_dependencies(graph: &UnitGraph) -> Vec<Vec<Vec<usize>>> {
    let mut consumers: Vec<Vec<Vec<usize>>> = (1..graph.layer_count())
        .map(|l| vec![Vec::new(); graph.units_in_layer(l)])
        .collect();
    for l in 2..graph.layer_count() {
        for u in 0..graph.units_in_layer(l) {
            for &d in graph.dependencies(l, u) {
                consumers[l - 2][d].push(u);
            }
        }
    }
    consumers
}

fn bounding_box(topo: &Topology) -> (Point2, Point2) {
    let mut min = Point2::new(f64::INFINITY, f64::INFINITY);
    let mut max = Point2::new(f64::NEG_INFINITY, f64::NEG_INFINITY);
    for p in topo.positions() {
        min.x = min.x.min(p.x);
        min.y = min.y.min(p.y);
        max.x = max.x.max(p.x);
        max.y = max.y.max(p.y);
    }
    (min, max)
}

fn scale_into(normalized: (f64, f64), bbox: (Point2, Point2)) -> Point2 {
    let (min, max) = bbox;
    Point2::new(
        min.x + normalized.0 * (max.x - min.x),
        min.y + normalized.1 * (max.y - min.y),
    )
}

#[cfg(test)]
mod proptests {
    use super::*;
    use crate::config::CnnConfig;
    use proptest::prelude::*;
    use zeiot_core::rng::SeedRng;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]
        #[test]
        fn balanced_assignment_invariants_on_random_topologies(
            seed in 0u64..500,
            n in 6usize..30,
        ) {
            let config = CnnConfig::new(1, 6, 6, 2, 3, 2, 8, 2).unwrap();
            let graph = config.unit_graph().unwrap();
            let mut rng = SeedRng::new(seed);
            let topo = zeiot_net::Topology::random(n, 10.0, 10.0, 5.0, &mut rng).unwrap();
            let a = Assignment::balanced_correspondence(&graph, &topo);
            // Every unit hosted on a valid node.
            for l in 1..graph.layer_count() {
                for u in 0..graph.units_in_layer(l) {
                    prop_assert!(a.host_of(l, u).index() < topo.len());
                }
            }
            // Load cap respected.
            let cap = graph.total_units().div_ceil(topo.len());
            prop_assert!(a.is_balanced(cap), "loads {:?}", a.units_per_node());
            // Totals conserved.
            prop_assert_eq!(a.total_units(), graph.total_units());
            prop_assert_eq!(
                a.units_per_node().iter().sum::<usize>(),
                graph.total_units()
            );
        }

        #[test]
        fn input_units_are_pinned_to_their_nearest_sensor(
            seed in 0u64..500,
            n in 6usize..30,
        ) {
            let config = CnnConfig::new(1, 6, 6, 2, 3, 2, 8, 2).unwrap();
            let graph = config.unit_graph().unwrap();
            let mut rng = SeedRng::new(seed);
            let topo = zeiot_net::Topology::random(n, 10.0, 10.0, 5.0, &mut rng).unwrap();
            let bbox = bounding_box(&topo);
            // Every strategy pins inputs the same way; check one of each.
            let balanced = Assignment::balanced_correspondence(&graph, &topo);
            let central = Assignment::centralized(&graph, &topo);
            for i in 0..graph.units_in_layer(0) {
                let Some(p) = graph.input_position(i) else { continue };
                let scaled = scale_into(p, bbox);
                let host = balanced.host_of(0, i);
                prop_assert_eq!(host, central.host_of(0, i));
                let d_host = topo.position(host).distance(scaled);
                for other in topo.node_ids() {
                    prop_assert!(
                        d_host <= topo.position(other).distance(scaled) + 1e-9,
                        "input {} hosted on {:?}, but {:?} is closer",
                        i, host, other
                    );
                }
            }
        }

        #[test]
        fn balanced_max_load_never_exceeds_grid_projection_load(
            seed in 0u64..500,
            n in 6usize..30,
        ) {
            // Pigeonhole: grid projection places units with no cap, so
            // its largest per-node load is at least ⌈units/nodes⌉ — the
            // very cap the balanced heuristic enforces.
            let config = CnnConfig::new(1, 6, 6, 2, 3, 2, 8, 2).unwrap();
            let graph = config.unit_graph().unwrap();
            let mut rng = SeedRng::new(seed);
            let topo = zeiot_net::Topology::random(n, 10.0, 10.0, 5.0, &mut rng).unwrap();
            let balanced = Assignment::balanced_correspondence(&graph, &topo);
            let grid = Assignment::grid_projection(&graph, &topo);
            prop_assert!(
                balanced.max_units_per_node() <= grid.max_units_per_node(),
                "balanced load {} > grid-projection load {}",
                balanced.max_units_per_node(), grid.max_units_per_node()
            );
        }

        #[test]
        fn balanced_peak_traffic_beats_centralized_on_grid_deployments(
            rows in 3usize..8,
            cols in 3usize..7,
            half_field in 3usize..7,
        ) {
            // The paper's headline on its grid deployments: spreading
            // units strictly reduces the maximal per-node traffic below
            // the all-on-one-sink baseline. (On arbitrary random meshes
            // relay hubs can break this; the claim is about the
            // deployment class the paper evaluates.)
            let field = 2 * half_field; // 3×3 conv output is field−2: even
            let config = CnnConfig::new(1, field, field, 2, 3, 2, 8, 2).unwrap();
            let graph = config.unit_graph().unwrap();
            let topo = zeiot_net::Topology::grid(rows, cols, 2.0, 3.0).unwrap();
            let cost = crate::cost::CostModel::new(&topo);
            let central = cost
                .forward_cost(&graph, &Assignment::centralized(&graph, &topo))
                .max_cost();
            let balanced = cost
                .forward_cost(&graph, &Assignment::balanced_correspondence(&graph, &topo))
                .max_cost();
            prop_assert!(
                balanced < central,
                "balanced peak {} >= centralized peak {}",
                balanced, central
            );
        }

        #[test]
        fn grid_projection_places_spatial_units_near_their_field(
            side in 3usize..7,
        ) {
            let config = CnnConfig::new(1, 8, 8, 2, 3, 2, 8, 2).unwrap();
            let graph = config.unit_graph().unwrap();
            let topo = zeiot_net::Topology::grid(side, side, 2.0, 3.0).unwrap();
            let a = Assignment::grid_projection(&graph, &topo);
            // Every conv unit's host is the nearest node to its scaled
            // position by construction — verify the distance is minimal.
            for u in 0..graph.units_in_layer(1) {
                let (px, py) = graph.position(1, u).unwrap();
                let extent = (side - 1) as f64 * 2.0;
                let p = zeiot_core::geometry::Point2::new(px * extent, py * extent);
                let host = a.host_of(1, u);
                let d_host = topo.position(host).distance(p);
                for other in topo.node_ids() {
                    prop_assert!(
                        d_host <= topo.position(other).distance(p) + 1e-9
                    );
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::CnnConfig;

    fn setup() -> (UnitGraph, Topology) {
        let config = CnnConfig::new(1, 8, 8, 4, 3, 2, 16, 2).unwrap();
        let graph = config.unit_graph().unwrap();
        let topo = Topology::grid(4, 4, 2.0, 3.0).unwrap();
        (graph, topo)
    }

    #[test]
    fn centralized_puts_all_units_on_sink() {
        let (graph, topo) = setup();
        let a = Assignment::centralized(&graph, &topo);
        for l in 1..graph.layer_count() {
            for u in 0..graph.units_in_layer(l) {
                assert_eq!(a.host_of(l, u), NodeId::new(0));
            }
        }
        assert_eq!(a.max_units_per_node(), graph.total_units());
    }

    #[test]
    fn input_units_are_spread_over_sensors() {
        let (graph, topo) = setup();
        let a = Assignment::centralized(&graph, &topo);
        let mut hosts: Vec<NodeId> = (0..graph.units_in_layer(0))
            .map(|i| a.host_of(0, i))
            .collect();
        hosts.sort_unstable();
        hosts.dedup();
        // An 8×8 sensing grid over 16 nodes: every node hosts inputs.
        assert_eq!(hosts.len(), topo.len());
    }

    #[test]
    fn grid_projection_respects_locality() {
        let (graph, topo) = setup();
        let a = Assignment::grid_projection(&graph, &topo);
        // A conv unit at the top-left reads inputs hosted at the top-left
        // corner node; it should be placed at (or adjacent to) it.
        let unit_host = a.host_of(1, 0);
        let input_host = a.host_of(0, 0);
        let d = topo.distance(unit_host, input_host);
        assert!(d <= topo.range_m() + 1e-9, "unit far from its inputs: {d}");
    }

    #[test]
    fn balanced_assignment_respects_cap() {
        let (graph, topo) = setup();
        let a = Assignment::balanced_correspondence(&graph, &topo);
        let cap = graph.total_units().div_ceil(topo.len());
        assert!(a.is_balanced(cap), "loads: {:?}", a.units_per_node());
        assert_eq!(a.total_units(), graph.total_units());
    }

    #[test]
    fn balanced_is_flatter_than_centralized() {
        let (graph, topo) = setup();
        let central = Assignment::centralized(&graph, &topo);
        let balanced = Assignment::balanced_correspondence(&graph, &topo);
        assert!(balanced.max_units_per_node() < central.max_units_per_node() / 4);
    }

    #[test]
    fn every_unit_assigned_exactly_once() {
        let (graph, topo) = setup();
        for a in [
            Assignment::centralized(&graph, &topo),
            Assignment::grid_projection(&graph, &topo),
            Assignment::balanced_correspondence(&graph, &topo),
        ] {
            assert_eq!(a.total_units(), graph.total_units());
            assert_eq!(a.layer_count(), graph.layer_count());
            for l in 1..graph.layer_count() {
                for u in 0..graph.units_in_layer(l) {
                    assert!(a.host_of(l, u).index() < topo.len());
                }
            }
        }
    }

    #[test]
    fn reverse_dependencies_are_consistent() {
        let (graph, _) = setup();
        let consumers = reverse_dependencies(&graph);
        for l in 2..graph.layer_count() {
            for u in 0..graph.units_in_layer(l) {
                for &d in graph.dependencies(l, u) {
                    assert!(consumers[l - 2][d].contains(&u));
                }
            }
        }
    }

    #[test]
    fn set_host_moves_unit() {
        let (graph, topo) = setup();
        let mut a = Assignment::centralized(&graph, &topo);
        a.set_host(1, 0, NodeId::new(5));
        assert_eq!(a.host_of(1, 0), NodeId::new(5));
    }

    #[test]
    #[should_panic]
    fn set_host_rejects_input_layer() {
        let (graph, topo) = setup();
        let mut a = Assignment::centralized(&graph, &topo);
        a.set_host(0, 0, NodeId::new(5));
    }

    #[test]
    fn active_nodes_of_balanced_covers_network() {
        let (graph, topo) = setup();
        let a = Assignment::balanced_correspondence(&graph, &topo);
        // 238 units over 16 nodes: everyone works.
        assert_eq!(a.active_nodes().len(), topo.len());
    }

    #[test]
    fn deterministic_assignments() {
        let (graph, topo) = setup();
        let a = Assignment::balanced_correspondence(&graph, &topo);
        let b = Assignment::balanced_correspondence(&graph, &topo);
        assert_eq!(a, b);
    }
}
