//! Communication-cost evaluation of an assignment.
//!
//! The paper counts communication at *CNN-link* granularity: every edge
//! of the unit graph whose endpoints live on different nodes costs one
//! message per pass (that is why the heuristic "maximize\[s\] the
//! correspondence of CNN links and WSN links" — a CNN link mapped onto a
//! WSN link, or better onto a single node, is cheap). With this counting
//! the centralized baseline is brutally expensive: the sink receives one
//! copy of each input value *per consuming unit*, which is exactly the
//! "peak traffic concentrated onto a single node" the paper's MicroDeep
//! reduces to ~13 %.
//!
//! [`CostModel::forward_cost_cached`] additionally implements node-level
//! value caching (each value crosses to a given consumer node once, no
//! matter how many of its units read it) — a natural systems optimization
//! ablated in the benches.

use crate::assignment::{producer_consumers, Assignment};
use std::collections::BTreeSet;
use zeiot_net::routing::RoutingTable;
use zeiot_net::topology::Topology;
use zeiot_net::traffic::TrafficLedger;
use zeiot_nn::topology::UnitGraph;

/// Evaluates per-node communication costs of assignments over a fixed
/// topology. See the crate-level example.
#[derive(Debug)]
pub struct CostModel {
    routes: RoutingTable,
    node_count: usize,
}

impl CostModel {
    /// Builds the cost model (computes all-pairs routes once).
    pub fn new(topo: &Topology) -> Self {
        Self {
            routes: RoutingTable::shortest_paths(topo),
            node_count: topo.len(),
        }
    }

    /// Traffic of one forward pass at CNN-link granularity (the paper's
    /// counting): each dependency edge whose producer and consumer live
    /// on different nodes costs one message over the mesh route.
    pub fn forward_cost(&self, graph: &UnitGraph, assignment: &Assignment) -> TrafficLedger {
        self.forward_traffic(graph, assignment, false)
    }

    /// Forward-pass traffic with node-level value caching: a producing
    /// node sends each value at most once per consumer *node* (ablation:
    /// how much a value cache would save each strategy).
    pub fn forward_cost_cached(&self, graph: &UnitGraph, assignment: &Assignment) -> TrafficLedger {
        self.forward_traffic(graph, assignment, true)
    }

    /// The single forward-pass edge traversal behind [`Self::forward_cost`]
    /// and [`Self::forward_cost_cached`]: walk every value-producing unit
    /// and its consumers exactly once, counting either one message per
    /// cross-node dependency edge (`cache_per_node == false`, the paper's
    /// counting) or one message per distinct consumer node
    /// (`cache_per_node == true`, the value-cache ablation). Sharing the
    /// traversal keeps the two costings from ever drifting apart in which
    /// edges they see — `forward_implementations_agree` locks in the
    /// equality against an independent consumer-side reference.
    fn forward_traffic(
        &self,
        graph: &UnitGraph,
        assignment: &Assignment,
        cache_per_node: bool,
    ) -> TrafficLedger {
        let consumers = producer_consumers(graph);
        let mut ledger = TrafficLedger::new(self.node_count);
        for (l, layer) in consumers.iter().enumerate() {
            for (p, unit_consumers) in layer.iter().enumerate() {
                let src = assignment.host_of(l, p);
                if cache_per_node {
                    let dest_nodes: BTreeSet<_> = unit_consumers
                        .iter()
                        .map(|&u| assignment.host_of(l + 1, u))
                        .filter(|&dst| dst != src)
                        .collect();
                    for dst in dest_nodes {
                        ledger.send(&self.routes, src, dst, 1);
                    }
                } else {
                    for &u in unit_consumers {
                        let dst = assignment.host_of(l + 1, u);
                        if dst != src {
                            ledger.send(&self.routes, src, dst, 1);
                        }
                    }
                }
            }
        }
        ledger
    }

    /// Traffic of one backward pass: one error term per cross-node
    /// dependency edge, flowing consumer → producer.
    pub fn backward_cost(&self, graph: &UnitGraph, assignment: &Assignment) -> TrafficLedger {
        let mut ledger = TrafficLedger::new(self.node_count);
        for l in 1..graph.layer_count() {
            for u in 0..graph.units_in_layer(l) {
                let src = assignment.host_of(l, u);
                for &d in graph.dependencies(l, u) {
                    let dst = assignment.host_of(l - 1, d);
                    if dst != src {
                        ledger.send(&self.routes, src, dst, 1);
                    }
                }
            }
        }
        ledger
    }

    /// Combined cost of one training step (forward + backward).
    pub fn training_step_cost(&self, graph: &UnitGraph, assignment: &Assignment) -> TrafficLedger {
        let fwd = self.forward_cost(graph, assignment);
        let bwd = self.backward_cost(graph, assignment);
        merged_ledger(self.node_count, &fwd, &bwd)
    }

    /// Ratio of an assignment's maximal per-node cost to a baseline's —
    /// the paper reports MicroDeep at "just 13 %" of the standard
    /// version's peak traffic in the temperature experiment.
    ///
    /// Returns `None` when the baseline generates no traffic at all (a
    /// single-node topology hosts every unit locally), since the ratio is
    /// undefined there — the old behaviour of reporting `0.0` silently
    /// claimed a free assignment against a free baseline.
    pub fn peak_cost_ratio(
        &self,
        graph: &UnitGraph,
        assignment: &Assignment,
        baseline: &Assignment,
    ) -> Option<f64> {
        let a = self.forward_cost(graph, assignment).max_cost();
        let b = self.forward_cost(graph, baseline).max_cost();
        if b == 0 {
            None
        } else {
            Some(a as f64 / b as f64)
        }
    }
}

/// Merges two ledgers by per-node totals.
fn merged_ledger(n: usize, a: &TrafficLedger, b: &TrafficLedger) -> TrafficLedger {
    let mut merged = TrafficLedger::new(n);
    for i in 0..n {
        let node = zeiot_core::id::NodeId::new(i as u32);
        merged.add_raw(node, a.tx(node) + b.tx(node), a.rx(node) + b.rx(node));
    }
    merged
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::CnnConfig;
    use zeiot_core::id::NodeId;

    fn setup() -> (UnitGraph, Topology) {
        let config = CnnConfig::new(1, 8, 8, 4, 3, 2, 16, 2).unwrap();
        (
            config.unit_graph().unwrap(),
            Topology::grid(4, 4, 2.0, 3.0).unwrap(),
        )
    }

    #[test]
    fn centralized_concentrates_cost_on_sink() {
        let (graph, topo) = setup();
        let a = Assignment::centralized(&graph, &topo);
        let cost = CostModel::new(&topo).forward_cost(&graph, &a);
        let sink_cost = cost.cost(NodeId::new(0));
        assert_eq!(cost.max_cost(), sink_cost);
        assert!(sink_cost > 0);
    }

    #[test]
    fn balanced_reduces_peak_cost() {
        let (graph, topo) = setup();
        let model = CostModel::new(&topo);
        let central = Assignment::centralized(&graph, &topo);
        let balanced = Assignment::balanced_correspondence(&graph, &topo);
        let c_central = model.forward_cost(&graph, &central);
        let c_balanced = model.forward_cost(&graph, &balanced);
        assert!(
            c_balanced.max_cost() < c_central.max_cost(),
            "balanced {} vs central {}",
            c_balanced.max_cost(),
            c_central.max_cost()
        );
    }

    #[test]
    fn peak_cost_ratio_is_fractional() {
        let (graph, topo) = setup();
        let model = CostModel::new(&topo);
        let central = Assignment::centralized(&graph, &topo);
        let balanced = Assignment::balanced_correspondence(&graph, &topo);
        let ratio = model
            .peak_cost_ratio(&graph, &balanced, &central)
            .expect("centralized baseline has traffic");
        assert!(ratio > 0.0 && ratio < 1.0, "ratio={ratio}");
    }

    #[test]
    fn peak_cost_ratio_on_single_node_topology_is_none() {
        // Regression: one node hosts everything, so neither assignment
        // sends a single message and the ratio used to come back as a
        // misleading 0.0. It is undefined, and now says so.
        let config = CnnConfig::new(1, 6, 6, 2, 3, 2, 8, 2).unwrap();
        let graph = config.unit_graph().unwrap();
        let topo = Topology::grid(1, 1, 2.0, 3.0).unwrap();
        let model = CostModel::new(&topo);
        let central = Assignment::centralized(&graph, &topo);
        let balanced = Assignment::balanced_correspondence(&graph, &topo);
        assert_eq!(model.forward_cost(&graph, &central).max_cost(), 0);
        assert_eq!(model.peak_cost_ratio(&graph, &balanced, &central), None);
    }

    #[test]
    fn per_edge_counting_charges_every_cross_node_edge() {
        // Centralized sink: every conv unit reads its inputs from the
        // sensors, one message per edge (no caching).
        let (graph, topo) = setup();
        let a = Assignment::centralized(&graph, &topo);
        let cost = CostModel::new(&topo).forward_cost(&graph, &a);
        let expected: u64 = (0..graph.units_in_layer(1))
            .map(|u| {
                graph
                    .dependencies(1, u)
                    .iter()
                    .filter(|&&d| a.host_of(0, d) != NodeId::new(0))
                    .count() as u64
            })
            .sum();
        assert_eq!(cost.rx(NodeId::new(0)), expected);
        assert!(expected > 500, "expected large sink load, got {expected}");
    }

    /// Dependency-side reference costing: one message per cross-node
    /// dependency edge, walked consumer-first — the pre-refactor
    /// `forward_cost` traversal, kept as an independent oracle.
    fn forward_cost_reference(
        model: &CostModel,
        graph: &UnitGraph,
        assignment: &Assignment,
    ) -> TrafficLedger {
        let mut ledger = TrafficLedger::new(model.node_count);
        for l in 1..graph.layer_count() {
            for u in 0..graph.units_in_layer(l) {
                let dst = assignment.host_of(l, u);
                for &d in graph.dependencies(l, u) {
                    let src = assignment.host_of(l - 1, d);
                    if src != dst {
                        ledger.send(&model.routes, src, dst, 1);
                    }
                }
            }
        }
        ledger
    }

    #[test]
    fn forward_implementations_agree() {
        // The unified producer-side traversal must charge exactly the
        // edges the consumer-side reference charges — on structured
        // strategies and on fully randomized assignments.
        let (graph, topo) = setup();
        let model = CostModel::new(&topo);
        let mut rng = zeiot_core::rng::SeedRng::new(4242);
        let mut assignments = vec![
            Assignment::centralized(&graph, &topo),
            Assignment::grid_projection(&graph, &topo),
            Assignment::balanced_correspondence(&graph, &topo),
        ];
        for _ in 0..10 {
            let mut random = Assignment::centralized(&graph, &topo);
            for l in 1..graph.layer_count() {
                for u in 0..graph.units_in_layer(l) {
                    random.set_host(l, u, NodeId::new(rng.below(topo.len()) as u32));
                }
            }
            assignments.push(random);
        }
        for a in &assignments {
            assert_eq!(
                model.forward_cost(&graph, a),
                forward_cost_reference(&model, &graph, a),
            );
            // The cached path walks the same edges; deduplication can
            // only remove sends, never add or reroute them.
            let cached = model.forward_cost_cached(&graph, a);
            let plain = model.forward_cost(&graph, a);
            assert!(cached.total_cost() <= plain.total_cost());
        }
    }

    #[test]
    fn caching_never_costs_more() {
        let (graph, topo) = setup();
        let model = CostModel::new(&topo);
        for a in [
            Assignment::centralized(&graph, &topo),
            Assignment::grid_projection(&graph, &topo),
            Assignment::balanced_correspondence(&graph, &topo),
        ] {
            let plain = model.forward_cost(&graph, &a);
            let cached = model.forward_cost_cached(&graph, &a);
            assert!(cached.total_cost() <= plain.total_cost());
            assert!(cached.max_cost() <= plain.max_cost());
        }
    }

    #[test]
    fn caching_helps_centralized_most() {
        let (graph, topo) = setup();
        let model = CostModel::new(&topo);
        let central = Assignment::centralized(&graph, &topo);
        let plain = model.forward_cost(&graph, &central).max_cost() as f64;
        let cached = model.forward_cost_cached(&graph, &central).max_cost() as f64;
        // Each input feeds up to 9 conv units: caching saves ~9x.
        assert!(cached < plain / 4.0, "plain={plain} cached={cached}");
    }

    #[test]
    fn colocated_units_communicate_free() {
        let (graph, topo) = setup();
        let a = Assignment::centralized_at(&graph, &topo, NodeId::new(5));
        let cost = CostModel::new(&topo).forward_cost(&graph, &a);
        // Node 5 transmits nothing: everything it produces is consumed
        // locally.
        assert_eq!(cost.tx(NodeId::new(5)), 0);
        assert!(cost.rx(NodeId::new(5)) > 0);
    }

    #[test]
    fn backward_cost_mirrors_forward() {
        let (graph, topo) = setup();
        let model = CostModel::new(&topo);
        let a = Assignment::balanced_correspondence(&graph, &topo);
        let fwd = model.forward_cost(&graph, &a);
        let bwd = model.backward_cost(&graph, &a);
        // Per-edge counting is symmetric in total: hop distances are
        // symmetric even though BFS relay choices may differ per
        // direction.
        assert_eq!(fwd.total_cost(), bwd.total_cost());
    }

    #[test]
    fn training_step_cost_is_sum_of_passes() {
        let (graph, topo) = setup();
        let model = CostModel::new(&topo);
        let a = Assignment::balanced_correspondence(&graph, &topo);
        let fwd = model.forward_cost(&graph, &a);
        let bwd = model.backward_cost(&graph, &a);
        let step = model.training_step_cost(&graph, &a);
        assert_eq!(step.total_cost(), fwd.total_cost() + bwd.total_cost());
        for i in 0..topo.len() {
            let n = NodeId::new(i as u32);
            assert_eq!(step.cost(n), fwd.cost(n) + bwd.cost(n));
        }
    }
}
