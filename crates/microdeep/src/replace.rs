//! Runtime re-placement: fault/brownout-driven "musical chairs".
//!
//! The planner solves placement once, offline; `zeiot-fault` outage
//! windows and `zeiot-energy` brownout traces then degrade it at
//! runtime while the assignment stands still. This module closes the
//! loop (paper §V; PAPERS.md "Musical Chair", "Dynamic Distribution of
//! Edge Intelligence at the Node Level"): a [`ReplacementEngine`] polls
//! node liveness through [`zeiot_fault::FaultPlan::down_set_at`] — a
//! point query that consumes no per-message fault coordinates — and on
//! each **epoch of change** (the down-set differs from the previous
//! poll) runs a warm-started incremental local search from the
//! *current* assignment under a bounded migration budget.
//!
//! **State handoff is radio traffic.** A migrated conv unit needs its
//! kernel replica on the destination node; dense units need their
//! weight rows. The engine ships that state as frames over the same
//! [`LossyRuntime`] fabric the activations ride — hop-weighted exactly
//! like [`crate::cost::CostModel`] counts messages — so migrations can
//! be dropped, retransmitted on the fabric's backoff schedule, or
//! abandoned under [`zeiot_fault::RecoveryPolicy`]. A failed handoff
//! leaves the unit stranded on its dark host; stranded units keep the
//! engine re-planning on every poll until they land or their host
//! recovers. Handoff state comes from the surviving *checkpoint peer*
//! nearest the destination (the gateway snapshots layer parameters to
//! layer peers; the dark node itself cannot transmit).
//!
//! **Determinism contract.** The down-set is read from a `BTreeMap` in
//! id order; orphans are visited deepest layer first, then by unit
//! index — under a tight budget the scarce migrations go to the units
//! whose loss silences the most downstream signal; candidate
//! selection uses the total order `(cost, node id)`; handoff frames are
//! ordinary fabric messages with pure-hash fates. A lossless plan has
//! an empty down-set at every instant, so the engine never fires: runs
//! are **byte-identical** to the non-replacing path (pinned by the
//! proptest below), and reports are byte-identical across thread
//! counts.

use crate::assignment::{reverse_dependencies, Assignment};
use crate::distributed::{ConvReplica, DistributedCnn};
use crate::lossy::{HopProbe, LossyRuntime};
use zeiot_core::id::NodeId;
use zeiot_fault::Delivery;
use zeiot_net::routing::RoutingTable;
use zeiot_net::topology::Topology;
use zeiot_nn::tensor::Tensor;
use zeiot_nn::topology::UnitGraph;
use zeiot_obs::trace::SpanScope;
use zeiot_obs::{Label, Recorder};

/// Weight scalars per state-handoff radio frame (a 16-byte payload of
/// i8 weights — the same frame geometry the quantized transport
/// assumes). Frames carry a CRC and a paired parity frame, so a
/// corrupted delivery is reconstructed at the receiver: corruption
/// shows up in the fabric's counters but cannot silently poison a
/// migrated kernel.
pub const SCALARS_PER_FRAME: usize = 16;

/// How an epoch of change re-solves the placement.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ReplaceStrategy {
    /// Warm start from the current assignment: only orphaned units
    /// (hosted on dark nodes) move, bounded by the migration budget.
    Incremental,
    /// Re-run the full balanced local search over the survivors and
    /// migrate every unit whose host changed. Ignores the budget — the
    /// baseline the incremental strategy is measured against.
    FullResolve,
}

/// Engine knobs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ReplaceConfig {
    /// Maximum unit migrations per epoch of change
    /// ([`ReplaceStrategy::Incremental`] only).
    pub migration_budget: usize,
    /// The re-solve strategy.
    pub strategy: ReplaceStrategy,
}

impl ReplaceConfig {
    /// Incremental re-placement under `migration_budget` moves per
    /// epoch.
    pub fn incremental(migration_budget: usize) -> Self {
        Self {
            migration_budget,
            strategy: ReplaceStrategy::Incremental,
        }
    }

    /// Full re-solve on every epoch of change (unbounded migrations).
    pub fn full_resolve() -> Self {
        Self {
            migration_budget: usize::MAX,
            strategy: ReplaceStrategy::FullResolve,
        }
    }
}

/// One planned unit move.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Migration {
    /// Unit-graph layer (≥ 1; inputs are pinned to their sensors).
    pub layer: usize,
    /// Unit index within the layer.
    pub unit: usize,
    /// The host the unit leaves.
    pub from: NodeId,
    /// The surviving host the unit lands on.
    pub to: NodeId,
}

/// What one planning pass decided.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ReplanOutcome {
    /// Planned moves, in `(layer, unit)` order.
    pub migrations: Vec<Migration>,
    /// Orphans left on dark hosts (no surviving capacity, or the
    /// migration budget ran out).
    pub stranded: usize,
    /// Input (sensor) units on dark nodes — their readings are gone
    /// until the node recovers; no migration can help.
    pub lost_inputs: usize,
    /// Whether the migration budget cut the pass short.
    pub budget_exhausted: bool,
}

/// Counters the engine accumulates across epochs; exported to the obs
/// recorder under `replace.*`.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ReplaceStats {
    /// Re-planning epochs: the down-set differed from the previous
    /// poll, or stranded units were left to retry.
    pub epochs: u64,
    /// Units successfully migrated (state landed, placement updated).
    pub migrations: u64,
    /// Orphans left stranded on dark hosts across all epochs.
    pub stranded: u64,
    /// Migrations abandoned because the state handoff failed on the
    /// fabric.
    pub failed_handoffs: u64,
    /// State-handoff frames delivered over the fabric.
    pub handoff_frames: u64,
    /// Hop-weighted handoff traffic (frames × route hops) — the
    /// [`crate::cost::CostModel`] currency, charged against the fabric.
    pub handoff_cost: u64,
    /// Epochs where the migration budget ran out before every orphan
    /// was re-homed.
    pub budget_exhausted: u64,
}

impl ReplaceStats {
    /// Adds `other` into `self`.
    pub fn merge(&mut self, other: &ReplaceStats) {
        self.epochs += other.epochs;
        self.migrations += other.migrations;
        self.stranded += other.stranded;
        self.failed_handoffs += other.failed_handoffs;
        self.handoff_frames += other.handoff_frames;
        self.handoff_cost += other.handoff_cost;
        self.budget_exhausted += other.budget_exhausted;
    }

    /// Writes the counters into `recorder` under `label` as
    /// `replace.epochs`, `replace.migrations`, `replace.stranded`,
    /// `replace.failed_handoffs`, `replace.handoff_frames`,
    /// `replace.handoff_cost`, `replace.budget_exhausted`.
    pub fn record_to(&self, recorder: &mut Recorder, label: Label) {
        recorder.add("replace.epochs", label.clone(), self.epochs);
        recorder.add("replace.migrations", label.clone(), self.migrations);
        recorder.add("replace.stranded", label.clone(), self.stranded);
        recorder.add(
            "replace.failed_handoffs",
            label.clone(),
            self.failed_handoffs,
        );
        recorder.add("replace.handoff_frames", label.clone(), self.handoff_frames);
        recorder.add("replace.handoff_cost", label.clone(), self.handoff_cost);
        recorder.add("replace.budget_exhausted", label, self.budget_exhausted);
    }
}

/// Plans a warm-started incremental re-placement: units hosted on
/// `down` nodes are re-homed, deepest layer first (then unit order),
/// to the surviving node with spare capacity (cap = ⌈units /
/// survivors⌉) that minimizes total hop distance to the unit's
/// producers and consumers over the degraded mesh; ties break on node
/// id. At most `budget` units move; the rest are stranded — so under a
/// tight budget the scarce migrations go to the units whose loss costs
/// the most (a dark dense unit silences a whole feature, a dark conv
/// unit one patch). Surviving units never move — the warm start is
/// what keeps migrations (and their handoff traffic) proportional to
/// the failure, not to the network.
///
/// Returns the repaired assignment and the plan. Pure: no fabric, no
/// model state — [`ReplacementEngine::poll`] turns the plan into
/// migrations with real state handoff.
///
/// # Panics
///
/// Panics if every node is down.
pub fn plan_incremental(
    graph: &UnitGraph,
    topo: &Topology,
    assignment: &Assignment,
    down: &[NodeId],
    budget: usize,
) -> (Assignment, ReplanOutcome) {
    let surviving: Vec<NodeId> = topo.node_ids().filter(|n| !down.contains(n)).collect();
    // zeiot-audit: allow(p1) -- documented `# Panics` precondition guard
    assert!(!surviving.is_empty(), "all nodes down");

    // Routes over the degraded mesh (dark nodes cannot relay).
    let degraded = topo.without_nodes(down);
    let routes = RoutingTable::shortest_paths(&degraded);
    let cap = graph.total_units().div_ceil(surviving.len());
    let consumers = reverse_dependencies(graph);

    let mut repaired = assignment.clone();
    let mut load = vec![0usize; topo.len()];
    for l in 1..graph.layer_count() {
        for u in 0..graph.units_in_layer(l) {
            let h = assignment.host_of(l, u);
            if !down.contains(&h) {
                // zeiot-audit: allow(p1) -- hosts come from the assignment over this topology, so index() < topo.len()
                load[h.index()] += 1;
            }
        }
    }

    let mut migrations = Vec::new();
    let mut stranded = 0usize;
    let mut budget_exhausted = false;
    for l in (1..graph.layer_count()).rev() {
        // `consumers[l - 1]` holds one entry per unit of layer `l`.
        for (u, unit_consumers) in consumers[l - 1].iter().enumerate() {
            let host = assignment.host_of(l, u);
            if !down.contains(&host) {
                continue;
            }
            if migrations.len() >= budget {
                budget_exhausted = true;
                stranded += 1;
                continue;
            }
            // Total hop distance to producers (and consumers, for units
            // feeding a next layer) — the balanced_correspondence cost,
            // evaluated against the progressively repaired assignment.
            let candidate = surviving
                .iter()
                .filter(|n| load[n.index()] < cap)
                .min_by_key(|n| {
                    let mut c = 0usize;
                    for &dep in graph.dependencies(l, u) {
                        let src = repaired.host_of(l - 1, dep);
                        c += routes.hop_distance(src, **n).unwrap_or(1_000);
                    }
                    if l + 1 < graph.layer_count() {
                        for &k in unit_consumers {
                            let dst = repaired.host_of(l + 1, k);
                            c += routes.hop_distance(**n, dst).unwrap_or(1_000);
                        }
                    }
                    (c, n.raw())
                })
                .copied();
            match candidate {
                Some(to) => {
                    repaired.set_host(l, u, to);
                    load[to.index()] += 1;
                    migrations.push(Migration {
                        layer: l,
                        unit: u,
                        from: host,
                        to,
                    });
                }
                None => stranded += 1,
            }
        }
    }

    let lost_inputs = (0..graph.units_in_layer(0))
        .filter(|&i| down.contains(&assignment.host_of(0, i)))
        .count();

    (
        repaired,
        ReplanOutcome {
            migrations,
            stranded,
            lost_inputs,
            budget_exhausted,
        },
    )
}

/// Plans a full re-solve over the survivors: orphans are re-homed as in
/// [`plan_incremental`] (unbounded), then the balanced local search
/// sweeps every spatial unit — not just orphans — so the whole
/// placement re-optimizes around the hole. Every changed host becomes a
/// migration; the move count scales with the network, which is exactly
/// what the incremental strategy's budget avoids.
///
/// # Panics
///
/// Panics if every node is down.
pub fn plan_full_resolve(
    graph: &UnitGraph,
    topo: &Topology,
    assignment: &Assignment,
    down: &[NodeId],
) -> (Assignment, ReplanOutcome) {
    let (mut repaired, outcome) = plan_incremental(graph, topo, assignment, down, usize::MAX);
    let surviving: Vec<NodeId> = topo.node_ids().filter(|n| !down.contains(n)).collect();
    let degraded = topo.without_nodes(down);
    let routes = RoutingTable::shortest_paths(&degraded);
    let cap = graph.total_units().div_ceil(surviving.len());
    let consumers = reverse_dependencies(graph);
    let mut load = vec![0usize; topo.len()];
    for l in 1..graph.layer_count() {
        for u in 0..graph.units_in_layer(l) {
            // zeiot-audit: allow(p1) -- hosts come from the assignment over this topology, so index() < topo.len()
            load[repaired.host_of(l, u).index()] += 1;
        }
    }

    // The balanced_correspondence improvement sweeps, restricted to
    // surviving candidates: only spatial units move (a dense unit's
    // traffic is placement-invariant), selection is the total order
    // (cost, node id).
    for _sweep in 0..3 {
        let mut improved = false;
        for l in 1..graph.layer_count() {
            // `consumers[l - 1]` holds one entry per unit of layer `l`.
            for (u, unit_consumers) in consumers[l - 1].iter().enumerate() {
                if graph.position(l, u).is_none() {
                    continue;
                }
                let current = repaired.host_of(l, u);
                let cost_at = |candidate: NodeId, asg: &Assignment| -> usize {
                    let mut c = 0;
                    for &dep in graph.dependencies(l, u) {
                        let src = asg.host_of(l - 1, dep);
                        c += routes.hop_distance(src, candidate).unwrap_or(1_000);
                    }
                    if l + 1 < graph.layer_count() {
                        for &k in unit_consumers {
                            let dst = asg.host_of(l + 1, k);
                            c += routes.hop_distance(candidate, dst).unwrap_or(1_000);
                        }
                    }
                    c
                };
                let current_cost = cost_at(current, &repaired);
                let mut candidates: Vec<NodeId> = degraded.neighbors(current).to_vec();
                for &dep in graph.dependencies(l, u) {
                    candidates.push(repaired.host_of(l - 1, dep));
                }
                candidates.sort_unstable();
                candidates.dedup();
                candidates.retain(|c| *c != current && !down.contains(c) && load[c.index()] < cap);
                let best = candidates
                    .iter()
                    .map(|&c| (c, cost_at(c, &repaired)))
                    .filter(|&(_, cost)| cost < current_cost)
                    .min_by_key(|&(c, cost)| (cost, c.raw()));
                if let Some((to, _)) = best {
                    load[current.index()] -= 1;
                    load[to.index()] += 1;
                    repaired.set_host(l, u, to);
                    improved = true;
                }
            }
        }
        if !improved {
            break;
        }
    }

    // Migrations = every host that changed, in (layer, unit) order.
    let mut migrations = Vec::new();
    for l in 1..graph.layer_count() {
        for u in 0..graph.units_in_layer(l) {
            let from = assignment.host_of(l, u);
            let to = repaired.host_of(l, u);
            if from != to {
                migrations.push(Migration {
                    layer: l,
                    unit: u,
                    from,
                    to,
                });
            }
        }
    }
    (
        repaired,
        ReplanOutcome {
            migrations,
            stranded: outcome.stranded,
            lost_inputs: outcome.lost_inputs,
            budget_exhausted: false,
        },
    )
}

/// Scalars of state one migration carries: the conv kernel replica if
/// the destination lacks one (or the unit's own kernel under
/// [`crate::WeightUpdate::PerUnit`]), a dense unit's weight row plus
/// bias, nothing for a stateless pool unit.
fn migration_scalars(net: &DistributedCnn, m: &Migration) -> usize {
    let c = net.config;
    match m.layer {
        1 => {
            if net.per_unit.is_some() {
                c.in_channels() * c.kernel() * c.kernel() + 1
            } else if net.replicas.contains_key(&m.to) {
                0 // destination already holds this layer's replica
            } else {
                let oc = c.conv_channels();
                oc * c.in_channels() * c.kernel() * c.kernel() + oc
            }
        }
        2 => 0, // max pooling is stateless
        3 => c.feature_len() + 1,
        _ => c.hidden() + 1,
    }
}

/// The surviving checkpoint peer the migrated state ships from: the
/// live node hosting a unit of the same layer that is nearest the
/// destination (ties on id); falls back to the lowest-id survivor when
/// the layer has no surviving host.
fn state_source(
    net: &DistributedCnn,
    graph: &UnitGraph,
    rt: &LossyRuntime,
    m: &Migration,
    down: &[NodeId],
) -> NodeId {
    let peer = (0..graph.units_in_layer(m.layer))
        .map(|u| net.assignment.host_of(m.layer, u))
        .filter(|h| !down.contains(h) && *h != m.to)
        .min_by_key(|h| (rt.hops(*h, m.to), h.raw()));
    match peer {
        Some(p) => p,
        None => net
            .assignment
            .active_nodes()
            .into_iter()
            .find(|n| !down.contains(n) && *n != m.to)
            .unwrap_or(m.to),
    }
}

/// Applies one migration to the model: placement, conv host table, and
/// replica bookkeeping move coherently. `source` is the node whose
/// kernel state the destination adopts when it has no replica of its
/// own (under replica sharing the checkpoint peer's kernel *is* the
/// migrated state; replicas may have drifted under
/// [`crate::WeightUpdate::Independent`], which is the accuracy price of
/// a handoff from a peer instead of the dark node).
fn apply_one(net: &mut DistributedCnn, m: &Migration, source: NodeId) {
    net.assignment.set_host(m.layer, m.unit, m.to);
    if m.layer != 1 {
        return;
    }
    // zeiot-audit: allow(p1) -- migrations come from a plan over this model's unit graph, so unit < conv_unit_host.len()
    net.conv_unit_host[m.unit] = m.to;
    if let Some(rep) = net.replicas.get_mut(&m.from) {
        rep.units -= 1;
        if rep.units == 0 {
            net.replicas.remove(&m.from);
        }
    }
    // Replica bookkeeping applies under every update mode: per-unit
    // kernels live in the unit-indexed table and move with their unit,
    // but the per-node replica map still tracks hosting counts.
    if let Some(rep) = net.replicas.get_mut(&m.to) {
        rep.units += 1;
        return;
    }
    let template = net
        .replicas
        .get(&source)
        .or_else(|| net.replicas.values().next())
        // zeiot-audit: allow(p1) -- a validated deployment always hosts layer-1 units, so the replica map is non-empty
        .expect("at least one replica survives");
    let fresh = ConvReplica {
        weights: template.weights.clone(),
        bias: template.bias.clone(),
        grad_weights: Tensor::zeros(template.weights.shape().to_vec()),
        grad_bias: Tensor::zeros(vec![template.bias.len()]),
        units: 1,
    };
    net.replicas.insert(m.to, fresh);
}

/// Applies a planned epoch to `net` **without a fabric** — the offline,
/// gateway-side repair. State is copied from the nearest surviving
/// checkpoint peer for free; the static-recovery baseline and
/// [`crate::resilience::reassign_after_failures`] deployments use this.
pub fn apply_offline(
    net: &mut DistributedCnn,
    graph: &UnitGraph,
    migrations: &[Migration],
    down: &[NodeId],
) {
    // Source selection needs hop distances; an offline repair measures
    // them over the healthy mesh is unavailable — use layer-peer id
    // order instead (deterministic, and cost-free offline).
    for m in migrations {
        let source = (0..graph.units_in_layer(m.layer))
            .map(|u| net.assignment.host_of(m.layer, u))
            .find(|h| !down.contains(h) && *h != m.from)
            .unwrap_or(m.to);
        apply_one(net, m, source);
    }
    debug_assert_eq!(net.validate(), Ok(()));
}

/// The runtime re-placement controller: polls liveness, detects epochs
/// of change, plans under the configured strategy and budget, ships
/// state over the fabric, and keeps the model's placement, replica map
/// and host tables coherent.
#[derive(Debug, Clone)]
pub struct ReplacementEngine {
    config: ReplaceConfig,
    topo: Topology,
    /// The down-set at the previous poll (sorted); an epoch fires when
    /// the current down-set differs.
    last_down: Vec<NodeId>,
    /// The previous epoch left units stranded (budget cut, no surviving
    /// capacity, or failed handoffs) — retry them next poll even if the
    /// down-set is unchanged, so a per-epoch budget amortizes recovery
    /// instead of abandoning it.
    pending: bool,
    stats: ReplaceStats,
}

impl ReplacementEngine {
    /// An engine for a deployment on `topo`, initially believing every
    /// node is up.
    pub fn new(config: ReplaceConfig, topo: &Topology) -> Self {
        Self {
            config,
            topo: topo.clone(),
            last_down: Vec::new(),
            pending: false,
            stats: ReplaceStats::default(),
        }
    }

    /// The accumulated counters.
    pub fn stats(&self) -> &ReplaceStats {
        &self.stats
    }

    /// Writes the counters into `recorder` under `label`.
    pub fn record_to(&self, recorder: &mut Recorder, label: Label) {
        self.stats.record_to(recorder, label);
    }

    /// Polls liveness at the fabric's current clock and, on an epoch of
    /// change, re-places `net` over `rt`'s fabric. Returns the number
    /// of units migrated by this call (0 when the down-set is
    /// unchanged — the overwhelmingly common case, and always the case
    /// under a lossless plan, which is what keeps zero-fault runs
    /// byte-identical to the non-replacing path).
    ///
    /// Each migration's state handoff is shipped as
    /// [`SCALARS_PER_FRAME`]-scalar frames from the nearest surviving
    /// checkpoint peer through [`zeiot_fault::LinkFabric::transmit_over`],
    /// so the fabric's [`zeiot_fault::RecoveryPolicy`] governs retries;
    /// a frame that ultimately fails abandons the migration
    /// (`replace.failed_handoffs`) and strands the unit. Stranded units
    /// — budget-cut, capacity-starved or failed-handoff — are retried
    /// on the next poll even when the down-set is unchanged, so a
    /// per-epoch budget amortizes recovery across polls. When `scope`
    /// is given, every migration that actually transmitted leaves a
    /// `replace.migrate` hop span.
    pub fn poll(
        &mut self,
        net: &mut DistributedCnn,
        rt: &mut LossyRuntime,
        mut scope: Option<&mut SpanScope<'_>>,
    ) -> usize {
        let down = rt.fabric().plan().down_set_at(rt.fabric().now());
        if down == self.last_down && !self.pending {
            return 0;
        }
        self.stats.epochs += 1;
        if down.len() >= self.topo.len() {
            // Nothing survives; keep serving (degraded) and wait.
            self.last_down = down;
            return 0;
        }
        // zeiot-audit: allow(p1) -- DistributedCnn construction requires a config whose unit graph builds
        let graph = net.config.unit_graph().expect("validated config");
        let outcome = match self.config.strategy {
            ReplaceStrategy::Incremental => {
                plan_incremental(
                    &graph,
                    &self.topo,
                    &net.assignment,
                    &down,
                    self.config.migration_budget,
                )
                .1
            }
            ReplaceStrategy::FullResolve => {
                plan_full_resolve(&graph, &self.topo, &net.assignment, &down).1
            }
        };
        self.stats.stranded += outcome.stranded as u64;
        if outcome.budget_exhausted {
            self.stats.budget_exhausted += 1;
        }
        self.pending = outcome.stranded > 0;

        let mut applied = 0usize;
        for m in &outcome.migrations {
            let source = state_source(net, &graph, rt, m, &down);
            let scalars = migration_scalars(net, m);
            // One placement-control frame (the destination learns it now
            // owns the unit) plus the state payload — so even a
            // stateless or replica-sharing migration rides the lossy
            // fabric and can fail.
            let frames = 1 + scalars.div_ceil(SCALARS_PER_FRAME);
            let hops = rt.hops(source, m.to);
            let probe = scope.is_some().then(|| HopProbe::open(rt));
            let mut delivered = true;
            for _ in 0..frames {
                match rt.fabric_mut().transmit_over(source, m.to, hops) {
                    Delivery::Delivered { .. } => {
                        self.stats.handoff_frames += 1;
                        self.stats.handoff_cost += u64::from(hops);
                    }
                    Delivery::Failed { .. } => {
                        delivered = false;
                        break;
                    }
                }
            }
            if let (Some(s), Some(p)) = (scope.as_mut(), probe) {
                p.close(rt, s, "replace.migrate");
            }
            if delivered {
                apply_one(net, m, source);
                applied += 1;
                self.stats.migrations += 1;
            } else {
                self.stats.failed_handoffs += 1;
                self.stats.stranded += 1;
                self.pending = true;
            }
        }
        debug_assert_eq!(net.validate(), Ok(()));
        self.last_down = down;
        applied
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::CnnConfig;
    use crate::distributed::WeightUpdate;
    use zeiot_core::rng::SeedRng;
    use zeiot_core::time::{SimDuration, SimTime};
    use zeiot_fault::{DegradeMode, FaultPlan, RecoveryPolicy};

    fn setup() -> (CnnConfig, Topology, Assignment) {
        let config = CnnConfig::new(1, 8, 8, 4, 3, 2, 16, 2).expect("valid config");
        let topo = Topology::grid(4, 4, 2.0, 3.0).expect("valid grid");
        let graph = config.unit_graph().expect("valid graph");
        let assignment = Assignment::balanced_correspondence(&graph, &topo);
        (config, topo, assignment)
    }

    fn runtime(plan: FaultPlan, policy: RecoveryPolicy, topo: &Topology) -> LossyRuntime {
        LossyRuntime::new(plan, policy, topo, SimDuration::from_millis(500))
    }

    #[test]
    fn empty_down_set_plans_nothing() {
        let (config, topo, assignment) = setup();
        let graph = config.unit_graph().expect("valid graph");
        let (repaired, outcome) = plan_incremental(&graph, &topo, &assignment, &[], 8);
        assert_eq!(repaired, assignment);
        assert!(outcome.migrations.is_empty());
        assert_eq!(outcome.stranded, 0);
        assert_eq!(outcome.lost_inputs, 0);
        assert!(!outcome.budget_exhausted);
    }

    #[test]
    fn incremental_plan_moves_only_orphans_within_budget() {
        let (config, topo, assignment) = setup();
        let graph = config.unit_graph().expect("valid graph");
        let down = vec![NodeId::new(5)];
        let orphans: usize = (1..graph.layer_count())
            .map(|l| {
                (0..graph.units_in_layer(l))
                    .filter(|&u| assignment.host_of(l, u) == down[0])
                    .count()
            })
            .sum();
        assert!(orphans > 2, "victim hosted {orphans} units — weak test");

        // Unbounded: every orphan moves, nothing else does.
        let (repaired, outcome) = plan_incremental(&graph, &topo, &assignment, &down, usize::MAX);
        assert_eq!(outcome.migrations.len(), orphans);
        assert_eq!(outcome.stranded, 0);
        for l in 1..graph.layer_count() {
            for u in 0..graph.units_in_layer(l) {
                if assignment.host_of(l, u) != down[0] {
                    assert_eq!(repaired.host_of(l, u), assignment.host_of(l, u));
                } else {
                    assert_ne!(repaired.host_of(l, u), down[0]);
                }
            }
        }

        // Bounded: exactly `budget` move, the rest are stranded.
        let budget = orphans / 2;
        let (_, bounded) = plan_incremental(&graph, &topo, &assignment, &down, budget);
        assert_eq!(bounded.migrations.len(), budget);
        assert_eq!(bounded.stranded, orphans - budget);
        assert!(bounded.budget_exhausted);
    }

    #[test]
    fn full_resolve_respects_cap_and_reports_every_move() {
        let (config, topo, assignment) = setup();
        let graph = config.unit_graph().expect("valid graph");
        let down = vec![NodeId::new(0), NodeId::new(5)];
        let (repaired, outcome) = plan_full_resolve(&graph, &topo, &assignment, &down);
        let cap = graph.total_units().div_ceil(topo.len() - down.len());
        let loads = repaired.units_per_node();
        for d in &down {
            assert_eq!(loads[d.index()], 0);
        }
        for n in topo.node_ids() {
            assert!(loads[n.index()] <= cap, "node {n} over cap");
        }
        // Each reported migration matches the assignment diff exactly.
        let mut diff = 0usize;
        for l in 1..graph.layer_count() {
            for u in 0..graph.units_in_layer(l) {
                if assignment.host_of(l, u) != repaired.host_of(l, u) {
                    diff += 1;
                }
            }
        }
        assert_eq!(outcome.migrations.len(), diff);
        // A full re-solve moves at least the orphans.
        let (_, inc) = plan_incremental(&graph, &topo, &assignment, &down, usize::MAX);
        assert!(outcome.migrations.len() >= inc.migrations.len());
    }

    #[test]
    #[should_panic]
    fn total_failure_panics() {
        let (config, topo, assignment) = setup();
        let graph = config.unit_graph().expect("valid graph");
        let all: Vec<NodeId> = topo.node_ids().collect();
        let _ = plan_incremental(&graph, &topo, &assignment, &all, usize::MAX);
    }

    #[test]
    fn engine_migrates_on_an_epoch_and_keeps_the_model_valid() {
        let (config, topo, assignment) = setup();
        let mut rng = SeedRng::new(3);
        let mut net = DistributedCnn::new(config, assignment, WeightUpdate::Independent, &mut rng);
        let plan = FaultPlan::lossless()
            .with_outage(
                NodeId::new(5),
                SimTime::from_secs(1),
                SimTime::from_secs(100),
            )
            .expect("valid window");
        let mut rt = runtime(
            plan,
            RecoveryPolicy::Degrade {
                mode: DegradeMode::ZeroFill,
            },
            &topo,
        );
        let mut engine = ReplacementEngine::new(ReplaceConfig::incremental(64), &topo);

        // Before the window opens: no epoch, no change.
        assert_eq!(engine.poll(&mut net, &mut rt, None), 0);
        assert_eq!(engine.stats().epochs, 0);

        // Walk the clock into the outage window.
        for _ in 0..3 {
            rt.advance_pass();
        }
        let moved = engine.poll(&mut net, &mut rt, None);
        assert!(moved > 0, "outage must trigger migrations");
        assert_eq!(engine.stats().epochs, 1);
        assert_eq!(engine.stats().migrations, moved as u64);
        assert!(engine.stats().handoff_frames > 0);
        assert!(engine.stats().handoff_cost >= engine.stats().handoff_frames);
        assert_eq!(net.validate(), Ok(()));
        let graph = net.config().unit_graph().expect("valid graph");
        for l in 1..graph.layer_count() {
            for u in 0..graph.units_in_layer(l) {
                assert_ne!(net.assignment().host_of(l, u), NodeId::new(5));
            }
        }
        // The model still answers through the degraded fabric.
        let input = Tensor::uniform(vec![1, 8, 8], 1.0, &mut rng);
        assert!(net.forward_lossy(&input, &mut rt).is_some());

        // Same down-set next poll: no second epoch.
        assert_eq!(engine.poll(&mut net, &mut rt, None), 0);
        assert_eq!(engine.stats().epochs, 1);
    }

    #[test]
    fn engine_epochs_fire_on_recovery_too() {
        let (config, topo, assignment) = setup();
        let mut rng = SeedRng::new(4);
        let mut net = DistributedCnn::new(config, assignment, WeightUpdate::Independent, &mut rng);
        let plan = FaultPlan::lossless()
            .with_outage(NodeId::new(5), SimTime::ZERO, SimTime::from_secs(1))
            .expect("valid window");
        let mut rt = runtime(
            plan,
            RecoveryPolicy::Degrade {
                mode: DegradeMode::ZeroFill,
            },
            &topo,
        );
        let mut engine = ReplacementEngine::new(ReplaceConfig::incremental(64), &topo);
        let moved = engine.poll(&mut net, &mut rt, None);
        assert!(moved > 0);
        for _ in 0..4 {
            rt.advance_pass();
        }
        // Window closed: the down-set change is an epoch, but nothing is
        // orphaned (musical chairs has hysteresis — units stay seated).
        assert_eq!(engine.poll(&mut net, &mut rt, None), 0);
        assert_eq!(engine.stats().epochs, 2);
    }

    #[test]
    fn failed_handoffs_strand_units_under_fail_fast() {
        let (config, topo, assignment) = setup();
        let mut rng = SeedRng::new(5);
        let mut net = DistributedCnn::new(config, assignment, WeightUpdate::Independent, &mut rng);
        // Outage plus certain link loss: every handoff frame dies.
        let plan = FaultPlan::uniform(9, 1.0)
            .expect("valid rate")
            .with_outage(NodeId::new(5), SimTime::ZERO, SimTime::from_secs(100))
            .expect("valid window");
        let mut rt = runtime(plan, RecoveryPolicy::FailFast, &topo);
        let mut engine = ReplacementEngine::new(ReplaceConfig::incremental(64), &topo);
        let moved = engine.poll(&mut net, &mut rt, None);
        assert_eq!(moved, 0, "no handoff can complete");
        assert!(engine.stats().failed_handoffs > 0);
        assert_eq!(engine.stats().migrations, 0);
        // The model is still internally coherent (units stranded on the
        // dark node, replicas untouched).
        assert_eq!(net.validate(), Ok(()));
    }

    #[test]
    fn engine_is_reproducible() {
        let run = || {
            let (config, topo, assignment) = setup();
            let mut rng = SeedRng::new(6);
            let mut net =
                DistributedCnn::new(config, assignment, WeightUpdate::Independent, &mut rng);
            let plan = FaultPlan::uniform(2, 0.05)
                .expect("valid rate")
                .with_outage(
                    NodeId::new(9),
                    SimTime::from_secs(1),
                    SimTime::from_secs(50),
                )
                .expect("valid window");
            let mut rt = runtime(
                plan,
                RecoveryPolicy::Degrade {
                    mode: DegradeMode::LastValueHold,
                },
                &topo,
            );
            let mut engine = ReplacementEngine::new(ReplaceConfig::incremental(8), &topo);
            let input = Tensor::uniform(vec![1, 8, 8], 1.0, &mut rng);
            let mut out = Vec::new();
            for _ in 0..8 {
                engine.poll(&mut net, &mut rt, None);
                if let Some(logits) = net.forward_lossy(&input, &mut rt) {
                    out.extend_from_slice(logits.data());
                }
                rt.advance_pass();
            }
            (out, *engine.stats(), *rt.stats())
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn stats_merge_and_reach_the_recorder() {
        let mut a = ReplaceStats {
            epochs: 1,
            migrations: 3,
            stranded: 1,
            failed_handoffs: 1,
            handoff_frames: 12,
            handoff_cost: 30,
            budget_exhausted: 1,
        };
        let b = a;
        a.merge(&b);
        assert_eq!(a.migrations, 6);
        assert_eq!(a.handoff_cost, 60);
        let mut rec = Recorder::new();
        a.record_to(&mut rec, Label::Global);
        assert_eq!(rec.counter_value("replace.migrations", &Label::Global), 6);
        assert_eq!(rec.counter_value("replace.epochs", &Label::Global), 2);
    }

    #[test]
    fn migrate_spans_are_emitted_and_do_not_perturb() {
        use zeiot_obs::trace::{ClockDomain, SpanLayer, TraceSampler, Tracer};
        let mk = || {
            let (config, topo, assignment) = setup();
            let mut rng = SeedRng::new(7);
            let net = DistributedCnn::new(config, assignment, WeightUpdate::Independent, &mut rng);
            let plan = FaultPlan::lossless()
                .with_outage(NodeId::new(5), SimTime::ZERO, SimTime::from_secs(100))
                .expect("valid window");
            let rt = runtime(
                plan,
                RecoveryPolicy::Degrade {
                    mode: DegradeMode::ZeroFill,
                },
                &topo,
            );
            let engine = ReplacementEngine::new(ReplaceConfig::incremental(64), &topo);
            (net, rt, engine)
        };
        let (mut net_a, mut rt_a, mut eng_a) = mk();
        let (mut net_b, mut rt_b, mut eng_b) = mk();
        let mut tracer = Tracer::new(TraceSampler::always());
        let root = tracer
            .begin(0, 0, "serve.request", SpanLayer::Request, SimTime::ZERO)
            .expect("sampled");
        let mut scope = tracer.scope(0, 0, root).expect("scope");
        let moved_a = eng_a.poll(&mut net_a, &mut rt_a, None);
        let moved_b = eng_b.poll(&mut net_b, &mut rt_b, Some(&mut scope));
        assert_eq!(moved_a, moved_b);
        assert_eq!(eng_a.stats(), eng_b.stats());
        assert_eq!(rt_a.stats(), rt_b.stats());
        assert_eq!(net_a.assignment(), net_b.assignment());
        tracer.finish(0, 0, SimTime::ZERO);
        let trace = tracer.take_finished().remove(0);
        let migrate_spans: Vec<_> = trace
            .spans
            .iter()
            .filter(|s| s.name == "replace.migrate")
            .collect();
        assert!(!migrate_spans.is_empty(), "handoffs must leave spans");
        assert!(migrate_spans
            .iter()
            .all(|s| s.layer == SpanLayer::Hop && s.clock == ClockDomain::Fabric));
    }

    #[test]
    fn per_unit_models_migrate_without_replica_bookkeeping() {
        let (config, topo, assignment) = setup();
        let mut rng = SeedRng::new(8);
        let mut net = DistributedCnn::new(config, assignment, WeightUpdate::PerUnit, &mut rng);
        let plan = FaultPlan::lossless()
            .with_outage(NodeId::new(5), SimTime::ZERO, SimTime::from_secs(100))
            .expect("valid window");
        let mut rt = runtime(
            plan,
            RecoveryPolicy::Degrade {
                mode: DegradeMode::ZeroFill,
            },
            &topo,
        );
        let mut engine = ReplacementEngine::new(ReplaceConfig::incremental(64), &topo);
        let moved = engine.poll(&mut net, &mut rt, None);
        assert!(moved > 0);
        assert_eq!(net.validate(), Ok(()));
        // Per-unit kernels travel with their units: the function over a
        // lossless fabric is placement-invariant, so the migrated model
        // computes the same logits as an unmigrated clone.
        let mut rng2 = SeedRng::new(8);
        let (config2, topo2, assignment2) = setup();
        let mut baseline =
            DistributedCnn::new(config2, assignment2, WeightUpdate::PerUnit, &mut rng2);
        let mut clean_rt = runtime(FaultPlan::lossless(), RecoveryPolicy::FailFast, &topo2);
        let _ = topo;
        let input = Tensor::uniform(vec![1, 8, 8], 1.0, &mut rng);
        let migrated = net
            .forward_lossy(&input, &mut clean_rt)
            .expect("lossless never aborts");
        assert_eq!(migrated.data(), baseline.forward(&input).data());
    }

    mod proptests {
        use super::*;
        use proptest::prelude::*;

        proptest! {
            #![proptest_config(ProptestConfig::with_cases(16))]

            /// Satellite contract: re-placement under an empty fault
            /// plan is a no-op — assignment and logits are exactly the
            /// baseline's at every pass.
            #[test]
            fn lossless_replacement_is_a_no_op(seed in 0u64..1_000, passes in 1usize..6) {
                let config = CnnConfig::new(1, 8, 8, 2, 3, 2, 8, 2).expect("valid config");
                let topo = Topology::grid(3, 3, 2.0, 3.0).expect("valid grid");
                let graph = config.unit_graph().expect("valid graph");
                let assignment = Assignment::balanced_correspondence(&graph, &topo);
                let mut rng = SeedRng::new(seed);
                let mut net = DistributedCnn::new(
                    config,
                    assignment.clone(),
                    WeightUpdate::Independent,
                    &mut rng,
                );
                let mut baseline = net.clone();
                let mut rt = LossyRuntime::new(
                    FaultPlan::lossless(),
                    RecoveryPolicy::FailFast,
                    &topo,
                    SimDuration::from_millis(500),
                );
                let mut engine =
                    ReplacementEngine::new(ReplaceConfig::incremental(8), &topo);
                let input = Tensor::uniform(vec![1, 8, 8], 1.0, &mut rng);
                for _ in 0..passes {
                    let moved = engine.poll(&mut net, &mut rt, None);
                    prop_assert_eq!(moved, 0);
                    let lossy = net
                        .forward_lossy(&input, &mut rt)
                        .expect("lossless never aborts");
                    prop_assert_eq!(lossy.data(), baseline.forward(&input).data());
                    rt.advance_pass();
                }
                prop_assert_eq!(net.assignment(), &assignment);
                prop_assert_eq!(engine.stats(), &ReplaceStats::default());
            }
        }
    }
}
