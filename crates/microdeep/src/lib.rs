//! # zeiot-microdeep
//!
//! MicroDeep: distributed CNN execution on wireless sensor networks — the
//! primary contribution of Higashino et al. (ICDCS 2019, §IV.C; originally
//! SMARTCOMP 2018 \[7\]).
//!
//! A mesh of sensor nodes continuously produces 2-D sensing data (a
//! temperature field, an IR intensity image). Instead of shipping raw
//! data to a server, the CNN's *units* (neurons) are assigned to the
//! sensor nodes themselves; forward and backward propagation travel as
//! radio messages between nodes. The engineering problem is the
//! assignment: every CNN edge whose endpoints live on different nodes
//! costs transmissions, and the node with the *maximum* communication
//! cost is the one that dies first on harvested energy.
//!
//! The crate provides:
//!
//! - [`config`] — the canonical MicroDeep CNN (1 conv + 1 pool + 2 dense,
//!   the architecture of both paper experiments) and its centralized
//!   baseline;
//! - [`assignment`] — unit-to-node assignment algorithms: the
//!   all-on-sink centralized baseline, spatial grid projection, and the
//!   paper's load-equalizing link-correspondence heuristic;
//! - [`cost`] — per-node communication-cost evaluation of an assignment
//!   (regenerates Fig. 10);
//! - [`distributed`] — distributed training semantics: per-node kernel
//!   replicas updated *independently* (the paper's
//!   communication-avoiding strategy, which "sacrific\[es\] some
//!   accuracy") or synchronized (exact SGD);
//! - [`replace`] — the runtime re-placement engine: fault/brownout-driven
//!   "musical chairs" that re-homes units from dark nodes onto survivors
//!   under a migration budget, shipping their state over the lossy fabric
//!   (§V; subsumes the static [`resilience`] pass).
//!
//! # Example
//!
//! ```
//! # fn main() -> Result<(), zeiot_core::ConfigError> {
//! use zeiot_microdeep::config::CnnConfig;
//! use zeiot_microdeep::assignment::Assignment;
//! use zeiot_microdeep::cost::CostModel;
//! use zeiot_net::Topology;
//!
//! let config = CnnConfig::new(1, 8, 8, 4, 3, 2, 16, 2)?;
//! let graph = config.unit_graph()?;
//! let topo = Topology::grid(4, 4, 2.0, 3.0)?;
//!
//! let central = Assignment::centralized(&graph, &topo);
//! let balanced = Assignment::balanced_correspondence(&graph, &topo);
//!
//! let cost = CostModel::new(&topo);
//! let c1 = cost.forward_cost(&graph, &central);
//! let c2 = cost.forward_cost(&graph, &balanced);
//! // Equalized assignment lowers the hottest node's traffic.
//! assert!(c2.max_cost() < c1.max_cost());
//! # Ok(())
//! # }
//! ```

pub mod assignment;
pub mod config;
pub mod cost;
pub mod distributed;
pub mod instrument;
pub mod lossy;
pub mod quantized;
pub mod replace;
pub mod resilience;

pub use assignment::Assignment;
pub use config::CnnConfig;
pub use cost::CostModel;
pub use distributed::{DistributedCnn, WeightUpdate};
pub use instrument::TrafficInstrument;
pub use lossy::{LossyRuntime, STAGE_SENSING};
pub use quantized::{QuantStats, QuantizedCnn};
pub use replace::{ReplaceConfig, ReplaceStats, ReplaceStrategy, ReplacementEngine};
