//! Lossy distributed execution.
//!
//! The plain [`DistributedCnn`] forward/backward passes assume a perfect
//! radio fabric: every cross-node activation and gradient arrives intact.
//! This module executes the same network through a
//! [`zeiot_fault::LinkFabric`], so every CNN edge whose producer and
//! consumer live on different nodes becomes a real message that can be
//! dropped, delayed into a brownout window, retransmitted, corrupted, or
//! substituted by a degrade policy.
//!
//! Determinism contract: with [`zeiot_fault::FaultPlan::lossless`] the
//! lossy pass is **byte-for-byte identical** to the plain pass — the
//! floating-point accumulation order is replicated exactly, and the
//! fabric's lossless fast path never perturbs a value. Under faults, all
//! loss decisions are pure hashes of the message coordinates, so a run is
//! reproducible across thread counts and repetitions.
//!
//! Recovery semantics per [`RecoveryPolicy`]:
//!
//! * `FailFast` — the first lost forward message aborts the inference
//!   ([`DistributedCnn::forward_lossy`] returns `None`).
//! * `Retransmit` — each lost message is retried on the fabric's
//!   simulated-time backoff schedule; exhaustion aborts like `FailFast`.
//! * `Degrade` — lost values are substituted (zero, or the last value
//!   delivered on that edge) and the inference continues degraded.
//!
//! Backward gradient messages never abort the pass under any policy:
//! a lost gradient contribution is simply lost mass (zero-filled), which
//! both matches how a real mesh would behave — the producer cannot block
//! an entire distributed epoch on one edge — and keeps
//! `Retransmit { max_retries: 0 }` exactly equivalent to `FailFast`.
//! Weight gradients use the locally cached producer-side activations (a
//! node always has its own forward values), a deliberate simplification
//! over tracking every consumer's possibly-corrupted copy.

use crate::distributed::DistributedCnn;
use std::collections::BTreeMap;
use zeiot_core::id::NodeId;
use zeiot_core::rng::SeedRng;
use zeiot_core::time::SimDuration;
use zeiot_fault::{Delivery, FaultPlan, FaultStats, LinkFabric, RecoveryPolicy};
use zeiot_net::routing::RoutingTable;
use zeiot_net::topology::Topology;
use zeiot_nn::loss::cross_entropy;
use zeiot_nn::tensor::Tensor;
use zeiot_obs::trace::{ClockDomain, SpanEvent, SpanLayer, SpanScope};
use zeiot_obs::{Label, Recorder};

/// Edge stages, used to key last-value-hold state (shared with the
/// quantized runtime in [`crate::quantized`], which transports the same
/// logical edges).
pub(crate) const STAGE_INPUT_CONV: u64 = 0;
pub(crate) const STAGE_CONV_POOL: u64 = 1;
pub(crate) const STAGE_POOL_HIDDEN: u64 = 2;
pub(crate) const STAGE_HIDDEN_LOGIT: u64 = 3;

/// Public edge stage reserved for non-CNN tenants (sensing feature
/// gathers in `zeiot-scenario`); disjoint from the CNN stages 0–3 so
/// last-value-hold caches never alias across model kinds.
pub const STAGE_SENSING: u64 = 4;

fn edge_key(stage: u64, producer: usize, consumer: usize) -> u64 {
    (stage << 56) | ((producer as u64) << 28) | consumer as u64
}

/// The transport state a lossy pass runs against: the fault fabric, the
/// mesh routes (for hop-accurate recovery latency), and the
/// last-value-hold cache.
#[derive(Debug)]
pub struct LossyRuntime {
    fabric: LinkFabric,
    routes: RoutingTable,
    /// Last value delivered per edge, for `DegradeMode::LastValueHold`.
    last_seen: BTreeMap<u64, f32>,
    /// Simulated time one full inference pass occupies; advanced after
    /// every sample so brownout windows move across the run.
    pass_period: SimDuration,
}

impl LossyRuntime {
    /// Builds a runtime over `topo`'s shortest-path routes. `pass_period`
    /// is how much simulated time each inference pass advances the
    /// fabric's clock (one sensing cycle).
    pub fn new(
        plan: FaultPlan,
        policy: RecoveryPolicy,
        topo: &Topology,
        pass_period: SimDuration,
    ) -> Self {
        Self {
            fabric: LinkFabric::new(plan, policy),
            routes: RoutingTable::shortest_paths(topo),
            last_seen: BTreeMap::new(),
            pass_period,
        }
    }

    /// The running fault counters.
    pub fn stats(&self) -> &FaultStats {
        self.fabric.stats()
    }

    /// The underlying fabric (clock, plan, policy).
    pub fn fabric(&self) -> &LinkFabric {
        &self.fabric
    }

    /// Writes the fault counters into `recorder` under `label`.
    pub fn record_to(&self, recorder: &mut Recorder, label: Label) {
        self.fabric.stats().record_to(recorder, label);
    }

    /// Advances the fabric clock by one pass period.
    pub fn advance_pass(&mut self) {
        let period = self.pass_period;
        self.fabric.advance(period);
    }

    /// Counts a consuming computation the caller had to give up on (a
    /// [`DistributedCnn::forward_lossy`] that returned `None`); external
    /// drivers such as a serving layer use this to keep the fabric's
    /// `aborted` stat honest.
    pub fn note_aborted(&mut self) {
        self.fabric.note_aborted();
    }

    /// Mutable fabric access for in-crate transports that are not
    /// per-edge fetches (the re-placement engine's state handoffs).
    pub(crate) fn fabric_mut(&mut self) -> &mut LinkFabric {
        &mut self.fabric
    }

    pub(crate) fn hops(&self, src: NodeId, dst: NodeId) -> u32 {
        self.routes.hop_distance(src, dst).unwrap_or(1).max(1) as u32
    }

    /// Transports one forward value over the edge `(stage, producer,
    /// consumer)`. Colocated endpoints are free (no message, no stats),
    /// matching [`crate::cost::CostModel`]'s counting. Returns `None`
    /// when the message is lost and the policy does not degrade.
    pub(crate) fn fetch(
        &mut self,
        value: f32,
        src: NodeId,
        dst: NodeId,
        stage: u64,
        producer: usize,
        consumer: usize,
    ) -> Option<f32> {
        if src == dst {
            return Some(value);
        }
        let hops = self.hops(src, dst);
        match self.fabric.transmit_over(src, dst, hops) {
            Delivery::Delivered { corrupted, .. } => {
                let value = if corrupted {
                    let seq = self.fabric.next_seq() - 1;
                    self.fabric.plan().corrupt_value(value, src, dst, seq)
                } else {
                    value
                };
                self.last_seen
                    .insert(edge_key(stage, producer, consumer), value);
                Some(value)
            }
            Delivery::Failed { .. } => match self.fabric.policy().degrade_mode() {
                Some(zeiot_fault::DegradeMode::ZeroFill) => {
                    self.fabric.note_degraded();
                    Some(0.0)
                }
                Some(zeiot_fault::DegradeMode::LastValueHold) => {
                    self.fabric.note_degraded();
                    Some(
                        self.last_seen
                            .get(&edge_key(stage, producer, consumer))
                            .copied()
                            .unwrap_or(0.0),
                    )
                }
                None => None,
            },
        }
    }

    /// Transports one scalar over the edge `(stage, producer,
    /// consumer)` — the public face of the per-edge fetch, for
    /// external estimators (sensing tenants) that gather features over
    /// the same lossy fabric as the distributed CNN. Colocated
    /// endpoints are free; `None` means the message was lost and the
    /// recovery policy does not degrade. Callers should use a stage at
    /// or above [`STAGE_SENSING`] so their last-value-hold state never
    /// collides with the CNN's edges.
    pub fn transport(
        &mut self,
        value: f32,
        src: NodeId,
        dst: NodeId,
        stage: u64,
        producer: usize,
        consumer: usize,
    ) -> Option<f32> {
        self.fetch(value, src, dst, stage, producer, consumer)
    }

    /// Transports one backward gradient contribution; losses zero-fill
    /// under every policy (see the module docs).
    fn fetch_gradient(&mut self, grad: f32, src: NodeId, dst: NodeId) -> f32 {
        if src == dst {
            return grad;
        }
        let hops = self.hops(src, dst);
        match self.fabric.transmit_over(src, dst, hops) {
            Delivery::Delivered { corrupted, .. } => {
                if corrupted {
                    let seq = self.fabric.next_seq() - 1;
                    self.fabric.plan().corrupt_value(grad, src, dst, seq)
                } else {
                    grad
                }
            }
            Delivery::Failed { .. } => 0.0,
        }
    }
}

/// Brackets one consumer unit's burst of cross-node fetches: fault
/// counters and fabric clock copied before, deltas turned into a hop
/// span after. If the burst aborts mid-way (`?`) the probe is simply
/// dropped — no span, matching "the unit never finished pulling".
pub(crate) struct HopProbe {
    before: FaultStats,
    t0: zeiot_core::time::SimTime,
}

impl HopProbe {
    pub(crate) fn open(rt: &LossyRuntime) -> Self {
        Self {
            before: *rt.stats(),
            t0: rt.fabric.now(),
        }
    }

    /// Emits a fabric-clock hop span under `scope` if the unit actually
    /// pulled any cross-node message (colocated fetches are free and
    /// leave no span).
    pub(crate) fn close(self, rt: &LossyRuntime, scope: &mut SpanScope<'_>, name: &'static str) {
        let d = rt.stats().delta_since(&self.before);
        if d.sent == 0 {
            return;
        }
        let t1 = rt.fabric.now();
        let span = scope.push_span(SpanLayer::Hop, name, ClockDomain::Fabric, self.t0, t1);
        scope.event(span, t1, SpanEvent::Messages { sent: d.sent });
        if d.drops > 0 {
            scope.event(span, t1, SpanEvent::Loss { drops: d.drops });
        }
        if d.retries > 0 {
            scope.event(span, t1, SpanEvent::Retransmit { retries: d.retries });
        }
        if d.degraded + d.corrupted > 0 {
            scope.event(
                span,
                t1,
                SpanEvent::Degraded {
                    substituted: d.degraded + d.corrupted,
                },
            );
        }
    }
}

impl DistributedCnn {
    /// Forward pass through a lossy fabric. Returns `None` when a lost
    /// message aborts the inference (fail-fast, or retransmission
    /// exhausted); under a degrade policy the pass always completes.
    ///
    /// With a lossless plan this is byte-for-byte identical to
    /// [`DistributedCnn::forward`].
    ///
    /// # Panics
    ///
    /// Panics if the input shape disagrees with the config.
    pub fn forward_lossy(&mut self, input: &Tensor, rt: &mut LossyRuntime) -> Option<Tensor> {
        self.forward_lossy_traced(input, rt, None)
    }

    /// [`DistributedCnn::forward_lossy`] with per-unit hop spans pushed
    /// under `scope` (when given): every consumer unit that pulls at
    /// least one cross-node message contributes a fabric-clock
    /// [`SpanLayer::Hop`] span (`hop.conv`, `hop.pool`, `hop.hidden`,
    /// `hop.logit`) annotated with message/loss/retransmit/degrade
    /// counts. With `scope = None` this **is** `forward_lossy` — the
    /// probes are never opened, so the untraced path is unchanged
    /// byte-for-byte.
    ///
    /// # Panics
    ///
    /// Panics if the input shape disagrees with the config.
    pub fn forward_lossy_traced(
        &mut self,
        input: &Tensor,
        rt: &mut LossyRuntime,
        mut scope: Option<&mut SpanScope<'_>>,
    ) -> Option<Tensor> {
        let c = self.config;
        assert_eq!(
            input.shape(),
            &[c.in_channels(), c.in_height(), c.in_width()],
            "input shape mismatch"
        );
        let (oh, ow) = c.conv_dims();
        let (ph, pw) = c.pool_dims();
        let oc = c.conv_channels();
        let k = c.kernel();
        let (ih, iw) = (c.in_height(), c.in_width());
        let kernel_len = c.in_channels() * k * k;

        // Convolution: each conv unit pulls its receptive field from the
        // sensors hosting the input units.
        let mut conv = vec![0.0f32; oc * oh * ow];
        for o in 0..oc {
            for oy in 0..oh {
                for ox in 0..ow {
                    let unit = o * oh * ow + oy * ow + ox;
                    let dst = self.conv_unit_host[unit];
                    let (weights, bias): (&[f32], f32) = match &self.per_unit {
                        Some(pk) => (
                            &pk.weights.data()[unit * kernel_len..(unit + 1) * kernel_len],
                            pk.bias.data()[unit],
                        ),
                        None => {
                            let rep = &self.replicas[&dst];
                            (
                                &rep.weights.data()[o * kernel_len..(o + 1) * kernel_len],
                                rep.bias.data()[o],
                            )
                        }
                    };
                    let probe = scope.is_some().then(|| HopProbe::open(rt));
                    let mut acc = bias;
                    let mut w_off = 0;
                    for icn in 0..c.in_channels() {
                        for ky in 0..k {
                            for kx in 0..k {
                                let iy = oy + ky;
                                let ix = ox + kx;
                                let in_unit = icn * ih * iw + iy * iw + ix;
                                let src = self.assignment.host_of(0, in_unit);
                                let raw = input.data()[in_unit];
                                let v = rt.fetch(raw, src, dst, STAGE_INPUT_CONV, in_unit, unit)?;
                                acc += weights[w_off] * v;
                                w_off += 1;
                            }
                        }
                    }
                    if let (Some(s), Some(p)) = (scope.as_mut(), probe) {
                        p.close(rt, s, "hop.conv");
                    }
                    conv[unit] = acc;
                }
            }
        }
        self.conv_pre_relu = conv.clone();
        let relu: Vec<f32> = conv.iter().map(|&v| v.max(0.0)).collect();

        // Max pooling: each pool unit pulls its window from the conv
        // units' hosts.
        let mut pooled = vec![0.0f32; oc * ph * pw];
        let mut argmax = vec![0usize; oc * ph * pw];
        let p = c.pool();
        for ch in 0..oc {
            for py in 0..ph {
                for px in 0..pw {
                    let punit = ch * ph * pw + py * pw + px;
                    let dst = self.assignment.host_of(2, punit);
                    let probe = scope.is_some().then(|| HopProbe::open(rt));
                    let mut best = f32::NEG_INFINITY;
                    let mut best_off = 0;
                    for ky in 0..p {
                        for kx in 0..p {
                            let y = py * p + ky;
                            let x = px * p + kx;
                            let off = ch * oh * ow + y * ow + x;
                            let src = self.conv_unit_host[off];
                            let v = rt.fetch(relu[off], src, dst, STAGE_CONV_POOL, off, punit)?;
                            if v > best {
                                best = v;
                                best_off = off;
                            }
                        }
                    }
                    if let (Some(s), Some(p)) = (scope.as_mut(), probe) {
                        p.close(rt, s, "hop.pool");
                    }
                    pooled[punit] = best;
                    argmax[punit] = best_off;
                }
            }
        }
        self.pool_out = pooled.clone();
        self.pool_argmax = argmax;

        // Dense 1 + ReLU: each hidden unit pulls the whole pooled vector.
        // The bias + Σ accumulation replicates DenseParams::forward
        // exactly (dot first, bias added after) so the lossless path is
        // bit-identical.
        let feature_len = pooled.len();
        let mut hidden_pre = vec![0.0f32; c.hidden()];
        for (h, slot) in hidden_pre.iter_mut().enumerate() {
            let dst = self.assignment.host_of(3, h);
            let row = &self.dense1.weights.data()[h * feature_len..(h + 1) * feature_len];
            let probe = scope.is_some().then(|| HopProbe::open(rt));
            let mut received = Vec::with_capacity(feature_len);
            for (i, &v) in pooled.iter().enumerate() {
                let src = self.assignment.host_of(2, i);
                received.push(rt.fetch(v, src, dst, STAGE_POOL_HIDDEN, i, h)?);
            }
            if let (Some(s), Some(p)) = (scope.as_mut(), probe) {
                p.close(rt, s, "hop.hidden");
            }
            let dot: f32 = row.iter().zip(&received).map(|(w, v)| w * v).sum();
            *slot = self.dense1.bias.data()[h] + dot;
        }
        self.hidden_pre_relu = hidden_pre.clone();
        let hidden: Vec<f32> = hidden_pre.iter().map(|&v| v.max(0.0)).collect();
        self.hidden_out = hidden.clone();

        // Dense 2: each class unit pulls the hidden vector.
        let mut logits = vec![0.0f32; c.classes()];
        for (o, slot) in logits.iter_mut().enumerate() {
            let dst = self.assignment.host_of(4, o);
            let row = &self.dense2.weights.data()[o * c.hidden()..(o + 1) * c.hidden()];
            let probe = scope.is_some().then(|| HopProbe::open(rt));
            let mut received = Vec::with_capacity(c.hidden());
            for (h, &v) in hidden.iter().enumerate() {
                let src = self.assignment.host_of(3, h);
                received.push(rt.fetch(v, src, dst, STAGE_HIDDEN_LOGIT, h, o)?);
            }
            if let (Some(s), Some(p)) = (scope.as_mut(), probe) {
                p.close(rt, s, "hop.logit");
            }
            let dot: f32 = row.iter().zip(&received).map(|(w, v)| w * v).sum();
            *slot = self.dense2.bias.data()[o] + dot;
        }
        self.last_input = Some(input.clone());
        Some(Tensor::from_vec(vec![c.classes()], logits).expect("logit shape"))
    }

    /// Backward pass through a lossy fabric: gradient contributions that
    /// cross nodes are transported and zero-filled on loss (never
    /// aborting — see the module docs). With a lossless plan this is
    /// byte-for-byte identical to [`DistributedCnn::backward`].
    ///
    /// # Panics
    ///
    /// Panics if called before a completed [`DistributedCnn::forward_lossy`].
    pub fn backward_lossy(&mut self, grad_logits: &Tensor, rt: &mut LossyRuntime) {
        let input = self
            .last_input
            .as_ref()
            .expect("backward before forward")
            .clone();
        let c = self.config;
        let (oh, ow) = c.conv_dims();
        let oc = c.conv_channels();
        let k = c.kernel();
        let (ih, iw) = (c.in_height(), c.in_width());

        // Dense 2 ← logits. Weight/bias grads are local to the class
        // unit's host; the grad contribution to each hidden unit crosses
        // host(4, o) → host(3, h).
        let hidden_len = self.hidden_out.len();
        let mut grad_hidden = vec![0.0f32; hidden_len];
        for (o, &g) in grad_logits.data().iter().enumerate() {
            if g == 0.0 {
                continue;
            }
            let src = self.assignment.host_of(4, o);
            self.dense2.grad_bias.data_mut()[o] += g;
            let row_start = o * hidden_len;
            #[allow(clippy::needless_range_loop)]
            for h in 0..hidden_len {
                self.dense2.grad_weights.data_mut()[row_start + h] += g * self.hidden_out[h];
                let contribution = g * self.dense2.weights.data()[row_start + h];
                let dst = self.assignment.host_of(3, h);
                grad_hidden[h] += rt.fetch_gradient(contribution, src, dst);
            }
        }
        // ReLU on hidden (local).
        let grad_hidden_pre: Vec<f32> = grad_hidden
            .iter()
            .zip(&self.hidden_pre_relu)
            .map(|(&g, &v)| if v > 0.0 { g } else { 0.0 })
            .collect();
        // Dense 1 ← hidden: contributions cross host(3, h) → host(2, i).
        let pool_len = self.pool_out.len();
        let mut grad_pool = vec![0.0f32; pool_len];
        for (h, &g) in grad_hidden_pre.iter().enumerate() {
            if g == 0.0 {
                continue;
            }
            let src = self.assignment.host_of(3, h);
            self.dense1.grad_bias.data_mut()[h] += g;
            let row_start = h * pool_len;
            #[allow(clippy::needless_range_loop)]
            for i in 0..pool_len {
                self.dense1.grad_weights.data_mut()[row_start + i] += g * self.pool_out[i];
                let contribution = g * self.dense1.weights.data()[row_start + i];
                let dst = self.assignment.host_of(2, i);
                grad_pool[i] += rt.fetch_gradient(contribution, src, dst);
            }
        }
        // Un-pool: the gradient flows from the pool unit's host to the
        // argmax conv unit's host.
        let mut grad_relu = vec![0.0f32; oc * oh * ow];
        for (i, &src_unit) in self.pool_argmax.iter().enumerate() {
            let g = grad_pool[i];
            if g == 0.0 {
                continue;
            }
            let src = self.assignment.host_of(2, i);
            let dst = self.conv_unit_host[src_unit];
            grad_relu[src_unit] += rt.fetch_gradient(g, src, dst);
        }
        // ReLU on conv, then local kernel gradient accumulation — the
        // conv unit's inputs were cached at forward time on its own node.
        let grad_conv: Vec<f32> = grad_relu
            .iter()
            .zip(&self.conv_pre_relu)
            .map(|(&g, &v)| if v > 0.0 { g } else { 0.0 })
            .collect();
        let kernel_len = c.in_channels() * k * k;
        for o in 0..oc {
            for oy in 0..oh {
                for ox in 0..ow {
                    let unit = o * oh * ow + oy * ow + ox;
                    let g = grad_conv[unit];
                    if g == 0.0 {
                        continue;
                    }
                    let (grad_w, grad_b_slot): (&mut [f32], &mut f32) = match &mut self.per_unit {
                        Some(pk) => (
                            &mut pk.grad_weights.data_mut()
                                [unit * kernel_len..(unit + 1) * kernel_len],
                            &mut pk.grad_bias.data_mut()[unit],
                        ),
                        None => {
                            let rep = self
                                .replicas
                                .get_mut(&self.conv_unit_host[unit])
                                .expect("replica exists");
                            (
                                &mut rep.grad_weights.data_mut()
                                    [o * kernel_len..(o + 1) * kernel_len],
                                &mut rep.grad_bias.data_mut()[o],
                            )
                        }
                    };
                    *grad_b_slot += g;
                    let mut w_off = 0;
                    for icn in 0..c.in_channels() {
                        for ky in 0..k {
                            for kx in 0..k {
                                let iy = oy + ky;
                                let ix = ox + kx;
                                grad_w[w_off] += g * input.data()[icn * ih * iw + iy * iw + ix];
                                w_off += 1;
                            }
                        }
                    }
                }
            }
        }
    }

    /// Trains one epoch through a lossy fabric; aborted samples (lost
    /// messages under a non-degrading policy) are skipped and counted via
    /// the fabric's `aborted` stat. Returns the mean loss over completed
    /// samples, or `None` if every sample aborted.
    ///
    /// With a lossless plan this trains byte-for-byte identically to
    /// [`DistributedCnn::train_epoch`].
    ///
    /// # Panics
    ///
    /// Panics if `data` is empty or `batch_size` is zero.
    pub fn train_epoch_lossy(
        &mut self,
        data: &[(Tensor, usize)],
        lr: f32,
        batch_size: usize,
        rng: &mut SeedRng,
        rt: &mut LossyRuntime,
    ) -> Option<f32> {
        assert!(!data.is_empty() && batch_size > 0, "invalid training call");
        let mut order: Vec<usize> = (0..data.len()).collect();
        rng.shuffle(&mut order);
        let mut total = 0.0;
        let mut completed = 0usize;
        for batch in order.chunks(batch_size) {
            // Per-batch sub-accumulator, matching train_epoch's FP
            // addition grouping exactly.
            let mut batch_loss = 0.0;
            let mut batch_completed = 0usize;
            for &i in batch {
                let (x, t) = &data[i];
                match self.forward_lossy(x, rt) {
                    Some(logits) => {
                        let (loss, grad) = cross_entropy(&logits, *t);
                        batch_loss += loss;
                        self.backward_lossy(&grad, rt);
                        batch_completed += 1;
                    }
                    None => rt.fabric.note_aborted(),
                }
                rt.advance_pass();
            }
            total += batch_loss;
            completed += batch_completed;
            if batch_completed > 0 {
                self.apply_gradients(lr / batch_completed as f32);
            }
        }
        (completed > 0).then(|| total / completed as f32)
    }

    /// Accuracy over a labelled set through a lossy fabric; an aborted
    /// inference counts as a misclassification (the mesh produced no
    /// answer).
    ///
    /// # Panics
    ///
    /// Panics if `data` is empty.
    pub fn accuracy_lossy(&mut self, data: &[(Tensor, usize)], rt: &mut LossyRuntime) -> f64 {
        assert!(!data.is_empty(), "empty evaluation set");
        let mut correct = 0usize;
        for (x, t) in data {
            match self.forward_lossy(x, rt) {
                Some(logits) => {
                    if logits.argmax() == *t {
                        correct += 1;
                    }
                }
                None => rt.fabric.note_aborted(),
            }
            rt.advance_pass();
        }
        correct as f64 / data.len() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::assignment::Assignment;
    use crate::config::CnnConfig;
    use crate::distributed::WeightUpdate;
    use zeiot_fault::DegradeMode;

    fn small_setup(
        update: WeightUpdate,
        seed: u64,
    ) -> (DistributedCnn, Vec<(Tensor, usize)>, Topology) {
        let config = CnnConfig::new(1, 8, 8, 2, 3, 2, 8, 2).unwrap();
        let topo = Topology::grid(3, 3, 2.0, 3.0).unwrap();
        let graph = config.unit_graph().unwrap();
        let assignment = Assignment::balanced_correspondence(&graph, &topo);
        let mut rng = SeedRng::new(seed);
        let net = DistributedCnn::new(config, assignment, update, &mut rng);

        let mut data = Vec::new();
        let mut drng = SeedRng::new(99);
        for _ in 0..30 {
            for class in 0..2usize {
                let mut img = Tensor::zeros(vec![1, 8, 8]);
                for y in 0..4 {
                    for x in 0..4 {
                        let (yy, xx) = if class == 0 { (y, x) } else { (y + 4, x + 4) };
                        img.set(&[0, yy, xx], 1.0 + drng.normal_with(0.0, 0.1) as f32);
                    }
                }
                data.push((img, class));
            }
        }
        (net, data, topo)
    }

    fn runtime(plan: FaultPlan, policy: RecoveryPolicy, topo: &Topology) -> LossyRuntime {
        LossyRuntime::new(plan, policy, topo, SimDuration::from_millis(500))
    }

    #[test]
    fn lossless_forward_is_bit_identical_to_plain_forward() {
        for update in [
            WeightUpdate::Synchronized,
            WeightUpdate::Independent,
            WeightUpdate::PerUnit,
        ] {
            let (mut a, data, topo) = small_setup(update, 5);
            let (mut b, _, _) = small_setup(update, 5);
            let mut rt = runtime(FaultPlan::lossless(), RecoveryPolicy::FailFast, &topo);
            for (x, _) in data.iter().take(8) {
                let plain = a.forward(x);
                let lossy = b.forward_lossy(x, &mut rt).expect("lossless never aborts");
                assert_eq!(plain.data(), lossy.data(), "{update:?}");
            }
        }
    }

    #[test]
    fn lossless_training_is_bit_identical_to_plain_training() {
        let (mut plain, data, topo) = small_setup(WeightUpdate::Independent, 6);
        let (mut lossy, _, _) = small_setup(WeightUpdate::Independent, 6);
        let mut rng_a = SeedRng::new(3);
        let mut rng_b = SeedRng::new(3);
        let mut rt = runtime(FaultPlan::lossless(), RecoveryPolicy::FailFast, &topo);
        for _ in 0..3 {
            let la = plain.train_epoch(&data, 0.05, 8, &mut rng_a);
            let lb = lossy
                .train_epoch_lossy(&data, 0.05, 8, &mut rng_b, &mut rt)
                .expect("lossless epoch completes");
            assert_eq!(la, lb);
        }
        for (x, _) in data.iter().take(8) {
            assert_eq!(plain.forward(x).data(), lossy.forward(x).data());
        }
        // The fabric carried messages but touched none of them.
        assert!(rt.stats().sent > 0);
        assert_eq!(rt.stats().drops, 0);
        assert_eq!(rt.stats().sent, rt.stats().delivered);
    }

    #[test]
    fn fail_fast_aborts_under_certain_loss() {
        let (mut net, data, topo) = small_setup(WeightUpdate::Independent, 7);
        let plan = FaultPlan::uniform(1, 1.0).unwrap();
        let mut rt = runtime(plan, RecoveryPolicy::FailFast, &topo);
        assert!(net.forward_lossy(&data[0].0, &mut rt).is_none());
        let acc = net.accuracy_lossy(&data, &mut rt);
        assert_eq!(acc, 0.0);
        assert!(rt.stats().aborted > 0);
    }

    #[test]
    fn degrade_policies_never_abort() {
        for mode in [DegradeMode::ZeroFill, DegradeMode::LastValueHold] {
            let (mut net, data, topo) = small_setup(WeightUpdate::Independent, 8);
            let plan = FaultPlan::uniform(2, 0.3).unwrap();
            let mut rt = runtime(plan, RecoveryPolicy::Degrade { mode }, &topo);
            for (x, _) in data.iter().take(10) {
                assert!(net.forward_lossy(x, &mut rt).is_some(), "{mode:?}");
            }
            assert!(rt.stats().degraded > 0, "{mode:?}");
        }
    }

    #[test]
    fn retransmission_survives_moderate_loss() {
        let (mut net, data, topo) = small_setup(WeightUpdate::Independent, 9);
        let plan = FaultPlan::uniform(3, 0.05).unwrap();
        let policy = RecoveryPolicy::Retransmit {
            max_retries: 4,
            timeout: SimDuration::from_millis(20),
            backoff: 2.0,
        };
        let mut rt = runtime(plan, policy, &topo);
        let completed = data
            .iter()
            .take(20)
            .filter(|(x, _)| net.forward_lossy(x, &mut rt).is_some())
            .count();
        // p(per-message failure) = 0.05^5: essentially everything makes it.
        assert!(completed >= 19, "completed={completed}");
        assert!(rt.stats().retries > 0);
        assert!(rt.stats().recovered > 0);
    }

    #[test]
    fn lossy_runs_are_reproducible() {
        let run = || {
            let (mut net, data, topo) = small_setup(WeightUpdate::Independent, 10);
            let plan = FaultPlan::uniform(4, 0.1).unwrap();
            let mut rt = runtime(
                plan,
                RecoveryPolicy::Degrade {
                    mode: DegradeMode::LastValueHold,
                },
                &topo,
            );
            let mut rng = SeedRng::new(5);
            let loss = net.train_epoch_lossy(&data, 0.05, 8, &mut rng, &mut rt);
            let acc = net.accuracy_lossy(&data, &mut rt);
            (loss, acc, *rt.stats())
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn degraded_training_still_learns_under_loss() {
        let (mut net, data, topo) = small_setup(WeightUpdate::Independent, 11);
        let plan = FaultPlan::uniform(5, 0.1).unwrap();
        let mut rt = runtime(
            plan,
            RecoveryPolicy::Degrade {
                mode: DegradeMode::ZeroFill,
            },
            &topo,
        );
        let mut rng = SeedRng::new(6);
        for _ in 0..12 {
            net.train_epoch_lossy(&data, 0.08, 8, &mut rng, &mut rt);
        }
        let acc = net.accuracy_lossy(&data, &mut rt);
        assert!(acc > 0.6, "acc={acc}");
    }

    #[test]
    fn outage_windows_black_out_a_node() {
        let (mut net, data, topo) = small_setup(WeightUpdate::Independent, 12);
        // Node 4 (center of the 3×3 grid) dark for the whole run.
        let plan = FaultPlan::lossless()
            .with_outage(
                NodeId::new(4),
                zeiot_core::time::SimTime::ZERO,
                zeiot_core::time::SimTime::from_secs(3600),
            )
            .unwrap();
        let mut rt = runtime(
            plan,
            RecoveryPolicy::Degrade {
                mode: DegradeMode::ZeroFill,
            },
            &topo,
        );
        let out = net.forward_lossy(&data[0].0, &mut rt);
        assert!(out.is_some());
        assert!(rt.stats().degraded > 0, "center node exchanges messages");
    }

    #[test]
    fn traced_forward_matches_untraced_and_emits_hop_spans() {
        use zeiot_core::time::SimTime;
        use zeiot_obs::trace::{TraceSampler, Tracer};
        let (mut a, data, topo) = small_setup(WeightUpdate::Independent, 14);
        let (mut b, _, _) = small_setup(WeightUpdate::Independent, 14);
        let mk = || {
            runtime(
                FaultPlan::uniform(7, 0.1).unwrap(),
                RecoveryPolicy::Degrade {
                    mode: DegradeMode::ZeroFill,
                },
                &topo,
            )
        };
        let (mut rt_a, mut rt_b) = (mk(), mk());
        let mut tracer = Tracer::new(TraceSampler::always());
        let root = tracer
            .begin(0, 0, "serve.request", SpanLayer::Request, SimTime::ZERO)
            .unwrap();
        let mut scope = tracer.scope(0, 0, root).unwrap();
        let plain = a.forward_lossy(&data[0].0, &mut rt_a).unwrap();
        let traced = b
            .forward_lossy_traced(&data[0].0, &mut rt_b, Some(&mut scope))
            .unwrap();
        // Probes observe, never perturb: outputs and fault counters are
        // byte-identical with and without tracing.
        assert_eq!(plain.data(), traced.data());
        assert_eq!(*rt_a.stats(), *rt_b.stats());
        tracer.finish(0, 0, SimTime::ZERO);
        let trace = tracer.take_finished().remove(0);
        let hop_spans: Vec<_> = trace
            .spans
            .iter()
            .filter(|s| s.layer == SpanLayer::Hop)
            .collect();
        assert!(!hop_spans.is_empty(), "cross-node fetches must leave spans");
        assert!(hop_spans.iter().all(|s| s.clock == ClockDomain::Fabric));
        // Every fabric transmission attempt is accounted to some hop span.
        let span_messages: u64 = hop_spans
            .iter()
            .flat_map(|s| &s.events)
            .map(|e| match e.event {
                SpanEvent::Messages { sent } => sent,
                _ => 0,
            })
            .sum();
        assert_eq!(span_messages, rt_b.stats().sent);
    }

    #[test]
    fn stats_reach_the_recorder() {
        let (mut net, data, topo) = small_setup(WeightUpdate::Independent, 13);
        let plan = FaultPlan::uniform(6, 0.2).unwrap();
        let mut rt = runtime(
            plan,
            RecoveryPolicy::Degrade {
                mode: DegradeMode::ZeroFill,
            },
            &topo,
        );
        let _ = net.forward_lossy(&data[0].0, &mut rt);
        let mut rec = Recorder::new();
        rt.record_to(&mut rec, Label::Global);
        assert_eq!(
            rec.counter_value("fault.sent", &Label::Global),
            rt.stats().sent
        );
        assert!(rec.counter_value("fault.degraded", &Label::Global) > 0);
    }
}
