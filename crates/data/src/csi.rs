//! Synthetic IEEE 802.11ac compressed-CSI feedback features.
//!
//! Stands in for the CSI learning system of ref \[8\]: a capture interface
//! sniffs 802.11ac explicit beamforming-feedback frames, whose compressed
//! angle representation yields **624 features** per frame. The paper
//! evaluates device-free localization over **seven positions** under
//! **six patterns** — combinations of the user's behaviour (stationary /
//! walking) and the AP's antenna orientation (aligned / divergent /
//! mixed) — reporting ≈96 % accuracy in the best pattern.
//!
//! The generator models each (position, pattern) class as a multipath
//! signature: a sparse sum of sinusoids over the feature (subcarrier ×
//! angle) index whose phases depend strongly on the user position and
//! weakly on the antenna pattern. Walking enlarges the inter-position
//! contrast (a moving body modulates more propagation paths — the
//! paper's best case); aligned antennas shrink it.

use serde::{Deserialize, Serialize};
use zeiot_core::error::Result;
use zeiot_core::rng::SeedRng;

/// Number of features per 802.11ac compressed feedback frame (ref \[8\]).
pub const CSI_FEATURES: usize = 624;

/// Number of user positions in the paper's evaluation.
pub const CSI_POSITIONS: usize = 7;

/// The six behaviour × antenna patterns.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct CsiPattern {
    /// Whether the user walks (true) or stands still.
    pub walking: bool,
    /// Antenna orientation of the access point.
    pub antenna: AntennaOrientation,
}

/// AP antenna orientation classes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum AntennaOrientation {
    /// All antennas parallel — least spatial diversity.
    Aligned,
    /// Orientations spread apart — most diversity (the paper's best).
    Divergent,
    /// A mix.
    Mixed,
}

impl CsiPattern {
    /// All six evaluation patterns.
    pub fn all() -> [CsiPattern; 6] {
        let mut out = [CsiPattern {
            walking: false,
            antenna: AntennaOrientation::Aligned,
        }; 6];
        let mut i = 0;
        for walking in [false, true] {
            for antenna in [
                AntennaOrientation::Aligned,
                AntennaOrientation::Divergent,
                AntennaOrientation::Mixed,
            ] {
                out[i] = CsiPattern { walking, antenna };
                i += 1;
            }
        }
        out
    }

    /// Class-separation multiplier of this pattern: larger means the
    /// positions are easier to distinguish.
    pub fn separation(&self) -> f64 {
        let behaviour = if self.walking { 1.1 } else { 0.92 };
        let antenna = match self.antenna {
            AntennaOrientation::Aligned => 0.9,
            AntennaOrientation::Divergent => 1.1,
            AntennaOrientation::Mixed => 1.0,
        };
        behaviour * antenna
    }
}

/// One labelled CSI observation.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CsiSample {
    /// The 624 compressed-angle features.
    pub features: Vec<f64>,
    /// Ground-truth position (0..7).
    pub position: usize,
}

/// Generator for labelled CSI feature vectors.
///
/// # Example
///
/// ```
/// # fn main() -> Result<(), zeiot_core::ConfigError> {
/// use zeiot_data::csi::{CsiGenerator, CsiPattern};
/// use zeiot_core::rng::SeedRng;
///
/// let gen = CsiGenerator::new(42)?;
/// let pattern = CsiPattern::all()[4]; // walking + divergent
/// let mut rng = SeedRng::new(1);
/// let data = gen.generate(pattern, 70, &mut rng);
/// assert_eq!(data.len(), 70);
/// assert_eq!(data[0].features.len(), 624);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct CsiGenerator {
    /// Seed fixing the environment (room multipath geometry).
    environment_seed: u64,
    noise_sigma: f64,
    paths_per_position: usize,
}

impl CsiGenerator {
    /// Creates a generator for a fixed environment.
    ///
    /// # Errors
    ///
    /// Never fails currently; fallible for future parameterization.
    pub fn new(environment_seed: u64) -> Result<Self> {
        Ok(Self {
            environment_seed,
            noise_sigma: 4.3,
            paths_per_position: 5,
        })
    }

    /// The deterministic class-mean signature of a (position, pattern).
    fn signature(&self, position: usize, pattern: CsiPattern) -> Vec<f64> {
        assert!(position < CSI_POSITIONS, "position out of range");
        // Environment-and-position-specific multipath parameters.
        let mut prng = SeedRng::with_stream(
            self.environment_seed,
            (position as u64) << 8 | pattern_code(pattern),
        );
        let sep = pattern.separation();
        let mut sig = vec![0.0; CSI_FEATURES];
        for _ in 0..self.paths_per_position {
            let amp = prng.uniform_range(0.4, 1.0) * sep;
            let freq = prng.uniform_range(2.0, 24.0);
            let phase = prng.uniform_range(0.0, std::f64::consts::TAU);
            for (k, s) in sig.iter_mut().enumerate() {
                *s += amp
                    * (std::f64::consts::TAU * freq * k as f64 / CSI_FEATURES as f64 + phase).cos();
            }
        }
        sig
    }

    /// Generates `n` samples of one pattern, positions drawn uniformly.
    pub fn generate(&self, pattern: CsiPattern, n: usize, rng: &mut SeedRng) -> Vec<CsiSample> {
        (0..n)
            .map(|_| {
                let position = rng.below(CSI_POSITIONS);
                self.sample(position, pattern, rng)
            })
            .collect()
    }

    /// Generates one sample at a known position.
    pub fn sample(&self, position: usize, pattern: CsiPattern, rng: &mut SeedRng) -> CsiSample {
        let mut features = self.signature(position, pattern);
        for f in &mut features {
            *f += rng.normal_with(0.0, self.noise_sigma);
        }
        CsiSample { features, position }
    }

    /// Generates a balanced train/test split for one pattern:
    /// `per_position` training and `per_position_test` test samples per
    /// position.
    pub fn split(
        &self,
        pattern: CsiPattern,
        per_position: usize,
        per_position_test: usize,
        rng: &mut SeedRng,
    ) -> (Vec<CsiSample>, Vec<CsiSample>) {
        let mut train = Vec::new();
        let mut test = Vec::new();
        for pos in 0..CSI_POSITIONS {
            for _ in 0..per_position {
                train.push(self.sample(pos, pattern, rng));
            }
            for _ in 0..per_position_test {
                test.push(self.sample(pos, pattern, rng));
            }
        }
        (train, test)
    }
}

fn pattern_code(p: CsiPattern) -> u64 {
    let a = match p.antenna {
        AntennaOrientation::Aligned => 0,
        AntennaOrientation::Divergent => 1,
        AntennaOrientation::Mixed => 2,
    };
    (u64::from(p.walking) << 2) | a
}

#[cfg(test)]
mod tests {
    use super::*;

    fn best_pattern() -> CsiPattern {
        CsiPattern {
            walking: true,
            antenna: AntennaOrientation::Divergent,
        }
    }

    fn worst_pattern() -> CsiPattern {
        CsiPattern {
            walking: false,
            antenna: AntennaOrientation::Aligned,
        }
    }

    #[test]
    fn six_distinct_patterns() {
        let all = CsiPattern::all();
        for i in 0..6 {
            for j in (i + 1)..6 {
                assert_ne!(all[i], all[j]);
            }
        }
    }

    #[test]
    fn feature_dimension_is_624() {
        let gen = CsiGenerator::new(1).unwrap();
        let mut rng = SeedRng::new(1);
        let s = gen.sample(0, best_pattern(), &mut rng);
        assert_eq!(s.features.len(), CSI_FEATURES);
    }

    #[test]
    fn signatures_differ_between_positions() {
        let gen = CsiGenerator::new(2).unwrap();
        let a = gen.signature(0, best_pattern());
        let b = gen.signature(1, best_pattern());
        let dist: f64 = a
            .iter()
            .zip(&b)
            .map(|(x, y)| (x - y).powi(2))
            .sum::<f64>()
            .sqrt();
        assert!(dist > 5.0, "positions too similar: {dist}");
    }

    #[test]
    fn separation_ordering_matches_paper() {
        assert!(best_pattern().separation() > worst_pattern().separation());
        let all = CsiPattern::all();
        let max = all.iter().map(|p| p.separation()).fold(f64::MIN, f64::max);
        assert!((best_pattern().separation() - max).abs() < 1e-12);
    }

    #[test]
    fn noise_does_not_drown_best_pattern_classes() {
        // Nearest-class-mean distance should exceed typical noise
        // displacement for the best pattern.
        let gen = CsiGenerator::new(3).unwrap();
        let mut rng = SeedRng::new(1);
        let p = best_pattern();
        let s = gen.sample(2, p, &mut rng);
        let dist_to = |pos: usize| -> f64 {
            let sig = gen.signature(pos, p);
            s.features
                .iter()
                .zip(&sig)
                .map(|(x, y)| (x - y).powi(2))
                .sum::<f64>()
                .sqrt()
        };
        let own = dist_to(2);
        let others = (0..CSI_POSITIONS)
            .filter(|&q| q != 2)
            .map(dist_to)
            .fold(f64::MAX, f64::min);
        assert!(own < others, "own={own} others={others}");
    }

    #[test]
    fn split_is_balanced() {
        let gen = CsiGenerator::new(4).unwrap();
        let mut rng = SeedRng::new(1);
        let (train, test) = gen.split(best_pattern(), 10, 4, &mut rng);
        assert_eq!(train.len(), 70);
        assert_eq!(test.len(), 28);
        for pos in 0..CSI_POSITIONS {
            assert_eq!(train.iter().filter(|s| s.position == pos).count(), 10);
        }
    }

    #[test]
    fn deterministic_given_seeds() {
        let gen = CsiGenerator::new(5).unwrap();
        let a = gen.generate(best_pattern(), 5, &mut SeedRng::new(9));
        let b = gen.generate(best_pattern(), 5, &mut SeedRng::new(9));
        assert_eq!(a, b);
    }

    #[test]
    fn different_environments_differ() {
        let g1 = CsiGenerator::new(10).unwrap();
        let g2 = CsiGenerator::new(11).unwrap();
        let a = g1.signature(0, best_pattern());
        let b = g2.signature(0, best_pattern());
        assert_ne!(a, b);
    }
}
