//! Synthetic kindergarten contact logs.
//!
//! The paper's scenario (iv): "By attaching RFID tags to kindergarten
//! children's clothes and installing multiple WiFi base stations sending
//! out WiFi signals that can only reach certain specific areas on play
//! equipment, classrooms, corridors ... each WiFi base station can
//! collect children's tag IDs who play together. Then, we can estimate
//! the friendship of kindergarten's children as a graph called
//! sociogram."
//!
//! The generator simulates a day: children belong to ground-truth
//! friendship groups; each time slot a group (mostly) moves together to
//! one of the areas; loners drift independently. Base stations log which
//! tags they see per slot — exactly the observable the sociogram
//! estimator consumes.

use serde::{Deserialize, Serialize};
use zeiot_core::error::{ConfigError, Result};
use zeiot_core::rng::SeedRng;

/// One base-station observation: child `child` seen in area `area`
/// during time slot `slot`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct ContactRecord {
    /// Collection time slot.
    pub slot: u32,
    /// Area (base-station) id.
    pub area: u32,
    /// Child (tag) id.
    pub child: u32,
}

/// A generated day of observations plus ground truth.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct PlaygroundDay {
    /// All base-station logs.
    pub records: Vec<ContactRecord>,
    /// Ground-truth friendship groups (disjoint, covering all children).
    pub groups: Vec<Vec<u32>>,
    /// Children with no friends (subset of singleton groups).
    pub isolated: Vec<u32>,
    /// Number of areas.
    pub areas: u32,
    /// Number of time slots.
    pub slots: u32,
}

impl PlaygroundDay {
    /// Total children.
    pub fn children(&self) -> u32 {
        self.groups.iter().map(|g| g.len() as u32).sum()
    }
}

/// Generator for kindergarten contact days.
///
/// # Example
///
/// ```
/// # fn main() -> Result<(), zeiot_core::ConfigError> {
/// use zeiot_data::playground::PlaygroundGenerator;
/// use zeiot_core::rng::SeedRng;
///
/// let gen = PlaygroundGenerator::new(4, 5, 6, 40)?; // 4 groups of ≤5, 6 areas, 40 slots
/// let mut rng = SeedRng::new(1);
/// let day = gen.day(&mut rng);
/// assert_eq!(day.areas, 6);
/// assert!(day.children() >= 4);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PlaygroundGenerator {
    groups: usize,
    max_group_size: usize,
    areas: u32,
    slots: u32,
    /// Probability a child follows its group in a slot.
    cohesion: f64,
    /// Fraction of children who are isolated singletons.
    isolation_rate: f64,
    /// Probability a present child is actually logged (RFID read loss).
    read_rate: f64,
}

impl PlaygroundGenerator {
    /// Creates a generator with `groups` friendship groups of 2 to
    /// `max_group_size` children, `areas` base stations and `slots`
    /// collection rounds per day.
    ///
    /// # Errors
    ///
    /// Returns an error on degenerate parameters.
    pub fn new(groups: usize, max_group_size: usize, areas: u32, slots: u32) -> Result<Self> {
        if groups == 0 {
            return Err(ConfigError::new("groups", "must be non-zero"));
        }
        if max_group_size < 2 {
            return Err(ConfigError::new("max_group_size", "must be at least 2"));
        }
        if areas < 2 {
            return Err(ConfigError::new("areas", "need at least two areas"));
        }
        if slots == 0 {
            return Err(ConfigError::new("slots", "must be non-zero"));
        }
        Ok(Self {
            groups,
            max_group_size,
            areas,
            slots,
            cohesion: 0.85,
            isolation_rate: 0.1,
            read_rate: 0.92,
        })
    }

    /// Generates one day.
    pub fn day(&self, rng: &mut SeedRng) -> PlaygroundDay {
        // Ground truth: friendship groups plus isolated singletons.
        let mut groups: Vec<Vec<u32>> = Vec::new();
        let mut next_child = 0u32;
        for _ in 0..self.groups {
            let size = 2 + rng.below(self.max_group_size - 1);
            let members: Vec<u32> = (0..size)
                .map(|_| {
                    let id = next_child;
                    next_child += 1;
                    id
                })
                .collect();
            groups.push(members);
        }
        let isolated_count = ((next_child as f64 * self.isolation_rate).round() as u32).max(1);
        let mut isolated = Vec::new();
        for _ in 0..isolated_count {
            let id = next_child;
            next_child += 1;
            isolated.push(id);
            groups.push(vec![id]);
        }

        // Simulate the day.
        let mut records = Vec::new();
        for slot in 0..self.slots {
            for group in &groups {
                // The group's chosen area this slot.
                let group_area = rng.below(self.areas as usize) as u32;
                for &child in group {
                    let area = if group.len() > 1 && rng.chance(self.cohesion) {
                        group_area
                    } else {
                        rng.below(self.areas as usize) as u32
                    };
                    if rng.chance(self.read_rate) {
                        records.push(ContactRecord { slot, area, child });
                    }
                }
            }
        }
        PlaygroundDay {
            records,
            groups,
            isolated,
            areas: self.areas,
            slots: self.slots,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn generator() -> PlaygroundGenerator {
        PlaygroundGenerator::new(4, 5, 6, 40).unwrap()
    }

    #[test]
    fn day_structure_is_consistent() {
        let mut rng = SeedRng::new(1);
        let day = generator().day(&mut rng);
        let n = day.children();
        // All child ids in records are valid.
        for r in &day.records {
            assert!(r.child < n);
            assert!(r.area < day.areas);
            assert!(r.slot < day.slots);
        }
        // Groups partition the children.
        let mut all: Vec<u32> = day.groups.iter().flatten().copied().collect();
        all.sort_unstable();
        assert_eq!(all, (0..n).collect::<Vec<_>>());
        // Isolated children are singleton groups.
        for iso in &day.isolated {
            assert!(day.groups.iter().any(|g| g.len() == 1 && g[0] == *iso));
        }
    }

    #[test]
    fn friends_co_occur_more_than_strangers() {
        let mut rng = SeedRng::new(2);
        let day = generator().day(&mut rng);
        let n = day.children() as usize;
        // Co-presence counts.
        let mut copresence = vec![vec![0u32; n]; n];
        for slot in 0..day.slots {
            let mut by_area: Vec<Vec<u32>> = vec![Vec::new(); day.areas as usize];
            for r in day.records.iter().filter(|r| r.slot == slot) {
                by_area[r.area as usize].push(r.child);
            }
            for kids in &by_area {
                for (i, &a) in kids.iter().enumerate() {
                    for &b in kids.iter().skip(i + 1) {
                        copresence[a as usize][b as usize] += 1;
                        copresence[b as usize][a as usize] += 1;
                    }
                }
            }
        }
        let mut friend_sum = 0.0f64;
        let mut friend_n = 0.0f64;
        let mut stranger_sum = 0.0f64;
        let mut stranger_n = 0.0f64;
        let group_of = |c: u32| day.groups.iter().position(|g| g.contains(&c)).unwrap();
        #[allow(clippy::needless_range_loop)]
        for a in 0..n {
            for b in (a + 1)..n {
                let v = copresence[a][b] as f64;
                if group_of(a as u32) == group_of(b as u32) {
                    friend_sum += v;
                    friend_n += 1.0;
                } else {
                    stranger_sum += v;
                    stranger_n += 1.0;
                }
            }
        }
        let friend_mean = friend_sum / friend_n.max(1.0);
        let stranger_mean = stranger_sum / stranger_n.max(1.0);
        assert!(
            friend_mean > stranger_mean * 2.0,
            "friends {friend_mean} vs strangers {stranger_mean}"
        );
    }

    #[test]
    fn read_loss_drops_some_records() {
        let mut rng = SeedRng::new(3);
        let day = generator().day(&mut rng);
        let expected_max = (day.children() * day.slots) as usize;
        assert!(day.records.len() < expected_max);
        assert!(day.records.len() > expected_max / 2);
    }

    #[test]
    fn deterministic_given_seed() {
        let g = generator();
        let a = g.day(&mut SeedRng::new(4));
        let b = g.day(&mut SeedRng::new(4));
        assert_eq!(a, b);
    }

    #[test]
    fn invalid_parameters_rejected() {
        assert!(PlaygroundGenerator::new(0, 5, 6, 40).is_err());
        assert!(PlaygroundGenerator::new(4, 1, 6, 40).is_err());
        assert!(PlaygroundGenerator::new(4, 5, 1, 40).is_err());
        assert!(PlaygroundGenerator::new(4, 5, 6, 0).is_err());
    }
}
