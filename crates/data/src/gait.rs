//! Synthetic IR-sensor-array gait and fall streams.
//!
//! Stands in for the paper's prototyped film-type infrared sensor array
//! (Fig. 9): 55 gait samples from five subjects imitating falls, streamed
//! at five frames per second, windowed at 10 frames (2 s) per passage and
//! fed to the CNN as 3-D arrays (§IV.C).
//!
//! A walking subject appears as a vertical intensity blob translating
//! across the array; a fall is an abrupt collapse of the blob's centre of
//! mass to the floor rows with horizontal spreading. Per-subject speed,
//! height and intensity vary.

use zeiot_core::error::{ConfigError, Result};
use zeiot_core::rng::SeedRng;
use zeiot_nn::tensor::Tensor;

/// A labelled window: `[frames, rows, cols]` IR intensities, label
/// 0 = walk, 1 = fall.
pub type GaitSample = (Tensor, usize);

/// Per-subject gait parameters (drawn once per subject, reused across
/// that subject's samples — matching the paper's five subjects).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SubjectProfile {
    /// Horizontal cells traversed per frame.
    pub speed_cells_per_frame: f64,
    /// Body blob height in cells.
    pub height_cells: f64,
    /// Peak IR intensity.
    pub intensity: f64,
}

/// Generator for IR gait/fall windows.
///
/// # Example
///
/// ```
/// # fn main() -> Result<(), zeiot_core::ConfigError> {
/// use zeiot_data::gait::GaitGenerator;
/// use zeiot_core::rng::SeedRng;
///
/// let gen = GaitGenerator::paper_array()?;
/// let mut rng = SeedRng::new(1);
/// let data = gen.generate(40, 5, &mut rng);
/// assert_eq!(data.len(), 40);
/// assert_eq!(data[0].0.shape(), &[10, 8, 8]);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GaitGenerator {
    rows: usize,
    cols: usize,
    frames: usize,
    noise_sigma: f64,
    /// Quantization step of the film sensors (they are crude,
    /// few-level detectors rather than precise radiometers).
    quantization: f64,
    /// Probability that a given sensor is dead/occluded for a window.
    dead_sensor_prob: f64,
}

impl GaitGenerator {
    /// Creates a generator for an array of `rows × cols` IR sensors with
    /// windows of `frames` frames.
    ///
    /// # Errors
    ///
    /// Returns an error on degenerate dimensions.
    pub fn new(rows: usize, cols: usize, frames: usize) -> Result<Self> {
        if rows < 4 || cols < 4 {
            return Err(ConfigError::new("rows/cols", "array must be at least 4×4"));
        }
        if frames < 4 {
            return Err(ConfigError::new("frames", "need at least 4 frames"));
        }
        Ok(Self {
            rows,
            cols,
            frames,
            noise_sigma: 0.30,
            quantization: 0.75,
            dead_sensor_prob: 0.08,
        })
    }

    /// The paper's setting: 8×8 array, 10-frame (2 s @ 5 fps) windows.
    ///
    /// # Errors
    ///
    /// Never fails in practice; the signature matches
    /// [`GaitGenerator::new`].
    pub fn paper_array() -> Result<Self> {
        Self::new(8, 8, 10)
    }

    /// Window length in frames.
    pub fn frames(&self) -> usize {
        self.frames
    }

    /// Draws a subject profile.
    pub fn draw_subject(&self, rng: &mut SeedRng) -> SubjectProfile {
        SubjectProfile {
            speed_cells_per_frame: rng.uniform_range(0.35, 1.0),
            height_cells: rng.uniform_range(0.5, 0.85) * self.rows as f64,
            intensity: rng.uniform_range(0.8, 1.2),
        }
    }

    /// Generates one window for a subject; `fall` selects the label.
    ///
    /// Walks are not all clean: with some probability the subject crouches
    /// mid-passage (a transient partial collapse that recovers) — the
    /// classic fall-detection confounder. Falls may also start late in the
    /// window and be only partially visible.
    pub fn window(&self, subject: &SubjectProfile, fall: bool, rng: &mut SeedRng) -> Tensor {
        let mut t = Tensor::zeros(vec![self.frames, self.rows, self.cols]);
        let start_x = rng.uniform_range(0.0, 1.5);
        // Sensors dead or occluded for this passage.
        let dead: Vec<bool> = (0..self.rows * self.cols)
            .map(|_| rng.chance(self.dead_sensor_prob))
            .collect();
        // Fall begins somewhere in the middle-to-late window.
        let fall_frame = if fall {
            rng.uniform_range(0.25, 0.75) * self.frames as f64
        } else {
            f64::INFINITY
        };
        // Fall severity varies: a soft fall onto a chair collapses less
        // than a hard fall to the floor.
        let severity = if fall {
            rng.uniform_range(0.55, 1.0)
        } else {
            0.0
        };
        // Crouch distractor for walks: a brief dip that recovers. Deep
        // crouches overlap with soft falls — the irreducible confusion.
        let crouch = (!fall && rng.chance(0.35)).then(|| {
            let onset = rng.uniform_range(0.2, 0.6) * self.frames as f64;
            let depth = rng.uniform_range(0.3, 0.55);
            (onset, depth)
        });
        for f in 0..self.frames {
            let progress = (f as f64 - fall_frame).max(0.0); // frames since fall onset
            let falling = fall && f as f64 >= fall_frame;
            // Horizontal motion stops shortly after the fall.
            let x_center = if falling {
                start_x + subject.speed_cells_per_frame * fall_frame
            } else {
                start_x + subject.speed_cells_per_frame * f as f64
            };
            // Vertical: standing body spans from the floor up to
            // height_cells; during a fall the top collapses toward the
            // floor while the footprint widens.
            let mut collapse = if falling {
                severity * (progress / 2.0).min(1.0) // collapses within ~2 frames
            } else {
                0.0
            };
            if let Some((onset, depth)) = crouch {
                // Rises to `depth` over a frame, holds ~2 frames, recovers.
                let since = f as f64 - onset;
                if (0.0..4.0).contains(&since) {
                    let envelope = if since < 1.0 {
                        since
                    } else if since < 3.0 {
                        1.0
                    } else {
                        4.0 - since
                    };
                    collapse = depth * envelope;
                }
            }
            let body_height = subject.height_cells * (1.0 - 0.6 * collapse);
            let body_width = 1.2 + 1.4 * collapse;
            for y in 0..self.rows {
                for x in 0..self.cols {
                    // Row 0 is the ceiling; the floor is rows-1.
                    let height_from_floor = (self.rows - 1 - y) as f64;
                    let dx = (x as f64 - x_center) / body_width;
                    let vertical = if height_from_floor <= body_height {
                        1.0
                    } else {
                        (-(height_from_floor - body_height).powi(2) / 0.5).exp()
                    };
                    let horizontal = (-dx * dx).exp();
                    let v = subject.intensity * vertical * horizontal
                        + rng.normal_with(0.0, self.noise_sigma);
                    // Crude film sensor: clipped, quantized, maybe dead.
                    let v = if dead[y * self.cols + x] {
                        0.0
                    } else {
                        (v.clamp(0.0, 1.5) / self.quantization).round() * self.quantization
                    };
                    let old = t.get(&[f, y, x]);
                    t.set(&[f, y, x], old + v as f32);
                }
            }
        }
        t
    }

    /// Generates `n` balanced labelled windows over `subjects` distinct
    /// subjects (the paper uses 5).
    ///
    /// # Panics
    ///
    /// Panics if `subjects` is zero.
    pub fn generate(&self, n: usize, subjects: usize, rng: &mut SeedRng) -> Vec<GaitSample> {
        assert!(subjects > 0, "need at least one subject");
        let profiles: Vec<SubjectProfile> = (0..subjects).map(|_| self.draw_subject(rng)).collect();
        (0..n)
            .map(|i| {
                let subject = &profiles[i % subjects];
                let fall = rng.chance(0.5);
                (self.window(subject, fall, rng), usize::from(fall))
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Noise-robust centre of mass: background below 0.4 is ignored.
    fn center_of_mass_y(frame_data: &[f32], rows: usize, cols: usize) -> f64 {
        let mut total = 0.0f64;
        let mut weighted = 0.0f64;
        for y in 0..rows {
            for x in 0..cols {
                let v = (frame_data[y * cols + x] as f64 - 0.4).max(0.0);
                total += v;
                weighted += v * y as f64;
            }
        }
        if total > 0.0 {
            weighted / total
        } else {
            0.0
        }
    }

    #[test]
    fn window_shape() {
        let gen = GaitGenerator::paper_array().unwrap();
        let mut rng = SeedRng::new(1);
        let s = gen.draw_subject(&mut rng);
        let w = gen.window(&s, false, &mut rng);
        assert_eq!(w.shape(), &[10, 8, 8]);
    }

    #[test]
    fn walking_blob_moves_horizontally() {
        let gen = GaitGenerator::paper_array().unwrap();
        let mut rng = SeedRng::new(2);
        let s = gen.draw_subject(&mut rng);
        let w = gen.window(&s, false, &mut rng);
        let com_x = |f: usize| {
            let mut total = 0.0f64;
            let mut weighted = 0.0f64;
            for y in 0..8 {
                for x in 0..8 {
                    let v = (w.get(&[f, y, x]) as f64 - 0.4).max(0.0);
                    total += v;
                    weighted += v * x as f64;
                }
            }
            weighted / total
        };
        assert!(
            com_x(9) > com_x(0) + 1.2,
            "first={} last={}",
            com_x(0),
            com_x(9)
        );
    }

    #[test]
    fn falls_drop_center_of_mass_more_than_walks() {
        // With crouch distractors and late falls, individual windows
        // overlap; the *distributions* must still separate (that is the
        // signal the CNN learns).
        let gen = GaitGenerator::paper_array().unwrap();
        let mut rng = SeedRng::new(3);
        let s = gen.draw_subject(&mut rng);
        let mean_drop = |fall: bool, rng: &mut SeedRng| {
            let n = 60;
            (0..n)
                .map(|_| {
                    let w = gen.window(&s, fall, rng);
                    let first = center_of_mass_y(&w.data()[0..64], 8, 8);
                    let last = center_of_mass_y(&w.data()[9 * 64..10 * 64], 8, 8);
                    last - first
                })
                .sum::<f64>()
                / n as f64
        };
        let fall_drop = mean_drop(true, &mut rng);
        let walk_drop = mean_drop(false, &mut rng);
        assert!(
            fall_drop > walk_drop + 0.5,
            "fall={fall_drop} walk={walk_drop}"
        );
    }

    #[test]
    fn generate_balances_labels_and_subjects() {
        let gen = GaitGenerator::paper_array().unwrap();
        let mut rng = SeedRng::new(5);
        let data = gen.generate(200, 5, &mut rng);
        let falls = data.iter().filter(|(_, l)| *l == 1).count();
        assert!(falls > 70 && falls < 130, "falls={falls}");
    }

    #[test]
    fn intensities_are_non_negative() {
        let gen = GaitGenerator::paper_array().unwrap();
        let mut rng = SeedRng::new(6);
        let data = gen.generate(10, 2, &mut rng);
        for (w, _) in &data {
            assert!(w.data().iter().all(|&v| v >= 0.0));
        }
    }

    #[test]
    fn deterministic_given_seed() {
        let gen = GaitGenerator::paper_array().unwrap();
        let a = gen.generate(5, 2, &mut SeedRng::new(7));
        let b = gen.generate(5, 2, &mut SeedRng::new(7));
        assert_eq!(a, b);
    }

    #[test]
    fn invalid_parameters_rejected() {
        assert!(GaitGenerator::new(2, 8, 10).is_err());
        assert!(GaitGenerator::new(8, 2, 10).is_err());
        assert!(GaitGenerator::new(8, 8, 2).is_err());
    }
}
