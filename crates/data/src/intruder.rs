//! Synthetic perimeter-monitoring IR streams.
//!
//! The paper's scenario (iii): "grasping the movement trajectory of
//! people and detecting intrusion of wild animals", using the same
//! film-type IR arrays as the fall-detection prototype. The generator
//! emits windows that are empty, crossed by a walking human (tall,
//! steady blob), or crossed by an animal (low, wide, faster and more
//! erratic blob), together with the ground-truth trajectory.

use serde::{Deserialize, Serialize};
use zeiot_core::error::{ConfigError, Result};
use zeiot_core::rng::SeedRng;
use zeiot_nn::tensor::Tensor;

/// What crossed the array in a window.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum IntruderClass {
    /// Nothing but noise.
    Empty,
    /// A walking person.
    Human,
    /// A wild animal (boar/deer-class: low and fast).
    Animal,
}

impl IntruderClass {
    /// All classes, in label order.
    pub const ALL: [IntruderClass; 3] = [
        IntruderClass::Empty,
        IntruderClass::Human,
        IntruderClass::Animal,
    ];

    /// Dense label (0 = empty, 1 = human, 2 = animal).
    pub fn label(self) -> usize {
        match self {
            IntruderClass::Empty => 0,
            IntruderClass::Human => 1,
            IntruderClass::Animal => 2,
        }
    }
}

/// A labelled window with its ground truth.
#[derive(Debug, Clone, PartialEq)]
pub struct IntruderSample {
    /// `[frames, rows, cols]` IR intensities.
    pub window: Tensor,
    /// What crossed.
    pub class: IntruderClass,
    /// Ground-truth horizontal position per frame (cells), `None` when
    /// nothing is present.
    pub trajectory: Vec<Option<f64>>,
}

/// Generator for perimeter IR windows.
///
/// # Example
///
/// ```
/// # fn main() -> Result<(), zeiot_core::ConfigError> {
/// use zeiot_data::intruder::{IntruderClass, IntruderGenerator};
/// use zeiot_core::rng::SeedRng;
///
/// let gen = IntruderGenerator::perimeter_array()?;
/// let mut rng = SeedRng::new(1);
/// let s = gen.sample(IntruderClass::Animal, &mut rng);
/// assert_eq!(s.window.shape(), &[12, 8, 10]);
/// assert!(s.trajectory.iter().any(|p| p.is_some()));
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct IntruderGenerator {
    rows: usize,
    cols: usize,
    frames: usize,
    noise_sigma: f64,
}

impl IntruderGenerator {
    /// Creates a generator for a `rows × cols` array and `frames`-frame
    /// windows.
    ///
    /// # Errors
    ///
    /// Returns an error on degenerate dimensions.
    pub fn new(rows: usize, cols: usize, frames: usize) -> Result<Self> {
        if rows < 6 || cols < 6 {
            return Err(ConfigError::new("rows/cols", "array must be at least 6×6"));
        }
        if frames < 6 {
            return Err(ConfigError::new("frames", "need at least 6 frames"));
        }
        Ok(Self {
            rows,
            cols,
            frames,
            noise_sigma: 0.12,
        })
    }

    /// A perimeter fence array: 8 rows × 10 columns, 12-frame windows.
    ///
    /// # Errors
    ///
    /// Never fails in practice; the signature matches
    /// [`IntruderGenerator::new`].
    pub fn perimeter_array() -> Result<Self> {
        Self::new(8, 10, 12)
    }

    /// Number of frames per window.
    pub fn frames(&self) -> usize {
        self.frames
    }

    /// Generates one labelled window of the requested class.
    pub fn sample(&self, class: IntruderClass, rng: &mut SeedRng) -> IntruderSample {
        let mut window = Tensor::zeros(vec![self.frames, self.rows, self.cols]);
        let mut trajectory = vec![None; self.frames];

        if class != IntruderClass::Empty {
            // Movement parameters per class: humans are tall and steady;
            // animals are low, wide, faster and jitter vertically.
            let (height_frac, width, speed, jitter) = match class {
                IntruderClass::Human => (
                    rng.uniform_range(0.6, 0.85),
                    1.2,
                    rng.uniform_range(0.5, 0.9),
                    0.1,
                ),
                IntruderClass::Animal => (
                    rng.uniform_range(0.2, 0.38),
                    2.0,
                    rng.uniform_range(0.9, 1.6),
                    0.5,
                ),
                IntruderClass::Empty => unreachable!(),
            };
            let body_height = height_frac * self.rows as f64;
            let ltr = rng.chance(0.5); // direction of crossing
            let start_x = if ltr {
                rng.uniform_range(-1.0, 1.0)
            } else {
                self.cols as f64 - 1.0 + rng.uniform_range(-1.0, 1.0)
            };
            let intensity = rng.uniform_range(0.85, 1.15);
            for (f, slot) in trajectory.iter_mut().enumerate() {
                let step = speed * f as f64 + rng.normal_with(0.0, jitter);
                let x_center = if ltr { start_x + step } else { start_x - step };
                if x_center > -1.5 && x_center < self.cols as f64 + 0.5 {
                    *slot = Some(x_center);
                }
                for y in 0..self.rows {
                    for x in 0..self.cols {
                        let height_from_floor = (self.rows - 1 - y) as f64;
                        let vertical = if height_from_floor <= body_height {
                            1.0
                        } else {
                            (-(height_from_floor - body_height).powi(2) / 0.4).exp()
                        };
                        let dx = (x as f64 - x_center) / width;
                        let v = intensity * vertical * (-dx * dx).exp();
                        let old = window.get(&[f, y, x]);
                        window.set(&[f, y, x], old + v as f32);
                    }
                }
            }
        }

        // Sensor noise everywhere.
        for v in window.data_mut() {
            *v = (*v as f64 + rng.normal_with(0.0, self.noise_sigma)).max(0.0) as f32;
        }
        IntruderSample {
            window,
            class,
            trajectory,
        }
    }

    /// Generates `n` samples with uniformly mixed classes.
    pub fn generate(&self, n: usize, rng: &mut SeedRng) -> Vec<IntruderSample> {
        (0..n)
            .map(|i| self.sample(IntruderClass::ALL[i % 3], rng))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn generator() -> IntruderGenerator {
        IntruderGenerator::perimeter_array().unwrap()
    }

    #[test]
    fn empty_windows_are_just_noise() {
        let mut rng = SeedRng::new(1);
        let s = generator().sample(IntruderClass::Empty, &mut rng);
        assert!(s.trajectory.iter().all(|p| p.is_none()));
        let mean: f32 = s.window.sum() / s.window.len() as f32;
        assert!(mean < 0.2, "mean={mean}");
    }

    #[test]
    fn intruders_move_across_the_array() {
        let mut rng = SeedRng::new(2);
        for class in [IntruderClass::Human, IntruderClass::Animal] {
            let s = generator().sample(class, &mut rng);
            let present: Vec<f64> = s.trajectory.iter().flatten().copied().collect();
            assert!(present.len() >= 4, "{class:?}: too few present frames");
            let travel = (present.last().unwrap() - present.first().unwrap()).abs();
            assert!(travel > 2.0, "{class:?}: travel={travel}");
        }
    }

    #[test]
    fn humans_are_taller_than_animals() {
        let mut rng = SeedRng::new(3);
        let gen = generator();
        // Mean activated height over many samples.
        let mean_height = |class: IntruderClass, rng: &mut SeedRng| -> f64 {
            let mut total = 0.0;
            let n = 20;
            for _ in 0..n {
                let s = gen.sample(class, rng);
                // Highest row (smallest y) with strong activation.
                let mut best = 0.0f64;
                for f in 0..gen.frames() {
                    for y in 0..8 {
                        for x in 0..10 {
                            if s.window.get(&[f, y, x]) > 0.5 {
                                best = best.max((8 - 1 - y) as f64);
                            }
                        }
                    }
                }
                total += best;
            }
            total / n as f64
        };
        let h = mean_height(IntruderClass::Human, &mut rng);
        let a = mean_height(IntruderClass::Animal, &mut rng);
        assert!(h > a + 1.5, "human={h} animal={a}");
    }

    #[test]
    fn animals_are_faster() {
        let mut rng = SeedRng::new(4);
        let gen = generator();
        let mean_speed = |class: IntruderClass, rng: &mut SeedRng| -> f64 {
            let mut total = 0.0;
            let mut n = 0.0;
            for _ in 0..30 {
                let s = gen.sample(class, rng);
                let pts: Vec<(usize, f64)> = s
                    .trajectory
                    .iter()
                    .enumerate()
                    .filter_map(|(f, p)| p.map(|x| (f, x)))
                    .collect();
                if pts.len() >= 2 {
                    let (f0, x0) = pts[0];
                    let (f1, x1) = pts[pts.len() - 1];
                    total += (x1 - x0).abs() / (f1 - f0) as f64;
                    n += 1.0;
                }
            }
            total / n
        };
        let human = mean_speed(IntruderClass::Human, &mut rng);
        let animal = mean_speed(IntruderClass::Animal, &mut rng);
        assert!(animal > human, "animal={animal} human={human}");
    }

    #[test]
    fn generate_mixes_classes() {
        let mut rng = SeedRng::new(5);
        let data = generator().generate(30, &mut rng);
        for class in IntruderClass::ALL {
            assert_eq!(data.iter().filter(|s| s.class == class).count(), 10);
        }
    }

    #[test]
    fn deterministic_given_seed() {
        let gen = generator();
        let a = gen.generate(6, &mut SeedRng::new(6));
        let b = gen.generate(6, &mut SeedRng::new(6));
        assert_eq!(a, b);
    }

    #[test]
    fn invalid_dimensions_rejected() {
        assert!(IntruderGenerator::new(4, 10, 12).is_err());
        assert!(IntruderGenerator::new(8, 4, 12).is_err());
        assert!(IntruderGenerator::new(8, 10, 4).is_err());
    }
}
