//! # zeiot-data
//!
//! Synthetic dataset generators standing in for the paper's
//! hardware-collected datasets (the repro-band substitution layer; see
//! DESIGN.md §2 for the substitution table).
//!
//! | Paper dataset | Generator |
//! |---|---|
//! | 2,961 lounge temperature samples, 25×17 cells, 50 sensors | [`temperature`] |
//! | 55 IR-array gait streams, 5 subjects, 5 fps, falls | [`gait`] |
//! | Bluetooth RSSI among phones in multi-car trains | [`train`] |
//! | RFID tag sightings at kindergarten base stations (scenario iv) | [`playground`] |
//! | Perimeter IR streams: humans vs wild animals (scenario iii) | [`intruder`] |
//! | 802.11ac compressed CSI feedback frames, 7 positions × 6 patterns | [`csi`] |
//!
//! Every generator is deterministic given a seed, physically motivated
//! (diurnal cycles, body shadowing, inter-car door attenuation, multipath
//! signatures), and calibrated so the paper's estimators land near the
//! reported accuracy — the *shape* of each result, not its absolute
//! value, is the reproduction target.

pub mod csi;
pub mod gait;
pub mod intruder;
pub mod playground;
pub mod temperature;
pub mod train;

pub use csi::CsiGenerator;
pub use gait::GaitGenerator;
pub use intruder::IntruderGenerator;
pub use playground::PlaygroundGenerator;
pub use temperature::TemperatureFieldGenerator;
pub use train::TrainSceneGenerator;
