//! Synthetic multi-car train RSSI scenes.
//!
//! Stands in for the real train experiments of ref \[65\] (UbiComp 2014):
//! smartphones measuring Bluetooth RSSI to each other and to reference
//! nodes of known position, across cars whose connecting doors
//! "significantly attenuate the signal". Car-level congestion (three
//! levels) and user positions are the ground truth the estimators must
//! recover.

use serde::{Deserialize, Serialize};
use zeiot_core::error::{ConfigError, Result};
use zeiot_core::rng::SeedRng;

/// Three-level congestion, as estimated in the paper (F-measure 0.82).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum CongestionLevel {
    /// A handful of standing passengers.
    Low,
    /// Most seats taken, some standing.
    Medium,
    /// Crush load.
    High,
}

impl CongestionLevel {
    /// All levels in ascending order.
    pub const ALL: [CongestionLevel; 3] = [
        CongestionLevel::Low,
        CongestionLevel::Medium,
        CongestionLevel::High,
    ];

    /// Ordinal index (0, 1, 2).
    pub fn index(self) -> usize {
        match self {
            CongestionLevel::Low => 0,
            CongestionLevel::Medium => 1,
            CongestionLevel::High => 2,
        }
    }

    /// Passenger-count range per car for this level.
    pub fn passenger_range(self) -> (usize, usize) {
        match self {
            CongestionLevel::Low => (8, 25),
            CongestionLevel::Medium => (40, 75),
            CongestionLevel::High => (95, 150),
        }
    }
}

/// One generated scene: ground truth plus the RSSI observations the
/// estimator sees.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TrainScene {
    /// Congestion truth per car.
    pub congestion: Vec<CongestionLevel>,
    /// Passenger count per car.
    pub passengers: Vec<usize>,
    /// Car of each participating user (phone).
    pub user_car: Vec<usize>,
    /// Position of each user along the train axis (metres).
    pub user_x: Vec<f64>,
    /// Car of each reference node.
    pub reference_car: Vec<usize>,
    /// RSSI from each user to each reference node (dBm; `None` = below
    /// sensitivity).
    pub user_to_reference: Vec<Vec<Option<f64>>>,
    /// Pairwise RSSI among users (`None` on the diagonal and below
    /// sensitivity).
    pub user_to_user: Vec<Vec<Option<f64>>>,
}

impl TrainScene {
    /// Number of cars.
    pub fn cars(&self) -> usize {
        self.congestion.len()
    }

    /// Number of participating users.
    pub fn users(&self) -> usize {
        self.user_car.len()
    }
}

/// Generator for train RSSI scenes.
///
/// # Example
///
/// ```
/// # fn main() -> Result<(), zeiot_core::ConfigError> {
/// use zeiot_data::train::TrainSceneGenerator;
/// use zeiot_core::rng::SeedRng;
///
/// let gen = TrainSceneGenerator::paper_train()?;
/// let mut rng = SeedRng::new(1);
/// let scene = gen.scene(&mut rng);
/// assert_eq!(scene.cars(), 6);
/// assert!(scene.users() > 0);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct TrainSceneGenerator {
    cars: usize,
    car_length_m: f64,
    references_per_car: usize,
    tx_power_dbm: f64,
    ref_loss_1m_db: f64,
    path_loss_exponent: f64,
    door_attenuation_db: f64,
    crowd_db_per_person_per_m: f64,
    noise_sigma_db: f64,
    sensitivity_dbm: f64,
    phone_penetration: f64,
}

impl TrainSceneGenerator {
    /// Creates a generator for `cars` cars of `car_length_m` metres with
    /// `references_per_car` reference nodes.
    ///
    /// # Errors
    ///
    /// Returns an error on degenerate parameters.
    pub fn new(cars: usize, car_length_m: f64, references_per_car: usize) -> Result<Self> {
        if cars < 2 {
            return Err(ConfigError::new("cars", "need at least two cars"));
        }
        if !(car_length_m > 5.0 && car_length_m.is_finite()) {
            return Err(ConfigError::new("car_length_m", "must exceed 5 m"));
        }
        if references_per_car == 0 {
            return Err(ConfigError::new("references_per_car", "must be non-zero"));
        }
        Ok(Self {
            cars,
            car_length_m,
            references_per_car,
            tx_power_dbm: 0.0,
            ref_loss_1m_db: 45.0,
            path_loss_exponent: 2.2,
            door_attenuation_db: 3.5,
            crowd_db_per_person_per_m: 0.012,
            noise_sigma_db: 7.0,
            sensitivity_dbm: -95.0,
            phone_penetration: 0.12,
        })
    }

    /// A six-car commuter train, 20 m cars, two reference nodes per car
    /// (matching the paper's experimental setting).
    ///
    /// # Errors
    ///
    /// Never fails in practice; the signature matches
    /// [`TrainSceneGenerator::new`].
    pub fn paper_train() -> Result<Self> {
        Self::new(6, 20.0, 2)
    }

    /// Number of cars.
    pub fn cars(&self) -> usize {
        self.cars
    }

    /// RSSI between two axial positions given the per-car passenger
    /// counts (deterministic part; the caller adds measurement noise).
    fn mean_rssi(&self, x1: f64, x2: f64, passengers: &[usize]) -> f64 {
        let d = (x1 - x2).abs().max(0.5);
        let mut loss = self.ref_loss_1m_db + 10.0 * self.path_loss_exponent * d.log10();
        // Door crossings between the two positions.
        let car1 = (x1 / self.car_length_m).floor() as usize;
        let car2 = (x2 / self.car_length_m).floor() as usize;
        let crossings = car1.abs_diff(car2);
        loss += self.door_attenuation_db * crossings as f64;
        // Crowd attenuation: bodies along the path, proportional to the
        // local density of each traversed car segment.
        let (lo, hi) = if x1 < x2 { (x1, x2) } else { (x2, x1) };
        for (car, &count) in passengers.iter().enumerate() {
            let car_start = car as f64 * self.car_length_m;
            let car_end = car_start + self.car_length_m;
            let overlap = (hi.min(car_end) - lo.max(car_start)).max(0.0);
            let density = count as f64 / self.car_length_m;
            loss += self.crowd_db_per_person_per_m * density * overlap * count as f64 / 10.0;
        }
        self.tx_power_dbm - loss
    }

    /// Generates one scene with uniformly random per-car congestion.
    pub fn scene(&self, rng: &mut SeedRng) -> TrainScene {
        let congestion: Vec<CongestionLevel> = (0..self.cars)
            .map(|_| *rng.choose(&CongestionLevel::ALL).expect("non-empty"))
            .collect();
        self.scene_with_congestion(&congestion, rng)
    }

    /// Generates one scene with specified per-car congestion.
    ///
    /// # Panics
    ///
    /// Panics if `congestion.len()` differs from the car count.
    pub fn scene_with_congestion(
        &self,
        congestion: &[CongestionLevel],
        rng: &mut SeedRng,
    ) -> TrainScene {
        assert_eq!(congestion.len(), self.cars, "congestion per car");
        let passengers: Vec<usize> = congestion
            .iter()
            .map(|c| {
                let (lo, hi) = c.passenger_range();
                lo + rng.below(hi - lo + 1)
            })
            .collect();

        // Users: phones among passengers.
        let mut user_car = Vec::new();
        let mut user_x = Vec::new();
        for (car, &count) in passengers.iter().enumerate() {
            let phones = ((count as f64 * self.phone_penetration).round() as usize).max(1);
            for _ in 0..phones {
                user_car.push(car);
                user_x.push(
                    car as f64 * self.car_length_m
                        + rng.uniform_range(0.5, self.car_length_m - 0.5),
                );
            }
        }

        // Reference nodes at fixed positions within each car.
        let mut reference_car = Vec::new();
        let mut reference_x = Vec::new();
        for car in 0..self.cars {
            for r in 0..self.references_per_car {
                reference_car.push(car);
                reference_x.push(
                    car as f64 * self.car_length_m
                        + (r as f64 + 0.5) / self.references_per_car as f64 * self.car_length_m,
                );
            }
        }

        let sample = |mean: f64, rng: &mut SeedRng| -> Option<f64> {
            let v = mean + rng.normal_with(0.0, self.noise_sigma_db);
            (v >= self.sensitivity_dbm).then_some(v)
        };

        let user_to_reference: Vec<Vec<Option<f64>>> = user_x
            .iter()
            .map(|&ux| {
                reference_x
                    .iter()
                    .map(|&rx| sample(self.mean_rssi(ux, rx, &passengers), rng))
                    .collect()
            })
            .collect();

        let n = user_x.len();
        let mut user_to_user = vec![vec![None; n]; n];
        for i in 0..n {
            for j in (i + 1)..n {
                let v = sample(self.mean_rssi(user_x[i], user_x[j], &passengers), rng);
                user_to_user[i][j] = v;
                user_to_user[j][i] = v;
            }
        }

        TrainScene {
            congestion: congestion.to_vec(),
            passengers,
            user_car,
            user_x,
            reference_car,
            user_to_reference,
            user_to_user,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn gen() -> TrainSceneGenerator {
        TrainSceneGenerator::paper_train().unwrap()
    }

    #[test]
    fn scene_dimensions_are_consistent() {
        let g = gen();
        let mut rng = SeedRng::new(1);
        let s = g.scene(&mut rng);
        assert_eq!(s.cars(), 6);
        assert_eq!(s.user_car.len(), s.user_x.len());
        assert_eq!(s.user_to_reference.len(), s.users());
        assert_eq!(s.user_to_reference[0].len(), 12); // 6 cars × 2 refs
        assert_eq!(s.user_to_user.len(), s.users());
    }

    #[test]
    fn same_car_rssi_stronger_than_cross_car() {
        let g = gen();
        let mut rng = SeedRng::new(2);
        let levels = [CongestionLevel::Low; 6];
        let s = g.scene_with_congestion(&levels, &mut rng);
        // Average same-car vs different-car user→reference RSSI.
        let (mut same, mut same_n, mut diff, mut diff_n) = (0.0, 0, 0.0, 0);
        for (u, row) in s.user_to_reference.iter().enumerate() {
            for (r, v) in row.iter().enumerate() {
                if let Some(v) = v {
                    if s.reference_car[r] == s.user_car[u] {
                        same += v;
                        same_n += 1;
                    } else {
                        diff += v;
                        diff_n += 1;
                    }
                }
            }
        }
        assert!(same_n > 0 && diff_n > 0);
        assert!(
            same / same_n as f64 > diff / diff_n as f64 + 10.0,
            "same={} diff={}",
            same / same_n as f64,
            diff / diff_n as f64
        );
    }

    #[test]
    fn congestion_attenuates_in_car_links() {
        let g = gen();
        let mut rng = SeedRng::new(3);
        let low = g.scene_with_congestion(&[CongestionLevel::Low; 6], &mut rng);
        let high = g.scene_with_congestion(&[CongestionLevel::High; 6], &mut rng);
        let mean_same_car = |s: &TrainScene| {
            let mut total = 0.0;
            let mut n = 0;
            for (u, row) in s.user_to_reference.iter().enumerate() {
                for (r, v) in row.iter().enumerate() {
                    if let Some(v) = v {
                        if s.reference_car[r] == s.user_car[u] {
                            total += v;
                            n += 1;
                        }
                    }
                }
            }
            total / n as f64
        };
        assert!(
            mean_same_car(&low) > mean_same_car(&high) + 2.0,
            "low={} high={}",
            mean_same_car(&low),
            mean_same_car(&high)
        );
    }

    #[test]
    fn passenger_counts_match_levels() {
        let g = gen();
        let mut rng = SeedRng::new(4);
        let s = g.scene_with_congestion(
            &[
                CongestionLevel::Low,
                CongestionLevel::Medium,
                CongestionLevel::High,
                CongestionLevel::Low,
                CongestionLevel::Medium,
                CongestionLevel::High,
            ],
            &mut rng,
        );
        for (car, level) in s.congestion.iter().enumerate() {
            let (lo, hi) = level.passenger_range();
            assert!((lo..=hi).contains(&s.passengers[car]));
        }
    }

    #[test]
    fn high_congestion_means_more_users() {
        let g = gen();
        let mut rng = SeedRng::new(5);
        let low = g.scene_with_congestion(&[CongestionLevel::Low; 6], &mut rng);
        let high = g.scene_with_congestion(&[CongestionLevel::High; 6], &mut rng);
        assert!(high.users() > low.users() * 2);
    }

    #[test]
    fn user_to_user_matrix_is_symmetric() {
        let g = gen();
        let mut rng = SeedRng::new(6);
        let s = g.scene(&mut rng);
        for i in 0..s.users() {
            assert!(s.user_to_user[i][i].is_none());
            for j in 0..s.users() {
                assert_eq!(s.user_to_user[i][j], s.user_to_user[j][i]);
            }
        }
    }

    #[test]
    fn deterministic_given_seed() {
        let g = gen();
        let a = g.scene(&mut SeedRng::new(7));
        let b = g.scene(&mut SeedRng::new(7));
        assert_eq!(a, b);
    }

    #[test]
    fn invalid_parameters_rejected() {
        assert!(TrainSceneGenerator::new(1, 20.0, 2).is_err());
        assert!(TrainSceneGenerator::new(6, 3.0, 2).is_err());
        assert!(TrainSceneGenerator::new(6, 20.0, 0).is_err());
    }
}
