//! Synthetic lounge temperature fields.
//!
//! Stands in for the paper's real deployment: a >1,400 m² lounge divided
//! into 25×17 cells, 50 temperature sensors, 2,961 samples collected
//! every 30 minutes from August to October 2016, labelled for
//! *discomfort* (paper §IV.C).
//!
//! The generator produces physically plausible fields: a diurnal base
//! temperature, smooth HVAC zone gradients, sensor noise — and, for
//! discomfort samples, a localized thermal anomaly (a hot pocket by the
//! windows, a cold draft at a door). Discomfort is thus a *spatially
//! local* pattern, which is exactly what a CNN (and MicroDeep) detects
//! better than a global-mean thresholder.

use zeiot_core::error::{ConfigError, Result};
use zeiot_core::rng::SeedRng;
use zeiot_nn::tensor::Tensor;

/// A labelled temperature sample: `[1, rows, cols]` field in °C and a
/// discomfort flag.
pub type TemperatureSample = (Tensor, usize);

/// Generator for labelled lounge temperature fields.
///
/// # Example
///
/// ```
/// # fn main() -> Result<(), zeiot_core::ConfigError> {
/// use zeiot_data::temperature::TemperatureFieldGenerator;
/// use zeiot_core::rng::SeedRng;
///
/// let gen = TemperatureFieldGenerator::paper_lounge()?;
/// let mut rng = SeedRng::new(1);
/// let data = gen.generate(100, &mut rng);
/// assert_eq!(data.len(), 100);
/// let discomfort = data.iter().filter(|(_, l)| *l == 1).count();
/// assert!(discomfort > 20 && discomfort < 80); // roughly balanced
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct TemperatureFieldGenerator {
    cols: usize,
    rows: usize,
    base_temp_c: f64,
    diurnal_amplitude_c: f64,
    zone_gradient_c: f64,
    noise_sigma_c: f64,
    anomaly_amplitude_c: f64,
    anomaly_radius_cells: f64,
    discomfort_fraction: f64,
    /// Persistent trouble spots of the room, as `(col fraction, row
    /// fraction, sign)` — hot pockets by the windows (+1), cold drafts at
    /// the doors (−1). Real buildings misbehave at fixed locations, and
    /// this is what makes the pattern learnable by units pinned to fixed
    /// sensors.
    anomaly_sites: Vec<(f64, f64, f64)>,
}

impl TemperatureFieldGenerator {
    /// Creates a generator for a `cols × rows` cell grid.
    ///
    /// # Errors
    ///
    /// Returns an error if the grid is degenerate or the discomfort
    /// fraction is outside `(0, 1)`.
    pub fn new(cols: usize, rows: usize, discomfort_fraction: f64) -> Result<Self> {
        if cols < 4 || rows < 4 {
            return Err(ConfigError::new("cols/rows", "grid must be at least 4×4"));
        }
        if !(discomfort_fraction > 0.0 && discomfort_fraction < 1.0) {
            return Err(ConfigError::new("discomfort_fraction", "must be in (0, 1)"));
        }
        Ok(Self {
            cols,
            rows,
            base_temp_c: 24.0,
            diurnal_amplitude_c: 2.5,
            zone_gradient_c: 1.5,
            noise_sigma_c: 0.35,
            anomaly_amplitude_c: 1.8,
            anomaly_radius_cells: 2.0,
            discomfort_fraction,
            // Two window bays (south wall), two doors, one server rack,
            // one loading entrance — fixed per room.
            anomaly_sites: vec![
                (0.20, 0.90, 1.0),
                (0.70, 0.90, 1.0),
                (0.05, 0.30, -1.0),
                (0.95, 0.45, -1.0),
                (0.50, 0.15, 1.0),
                (0.35, 0.05, -1.0),
            ],
        })
    }

    /// The paper's lounge geometry: 25 × 17 cells, balanced labels.
    ///
    /// # Errors
    ///
    /// Never fails in practice; the signature matches
    /// [`TemperatureFieldGenerator::new`].
    pub fn paper_lounge() -> Result<Self> {
        Self::new(25, 17, 0.5)
    }

    /// Columns of the grid.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Rows of the grid.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Generates one labelled sample at a random time of day.
    pub fn sample(&self, rng: &mut SeedRng) -> TemperatureSample {
        let hour = rng.uniform_range(0.0, 24.0);
        let discomfort = rng.chance(self.discomfort_fraction);
        (
            self.sample_at(hour, discomfort, rng),
            usize::from(discomfort),
        )
    }

    /// Generates a field for a specific hour and label.
    pub fn sample_at(&self, hour: f64, discomfort: bool, rng: &mut SeedRng) -> Tensor {
        let mut field = Tensor::zeros(vec![1, self.rows, self.cols]);
        // Diurnal base: coolest ~05:00, warmest ~15:00.
        let phase = (hour - 15.0) / 24.0 * std::f64::consts::TAU;
        let base = self.base_temp_c + self.diurnal_amplitude_c * phase.cos();
        // Smooth HVAC gradient across the room (direction varies slowly
        // with the random draw to avoid one fixed spatial shortcut).
        let angle = rng.uniform_range(0.0, std::f64::consts::TAU);
        let (gx, gy) = (angle.cos(), angle.sin());
        // Optional anomaly at one of the room's persistent trouble
        // spots, with positional jitter.
        let anomaly = discomfort.then(|| {
            let &(fx, fy, sign) = rng
                .choose(&self.anomaly_sites)
                .expect("sites are non-empty");
            let cx = (fx * self.cols as f64 + rng.normal_with(0.0, 1.5))
                .clamp(0.0, self.cols as f64 - 1.0);
            let cy = (fy * self.rows as f64 + rng.normal_with(0.0, 1.5))
                .clamp(0.0, self.rows as f64 - 1.0);
            (cx, cy, sign * self.anomaly_amplitude_c)
        });
        for y in 0..self.rows {
            for x in 0..self.cols {
                let xf = x as f64 / (self.cols - 1) as f64 - 0.5;
                let yf = y as f64 / (self.rows - 1) as f64 - 0.5;
                let mut t = base + self.zone_gradient_c * (gx * xf + gy * yf);
                if let Some((cx, cy, amp)) = anomaly {
                    let d2 = (x as f64 - cx).powi(2) + (y as f64 - cy).powi(2);
                    t += amp * (-d2 / (2.0 * self.anomaly_radius_cells.powi(2))).exp();
                }
                t += rng.normal_with(0.0, self.noise_sigma_c);
                field.set(&[0, y, x], t as f32);
            }
        }
        field
    }

    /// Generates `n` labelled samples.
    pub fn generate(&self, n: usize, rng: &mut SeedRng) -> Vec<TemperatureSample> {
        (0..n).map(|_| self.sample(rng)).collect()
    }

    /// Generates the paper-sized dataset (2,961 samples).
    pub fn paper_dataset(&self, rng: &mut SeedRng) -> Vec<TemperatureSample> {
        self.generate(2_961, rng)
    }

    /// Normalizes fields in place to zero mean / unit scale per sample
    /// (what the sensing nodes would do locally before feeding the CNN).
    pub fn normalize(samples: &mut [TemperatureSample]) {
        for (field, _) in samples {
            let n = field.len() as f32;
            let mean = field.sum() / n;
            let var = field.data().iter().map(|v| (v - mean).powi(2)).sum::<f32>() / n;
            let std = var.sqrt().max(1e-6);
            for v in field.data_mut() {
                *v = (*v - mean) / std;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_lounge_dimensions() {
        let gen = TemperatureFieldGenerator::paper_lounge().unwrap();
        let mut rng = SeedRng::new(1);
        let (field, _) = gen.sample(&mut rng);
        assert_eq!(field.shape(), &[1, 17, 25]);
    }

    #[test]
    fn temperatures_are_physical() {
        let gen = TemperatureFieldGenerator::paper_lounge().unwrap();
        let mut rng = SeedRng::new(2);
        for _ in 0..50 {
            let (field, _) = gen.sample(&mut rng);
            for &v in field.data() {
                assert!((10.0..40.0).contains(&(v as f64)), "temp {v} out of range");
            }
        }
    }

    #[test]
    fn discomfort_samples_have_larger_local_extremes() {
        let gen = TemperatureFieldGenerator::paper_lounge().unwrap();
        let mut rng = SeedRng::new(3);
        let spread = |field: &Tensor| {
            let max = field.data().iter().copied().fold(f32::MIN, f32::max);
            let min = field.data().iter().copied().fold(f32::MAX, f32::min);
            max - min
        };
        let mut ok_spread = 0.0;
        let mut bad_spread = 0.0;
        for _ in 0..100 {
            ok_spread += spread(&gen.sample_at(12.0, false, &mut rng)) as f64;
            bad_spread += spread(&gen.sample_at(12.0, true, &mut rng)) as f64;
        }
        assert!(
            bad_spread > ok_spread * 1.1,
            "ok={ok_spread} bad={bad_spread}"
        );
    }

    #[test]
    fn labels_match_requested_fraction() {
        let gen = TemperatureFieldGenerator::new(25, 17, 0.3).unwrap();
        let mut rng = SeedRng::new(4);
        let data = gen.generate(2_000, &mut rng);
        let positive = data.iter().filter(|(_, l)| *l == 1).count();
        let frac = positive as f64 / data.len() as f64;
        assert!((frac - 0.3).abs() < 0.05, "frac={frac}");
    }

    #[test]
    fn diurnal_cycle_visible() {
        let gen = TemperatureFieldGenerator::paper_lounge().unwrap();
        let mut rng = SeedRng::new(5);
        let mean = |f: &Tensor| f.sum() as f64 / f.len() as f64;
        let night: f64 = (0..20)
            .map(|_| mean(&gen.sample_at(4.0, false, &mut rng)))
            .sum::<f64>()
            / 20.0;
        let day: f64 = (0..20)
            .map(|_| mean(&gen.sample_at(15.0, false, &mut rng)))
            .sum::<f64>()
            / 20.0;
        assert!(day > night + 2.0, "day={day} night={night}");
    }

    #[test]
    fn normalization_zero_mean_unit_std() {
        let gen = TemperatureFieldGenerator::paper_lounge().unwrap();
        let mut rng = SeedRng::new(6);
        let mut data = gen.generate(10, &mut rng);
        TemperatureFieldGenerator::normalize(&mut data);
        for (field, _) in &data {
            let n = field.len() as f32;
            let mean = field.sum() / n;
            assert!(mean.abs() < 1e-4);
        }
    }

    #[test]
    fn deterministic_given_seed() {
        let gen = TemperatureFieldGenerator::paper_lounge().unwrap();
        let a = gen.generate(5, &mut SeedRng::new(7));
        let b = gen.generate(5, &mut SeedRng::new(7));
        assert_eq!(a, b);
    }

    #[test]
    fn invalid_parameters_rejected() {
        assert!(TemperatureFieldGenerator::new(2, 17, 0.5).is_err());
        assert!(TemperatureFieldGenerator::new(25, 17, 0.0).is_err());
        assert!(TemperatureFieldGenerator::new(25, 17, 1.0).is_err());
    }
}
