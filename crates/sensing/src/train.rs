//! Car-level positioning and congestion estimation (ref \[65\]).
//!
//! The method of the paper's UbiComp 2014 system, reproduced:
//!
//! 1. **Positioning.** Inter-car doors attenuate Bluetooth strongly, so
//!    the RSSI from a user to reference nodes of known car is informative
//!    about the user's car. A likelihood function per *car-hop distance*
//!    (same car, one car away, …) is learned from calibration data —
//!    including the probability that a measurement is missing entirely —
//!    and each user's car is the maximum-posterior car. The paper reports
//!    83 % car-level accuracy.
//! 2. **Congestion.** Each user computes features of its (estimated) car
//!    — how many participating users it sees there and how attenuated the
//!    intra-car links are — and votes for a congestion level under
//!    learned per-level likelihoods. Votes are weighted by positioning
//!    reliability (the posterior mass of the chosen car); the paper
//!    reports a three-level F-measure of 0.82. Unweighted voting is kept
//!    as the ablation.

use serde::{Deserialize, Serialize};
use zeiot_core::error::{ConfigError, Result};

/// Number of congestion levels (low / medium / high).
pub const CONGESTION_LEVELS: usize = 3;

/// The observable part of one ride: RSSI matrices plus reference-node
/// placement. Ground truth lives in [`LabelledScene`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TrainObservation {
    /// Number of cars.
    pub cars: usize,
    /// Car of each reference node.
    pub reference_car: Vec<usize>,
    /// RSSI from each user to each reference (dBm, `None` = not heard).
    pub user_to_reference: Vec<Vec<Option<f64>>>,
    /// Pairwise RSSI among users.
    pub user_to_user: Vec<Vec<Option<f64>>>,
}

impl TrainObservation {
    /// Number of participating users.
    pub fn users(&self) -> usize {
        self.user_to_reference.len()
    }
}

/// A calibration scene: observation plus ground truth.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LabelledScene {
    /// The observable matrices.
    pub observation: TrainObservation,
    /// True car of each user.
    pub user_car: Vec<usize>,
    /// True congestion level (0 = low, 1 = medium, 2 = high) per car.
    pub congestion: Vec<usize>,
}

#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
struct HopModel {
    mean_dbm: f64,
    var: f64,
    present_prob: f64,
}

#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
struct LevelModel {
    /// Gaussian over (same-car user count, mean intra-car RSSI).
    mean: [f64; 2],
    var: [f64; 2],
}

/// One user's positioning result.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PositionEstimate {
    /// Maximum-posterior car.
    pub car: usize,
    /// Posterior mass of that car in `[0, 1]` — the voting weight.
    pub reliability: f64,
}

/// The fitted estimator.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CongestionEstimator {
    cars: usize,
    hop_models: Vec<HopModel>,
    level_models: Vec<Option<LevelModel>>,
}

impl CongestionEstimator {
    /// Learns the likelihood functions from calibration scenes.
    ///
    /// # Errors
    ///
    /// Returns an error if `scenes` is empty, scenes disagree on the car
    /// count, or some car-hop distance never occurs in calibration.
    pub fn fit(scenes: &[LabelledScene]) -> Result<Self> {
        if scenes.is_empty() {
            return Err(ConfigError::new("scenes", "must be non-empty"));
        }
        let cars = scenes[0].observation.cars;
        if scenes.iter().any(|s| s.observation.cars != cars) {
            return Err(ConfigError::new("scenes", "inconsistent car counts"));
        }

        // --- Positioning likelihoods per hop distance. ---
        let mut present: Vec<Vec<f64>> = vec![Vec::new(); cars];
        let mut missing: Vec<u64> = vec![0; cars];
        for scene in scenes {
            let obs = &scene.observation;
            for (u, row) in obs.user_to_reference.iter().enumerate() {
                let true_car = scene.user_car[u];
                for (r, v) in row.iter().enumerate() {
                    let hop = true_car.abs_diff(obs.reference_car[r]);
                    match v {
                        Some(rssi) => present[hop].push(*rssi),
                        None => missing[hop] += 1,
                    }
                }
            }
        }
        let mut hop_models = Vec::with_capacity(cars);
        for hop in 0..cars {
            let total = present[hop].len() as f64 + missing[hop] as f64;
            if total == 0.0 {
                return Err(ConfigError::new(
                    "scenes",
                    format!("hop distance {hop} never observed in calibration"),
                ));
            }
            let (mean, var) = if present[hop].is_empty() {
                // Everything at this hop was missing; keep a deep floor so
                // an unexpected observation stays finite.
                (-100.0, 25.0)
            } else {
                let n = present[hop].len() as f64;
                let mean = present[hop].iter().sum::<f64>() / n;
                let var = present[hop].iter().map(|v| (v - mean).powi(2)).sum::<f64>() / n;
                (mean, var.max(1.0))
            };
            hop_models.push(HopModel {
                mean_dbm: mean,
                var,
                present_prob: ((present[hop].len() as f64) / total).clamp(0.02, 0.98),
            });
        }

        // --- Congestion likelihoods per level (user-level features from
        // ground-truth cars). ---
        let mut level_samples: Vec<Vec<[f64; 2]>> = vec![Vec::new(); CONGESTION_LEVELS];
        for scene in scenes {
            let obs = &scene.observation;
            for u in 0..obs.users() {
                let car = scene.user_car[u];
                let level = scene.congestion[car];
                if let Some(f) = user_features(obs, u, car, &scene.user_car) {
                    level_samples[level].push(f);
                }
            }
        }
        let level_models = level_samples
            .iter()
            .map(|samples| {
                if samples.is_empty() {
                    return None;
                }
                let n = samples.len() as f64;
                let mut mean = [0.0; 2];
                for s in samples {
                    mean[0] += s[0] / n;
                    mean[1] += s[1] / n;
                }
                let mut var = [0.0; 2];
                for s in samples {
                    var[0] += (s[0] - mean[0]).powi(2) / n;
                    var[1] += (s[1] - mean[1]).powi(2) / n;
                }
                Some(LevelModel {
                    mean,
                    var: [var[0].max(0.5), var[1].max(0.5)],
                })
            })
            .collect();

        Ok(Self {
            cars,
            hop_models,
            level_models,
        })
    }

    /// Number of cars the model was calibrated for.
    pub fn cars(&self) -> usize {
        self.cars
    }

    /// Car-level position estimates for every user in an observation.
    ///
    /// # Panics
    ///
    /// Panics if the observation's car count differs from calibration.
    pub fn estimate_positions(&self, obs: &TrainObservation) -> Vec<PositionEstimate> {
        assert_eq!(obs.cars, self.cars, "car count mismatch");
        (0..obs.users())
            .map(|u| {
                let mut log_post = vec![0.0f64; self.cars];
                for (car, lp) in log_post.iter_mut().enumerate() {
                    for (r, v) in obs.user_to_reference[u].iter().enumerate() {
                        let hop = car.abs_diff(obs.reference_car[r]);
                        let m = &self.hop_models[hop];
                        *lp += match v {
                            Some(rssi) => {
                                m.present_prob.ln()
                                    - 0.5 * ((rssi - m.mean_dbm).powi(2) / m.var + m.var.ln())
                            }
                            None => (1.0 - m.present_prob).ln(),
                        };
                    }
                }
                // Normalize with log-sum-exp.
                let max = log_post.iter().copied().fold(f64::NEG_INFINITY, f64::max);
                let z: f64 = log_post.iter().map(|lp| (lp - max).exp()).sum();
                let (car, &best) = log_post
                    .iter()
                    .enumerate()
                    .max_by(|a, b| a.1.partial_cmp(b.1).expect("finite"))
                    .expect("at least one car");
                PositionEstimate {
                    car,
                    reliability: ((best - max).exp() / z).clamp(0.0, 1.0),
                }
            })
            .collect()
    }

    /// Per-car congestion estimates (0 = low … 2 = high) from weighted
    /// majority voting over users. `weighted = false` gives the
    /// unweighted ablation. Cars with no assigned users default to
    /// level 0.
    pub fn estimate_congestion(
        &self,
        obs: &TrainObservation,
        positions: &[PositionEstimate],
        weighted: bool,
    ) -> Vec<usize> {
        assert_eq!(positions.len(), obs.users(), "positions per user");
        let estimated_cars: Vec<usize> = positions.iter().map(|p| p.car).collect();
        let mut votes = vec![[0.0f64; CONGESTION_LEVELS]; self.cars];
        for (u, pos) in positions.iter().enumerate() {
            let Some(f) = user_features(obs, u, pos.car, &estimated_cars) else {
                continue;
            };
            // The user votes for its maximum-likelihood level.
            let mut best = (0usize, f64::NEG_INFINITY);
            for (level, model) in self.level_models.iter().enumerate() {
                let Some(m) = model else { continue };
                let mut ll = 0.0;
                for ((fv, mean), var) in f.iter().zip(&m.mean).zip(&m.var) {
                    ll += -0.5 * ((fv - mean).powi(2) / var + var.ln());
                }
                if ll > best.1 {
                    best = (level, ll);
                }
            }
            let weight = if weighted { pos.reliability } else { 1.0 };
            votes[pos.car][best.0] += weight;
        }
        votes
            .iter()
            .map(|v| {
                v.iter()
                    .enumerate()
                    .max_by(|a, b| a.1.partial_cmp(b.1).expect("finite"))
                    .map(|(i, _)| i)
                    .expect("levels exist")
            })
            .collect()
    }
}

/// User-level congestion features: (number of *other* users in the same
/// car, mean RSSI to them). `None` when the user is alone in the car.
fn user_features(
    obs: &TrainObservation,
    user: usize,
    car: usize,
    user_cars: &[usize],
) -> Option<[f64; 2]> {
    let mut count = 0usize;
    let mut rssi_sum = 0.0;
    let mut rssi_n = 0usize;
    for (v, &other_car) in user_cars.iter().enumerate().take(obs.users()) {
        if v == user || other_car != car {
            continue;
        }
        count += 1;
        if let Some(r) = obs.user_to_user[user][v] {
            rssi_sum += r;
            rssi_n += 1;
        }
    }
    if count == 0 {
        return None;
    }
    let mean_rssi = if rssi_n > 0 {
        rssi_sum / rssi_n as f64
    } else {
        -95.0
    };
    Some([count as f64, mean_rssi])
}

#[cfg(test)]
mod tests {
    use super::*;
    use zeiot_core::rng::SeedRng;

    /// Hand-built synthetic scenes: 3 cars, RSSI means −55/−75/−92 dBm at
    /// hops 0/1/2, congestion encoded in user counts and intra-car RSSI.
    fn synth_scene(rng: &mut SeedRng, congestion: [usize; 3]) -> LabelledScene {
        let cars = 3;
        let reference_car = vec![0, 0, 1, 1, 2, 2];
        let users_per_level = [3usize, 7, 12];
        let mut user_car = Vec::new();
        for (car, &level) in congestion.iter().enumerate() {
            for _ in 0..users_per_level[level] {
                user_car.push(car);
            }
        }
        let hop_mean = [-55.0, -75.0, -92.0];
        let crowd_penalty = |level: usize| level as f64 * 4.0;
        let user_to_reference: Vec<Vec<Option<f64>>> = user_car
            .iter()
            .map(|&uc| {
                reference_car
                    .iter()
                    .map(|&rc| {
                        let hop = uc.abs_diff(rc);
                        let v = hop_mean[hop] + rng.normal_with(0.0, 3.0);
                        (v > -95.0).then_some(v)
                    })
                    .collect()
            })
            .collect();
        let n = user_car.len();
        let mut user_to_user = vec![vec![None; n]; n];
        for i in 0..n {
            for j in (i + 1)..n {
                let hop = user_car[i].abs_diff(user_car[j]);
                let level = congestion[user_car[i]];
                let mut v = hop_mean[hop] + rng.normal_with(0.0, 3.0);
                if hop == 0 {
                    v -= crowd_penalty(level);
                }
                let v = (v > -95.0).then_some(v);
                user_to_user[i][j] = v;
                user_to_user[j][i] = v;
            }
        }
        LabelledScene {
            observation: TrainObservation {
                cars,
                reference_car,
                user_to_reference,
                user_to_user,
            },
            user_car,
            congestion: congestion.to_vec(),
        }
    }

    fn training_set(rng: &mut SeedRng, n: usize) -> Vec<LabelledScene> {
        (0..n)
            .map(|_| {
                let mut levels = [0usize; 3];
                for l in &mut levels {
                    *l = rng.below(3);
                }
                synth_scene(rng, levels)
            })
            .collect()
    }

    #[test]
    fn fit_requires_scenes() {
        assert!(CongestionEstimator::fit(&[]).is_err());
    }

    #[test]
    fn positioning_beats_guessing_strongly() {
        let mut rng = SeedRng::new(1);
        let train = training_set(&mut rng, 30);
        let est = CongestionEstimator::fit(&train).unwrap();
        let test = training_set(&mut rng, 10);
        let mut correct = 0;
        let mut total = 0;
        for scene in &test {
            let positions = est.estimate_positions(&scene.observation);
            for (p, &truth) in positions.iter().zip(&scene.user_car) {
                if p.car == truth {
                    correct += 1;
                }
                total += 1;
            }
        }
        let acc = correct as f64 / total as f64;
        assert!(acc > 0.7, "acc={acc}");
    }

    #[test]
    fn reliability_is_a_probability() {
        let mut rng = SeedRng::new(2);
        let train = training_set(&mut rng, 20);
        let est = CongestionEstimator::fit(&train).unwrap();
        let scene = synth_scene(&mut rng, [0, 1, 2]);
        for p in est.estimate_positions(&scene.observation) {
            assert!((0.0..=1.0).contains(&p.reliability));
        }
    }

    #[test]
    fn congestion_estimation_recovers_levels() {
        let mut rng = SeedRng::new(3);
        let train = training_set(&mut rng, 40);
        let est = CongestionEstimator::fit(&train).unwrap();
        let mut correct = 0;
        let mut total = 0;
        for _ in 0..10 {
            let mut levels = [0usize; 3];
            for l in &mut levels {
                *l = rng.below(3);
            }
            let scene = synth_scene(&mut rng, levels);
            let positions = est.estimate_positions(&scene.observation);
            let congestion = est.estimate_congestion(&scene.observation, &positions, true);
            for (e, t) in congestion.iter().zip(&scene.congestion) {
                if e == t {
                    correct += 1;
                }
                total += 1;
            }
        }
        let acc = correct as f64 / total as f64;
        assert!(acc > 0.6, "acc={acc}");
    }

    #[test]
    fn weighted_voting_at_least_matches_unweighted() {
        let mut rng = SeedRng::new(4);
        let train = training_set(&mut rng, 40);
        let est = CongestionEstimator::fit(&train).unwrap();
        let mut weighted_ok = 0;
        let mut unweighted_ok = 0;
        for _ in 0..30 {
            let mut levels = [0usize; 3];
            for l in &mut levels {
                *l = rng.below(3);
            }
            let scene = synth_scene(&mut rng, levels);
            let positions = est.estimate_positions(&scene.observation);
            let w = est.estimate_congestion(&scene.observation, &positions, true);
            let u = est.estimate_congestion(&scene.observation, &positions, false);
            weighted_ok += w
                .iter()
                .zip(&scene.congestion)
                .filter(|(a, b)| a == b)
                .count();
            unweighted_ok += u
                .iter()
                .zip(&scene.congestion)
                .filter(|(a, b)| a == b)
                .count();
        }
        assert!(
            weighted_ok as f64 >= unweighted_ok as f64 * 0.95,
            "weighted={weighted_ok} unweighted={unweighted_ok}"
        );
    }

    #[test]
    fn inconsistent_car_counts_rejected() {
        let mut rng = SeedRng::new(5);
        let mut scenes = training_set(&mut rng, 2);
        scenes[1].observation.cars = 4;
        assert!(CongestionEstimator::fit(&scenes).is_err());
    }

    #[test]
    #[should_panic]
    fn observation_car_count_mismatch_panics() {
        let mut rng = SeedRng::new(6);
        let train = training_set(&mut rng, 5);
        let est = CongestionEstimator::fit(&train).unwrap();
        let mut scene = synth_scene(&mut rng, [0, 1, 2]);
        scene.observation.cars = 7;
        let _ = est.estimate_positions(&scene.observation);
    }
}
