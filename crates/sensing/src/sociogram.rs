//! Sociogram construction from co-presence logs.
//!
//! The paper's scenario (iv): base stations log which RFID tags appear
//! together in each area; from those logs we "estimate the friendship of
//! kindergarten's children as a graph called sociogram. Some children
//! might interact with various friends and others might be isolated."
//!
//! The estimator builds a co-presence count matrix, compares each pair's
//! count against its expectation under independent movement, keeps the
//! significantly elevated pairs as friendship edges, clusters the
//! resulting graph into friend groups by label propagation, and flags
//! isolated children.

use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use zeiot_core::error::{ConfigError, Result};

/// One co-presence observation: `(slot, area, child)` — deliberately a
/// plain tuple-like struct so any logging source can feed it.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Sighting {
    /// Collection time slot.
    pub slot: u32,
    /// Area (base-station) id.
    pub area: u32,
    /// Child (tag) id.
    pub child: u32,
}

/// The estimated sociogram.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Sociogram {
    children: u32,
    /// Friendship edges with their affinity scores (observed/expected
    /// co-presence ratio), `a < b`.
    edges: Vec<(u32, u32, f64)>,
    /// Estimated friend groups (disjoint; singletons omitted).
    groups: Vec<Vec<u32>>,
    /// Children with no friendship edge.
    isolated: Vec<u32>,
}

impl Sociogram {
    /// Number of children observed.
    pub fn children(&self) -> u32 {
        self.children
    }

    /// Friendship edges `(a, b, affinity)` with `a < b`.
    pub fn edges(&self) -> &[(u32, u32, f64)] {
        &self.edges
    }

    /// Estimated friend groups (each with ≥2 members).
    pub fn groups(&self) -> &[Vec<u32>] {
        &self.groups
    }

    /// Children without any friendship edge — the isolation signal the
    /// paper highlights.
    pub fn isolated(&self) -> &[u32] {
        &self.isolated
    }

    /// Whether `a` and `b` are connected by a friendship edge.
    pub fn are_friends(&self, a: u32, b: u32) -> bool {
        let (lo, hi) = if a < b { (a, b) } else { (b, a) };
        self.edges.iter().any(|&(x, y, _)| x == lo && y == hi)
    }

    /// Pairwise agreement with ground-truth groups: the Rand index over
    /// all child pairs (1.0 = perfect grouping).
    ///
    /// # Panics
    ///
    /// Panics if `truth` does not cover exactly the observed children.
    pub fn rand_index(&self, truth: &[Vec<u32>]) -> f64 {
        let n = self.children;
        let truth_of = |c: u32| -> usize {
            truth
                .iter()
                .position(|g| g.contains(&c))
                .expect("truth covers all children")
        };
        let mine_of = |c: u32| -> Option<usize> { self.groups.iter().position(|g| g.contains(&c)) };
        let mut agree = 0u64;
        let mut total = 0u64;
        for a in 0..n {
            for b in (a + 1)..n {
                let same_truth = truth_of(a) == truth_of(b);
                let same_mine = match (mine_of(a), mine_of(b)) {
                    (Some(x), Some(y)) => x == y,
                    _ => false, // ungrouped children pair with nobody
                };
                agree += u64::from(same_truth == same_mine);
                total += 1;
            }
        }
        if total == 0 {
            1.0
        } else {
            agree as f64 / total as f64
        }
    }
}

/// The sociogram estimator.
///
/// # Example
///
/// ```
/// use zeiot_sensing::sociogram::{Sighting, SociogramBuilder};
///
/// // Two inseparable children and one loner over three slots.
/// let mut sightings = Vec::new();
/// for slot in 0..10 {
///     sightings.push(Sighting { slot, area: 0, child: 0 });
///     sightings.push(Sighting { slot, area: 0, child: 1 });
///     sightings.push(Sighting { slot, area: 1 + (slot % 3), child: 2 });
/// }
/// let sociogram = SociogramBuilder::new(2.0).unwrap().build(&sightings).unwrap();
/// assert!(sociogram.are_friends(0, 1));
/// assert_eq!(sociogram.isolated(), &[2]);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SociogramBuilder {
    /// A pair is a friendship when observed co-presence exceeds
    /// `affinity_threshold ×` its independence expectation.
    affinity_threshold: f64,
}

impl SociogramBuilder {
    /// Creates a builder; `affinity_threshold` > 1 (2.0 is a good
    /// default: friends co-occur at twice the chance rate).
    ///
    /// # Errors
    ///
    /// Returns an error if the threshold is not above 1.
    pub fn new(affinity_threshold: f64) -> Result<Self> {
        if !(affinity_threshold > 1.0 && affinity_threshold.is_finite()) {
            return Err(ConfigError::new(
                "affinity_threshold",
                "must exceed 1 (co-presence above chance)",
            ));
        }
        Ok(Self { affinity_threshold })
    }

    /// Builds the sociogram from base-station logs.
    ///
    /// # Errors
    ///
    /// Returns an error if `sightings` is empty.
    pub fn build(&self, sightings: &[Sighting]) -> Result<Sociogram> {
        if sightings.is_empty() {
            return Err(ConfigError::new("sightings", "must be non-empty"));
        }
        let children = sightings.iter().map(|s| s.child).max().expect("non-empty") + 1;
        let slots = sightings.iter().map(|s| s.slot).max().expect("non-empty") + 1;
        let areas = sightings.iter().map(|s| s.area).max().expect("non-empty") + 1;

        // Group sightings per (slot, area).
        let mut rooms: BTreeMap<(u32, u32), Vec<u32>> = BTreeMap::new();
        let mut appearances = vec![0u32; children as usize];
        for s in sightings {
            rooms.entry((s.slot, s.area)).or_default().push(s.child);
            appearances[s.child as usize] += 1;
        }

        // Observed co-presence counts.
        let n = children as usize;
        let mut observed = vec![0u32; n * n];
        for kids in rooms.values() {
            for (i, &a) in kids.iter().enumerate() {
                for &b in kids.iter().skip(i + 1) {
                    if a != b {
                        let (lo, hi) = if a < b { (a, b) } else { (b, a) };
                        observed[lo as usize * n + hi as usize] += 1;
                    }
                }
            }
        }

        // Expected co-presence under independent uniform movement:
        // P(both in same area in a slot where both appear) = 1/areas.
        let mut edges = Vec::new();
        for a in 0..children {
            for b in (a + 1)..children {
                let both_present_slots = (appearances[a as usize] as f64
                    * appearances[b as usize] as f64)
                    / slots as f64; // expected co-appearing slots
                let expected = both_present_slots / areas as f64;
                let obs = observed[a as usize * n + b as usize] as f64;
                if expected > 0.0 && obs >= 3.0 && obs / expected >= self.affinity_threshold {
                    edges.push((a, b, obs / expected));
                }
            }
        }

        // Friend groups by label propagation over the edge graph.
        let mut label: Vec<u32> = (0..children).collect();
        let mut changed = true;
        while changed {
            changed = false;
            for &(a, b, _) in &edges {
                let (la, lb) = (label[a as usize], label[b as usize]);
                if la != lb {
                    let new = la.min(lb);
                    label[a as usize] = new;
                    label[b as usize] = new;
                    changed = true;
                }
            }
        }
        let mut groups_map: BTreeMap<u32, Vec<u32>> = BTreeMap::new();
        for c in 0..children {
            groups_map.entry(label[c as usize]).or_default().push(c);
        }
        let groups: Vec<Vec<u32>> = groups_map.into_values().filter(|g| g.len() >= 2).collect();

        let has_edge: Vec<bool> = {
            let mut v = vec![false; n];
            for &(a, b, _) in &edges {
                v[a as usize] = true;
                v[b as usize] = true;
            }
            v
        };
        let isolated: Vec<u32> = (0..children).filter(|&c| !has_edge[c as usize]).collect();

        Ok(Sociogram {
            children,
            edges,
            groups,
            isolated,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Builds sightings for deterministic room assignments:
    /// `rooms[slot][area]` = children present.
    fn sightings_from(rooms: &[Vec<Vec<u32>>]) -> Vec<Sighting> {
        let mut out = Vec::new();
        for (slot, areas) in rooms.iter().enumerate() {
            for (area, kids) in areas.iter().enumerate() {
                for &child in kids {
                    out.push(Sighting {
                        slot: slot as u32,
                        area: area as u32,
                        child,
                    });
                }
            }
        }
        out
    }

    #[test]
    fn inseparable_pair_detected() {
        // 0 and 1 always together; 2 and 3 wander separately.
        let rooms: Vec<Vec<Vec<u32>>> = (0..12)
            .map(|slot: u32| {
                let mut areas = vec![Vec::new(); 4];
                areas[(slot % 4) as usize].extend([0, 1]);
                areas[((slot + 1) % 4) as usize].push(2);
                areas[((slot + 2) % 4) as usize].push(3);
                areas
            })
            .collect();
        let sociogram = SociogramBuilder::new(2.0)
            .unwrap()
            .build(&sightings_from(&rooms))
            .unwrap();
        assert!(sociogram.are_friends(0, 1));
        assert!(!sociogram.are_friends(0, 2));
        assert!(sociogram.isolated().contains(&2));
        assert!(sociogram.isolated().contains(&3));
        assert_eq!(sociogram.groups(), &[vec![0, 1]]);
    }

    #[test]
    fn triangle_forms_one_group() {
        let rooms: Vec<Vec<Vec<u32>>> = (0..12)
            .map(|slot: u32| {
                let mut areas = vec![Vec::new(); 4];
                areas[(slot % 4) as usize].extend([0, 1, 2]);
                areas[((slot + 2) % 4) as usize].push(3);
                areas
            })
            .collect();
        let sociogram = SociogramBuilder::new(2.0)
            .unwrap()
            .build(&sightings_from(&rooms))
            .unwrap();
        assert_eq!(sociogram.groups().len(), 1);
        assert_eq!(sociogram.groups()[0], vec![0, 1, 2]);
    }

    #[test]
    fn rand_index_perfect_and_imperfect() {
        let rooms: Vec<Vec<Vec<u32>>> = (0..12)
            .map(|slot: u32| {
                let mut areas = vec![Vec::new(); 4];
                areas[(slot % 4) as usize].extend([0, 1]);
                areas[((slot + 2) % 4) as usize].extend([2, 3]);
                areas
            })
            .collect();
        let sociogram = SociogramBuilder::new(2.0)
            .unwrap()
            .build(&sightings_from(&rooms))
            .unwrap();
        let truth_right = vec![vec![0, 1], vec![2, 3]];
        let truth_wrong = vec![vec![0, 2], vec![1, 3]];
        assert_eq!(sociogram.rand_index(&truth_right), 1.0);
        assert!(sociogram.rand_index(&truth_wrong) < 1.0);
    }

    #[test]
    fn sparse_coincidence_is_not_friendship() {
        // 0 and 1 meet only twice in 20 slots — below the ≥3 evidence
        // floor.
        let rooms: Vec<Vec<Vec<u32>>> = (0..20)
            .map(|slot: u32| {
                let mut areas = vec![Vec::new(); 2];
                if slot < 2 {
                    areas[0].extend([0, 1]);
                } else {
                    areas[0].push(0);
                    areas[1].push(1);
                }
                areas
            })
            .collect();
        let sociogram = SociogramBuilder::new(2.0)
            .unwrap()
            .build(&sightings_from(&rooms))
            .unwrap();
        assert!(!sociogram.are_friends(0, 1));
    }

    #[test]
    fn validation() {
        assert!(SociogramBuilder::new(1.0).is_err());
        assert!(SociogramBuilder::new(f64::NAN).is_err());
        let b = SociogramBuilder::new(2.0).unwrap();
        assert!(b.build(&[]).is_err());
    }
}
