//! Diagonal-Gaussian naive Bayes — the score-level fusion backbone
//! shared by the composite-scenario estimators and the X2 harness.
//!
//! Per-modality class log-likelihoods simply add, which is how
//! independent evidence should combine (and what a trained fusion
//! layer approximates); the paper's Fig. 3 integration concept rests
//! on exactly this property. The model is deliberately tiny — per
//! class a mean and a floored variance per dimension — so it fits on
//! the zero-energy side of the system and trains from a handful of
//! calibration rounds.

use serde::{Deserialize, Serialize};
use zeiot_core::error::{ConfigError, Result};

/// Per-class sufficient statistics: one mean and one (floored)
/// variance per feature dimension.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
struct ClassModel {
    mean: Vec<f64>,
    var: Vec<f64>,
}

/// A diagonal-Gaussian naive-Bayes classifier over fixed-length `f64`
/// feature vectors with a dense `0..class_count` label space.
///
/// Classes absent from the training set stay representable (they
/// score [`f64::NEG_INFINITY`]) so estimators calibrated on a partial
/// day can still be fused against estimators that saw every class.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct GaussianNb {
    /// Per class: the fitted model, or `None` if no training sample
    /// carried that label.
    classes: Vec<Option<ClassModel>>,
    dims: usize,
}

impl GaussianNb {
    /// Fits per-class means and variances from `(features, label)`
    /// pairs. Variances are floored at `1e-3` so a constant feature
    /// cannot produce an infinite density.
    ///
    /// # Errors
    ///
    /// Returns an error when the training set is empty, when
    /// `class_count` is zero, when a label falls outside
    /// `0..class_count`, or when feature vectors disagree in length.
    pub fn fit(training: &[(Vec<f64>, usize)], class_count: usize) -> Result<Self> {
        if training.is_empty() {
            return Err(ConfigError::new("training", "must be non-empty"));
        }
        if class_count == 0 {
            return Err(ConfigError::new("class_count", "must be positive"));
        }
        let dims = training[0].0.len();
        if dims == 0 {
            return Err(ConfigError::new("training", "features must be non-empty"));
        }
        for (features, label) in training {
            if features.len() != dims {
                return Err(ConfigError::new(
                    "training",
                    "feature vectors must share one length",
                ));
            }
            if *label >= class_count {
                return Err(ConfigError::new("training", "label outside 0..class_count"));
            }
        }
        let mut classes = Vec::with_capacity(class_count);
        for c in 0..class_count {
            let samples: Vec<&Vec<f64>> = training
                .iter()
                .filter(|&&(_, label)| label == c)
                .map(|(f, _)| f)
                .collect();
            if samples.is_empty() {
                classes.push(None);
                continue;
            }
            let n = samples.len() as f64;
            let mut mean = vec![0.0; dims];
            for s in &samples {
                for (m, v) in mean.iter_mut().zip(s.iter()) {
                    *m += v / n;
                }
            }
            let mut var = vec![0.0; dims];
            for s in &samples {
                for ((v, m), x) in var.iter_mut().zip(&mean).zip(s.iter()) {
                    *v += (x - m).powi(2) / n;
                }
            }
            for v in &mut var {
                *v = v.max(1e-3);
            }
            classes.push(Some(ClassModel { mean, var }));
        }
        Ok(Self { classes, dims })
    }

    /// The size of the label space the model was fitted over.
    #[must_use]
    pub fn class_count(&self) -> usize {
        self.classes.len()
    }

    /// The feature dimensionality the model was fitted over.
    #[must_use]
    pub fn dims(&self) -> usize {
        self.dims
    }

    /// The (unnormalized) class log-likelihood of `features` under
    /// `class`; [`f64::NEG_INFINITY`] for a class absent from
    /// training, or when `class` is out of range.
    #[must_use]
    pub fn log_likelihood(&self, features: &[f64], class: usize) -> f64 {
        match self.classes.get(class) {
            None | Some(None) => f64::NEG_INFINITY,
            Some(Some(model)) => features
                .iter()
                .zip(&model.mean)
                .zip(&model.var)
                .map(|((x, m), v)| -0.5 * ((x - m).powi(2) / v + v.ln()))
                .sum(),
        }
    }

    /// All class log-likelihoods, in class order — the score vector a
    /// fusion layer pools across modalities.
    #[must_use]
    pub fn log_likelihoods(&self, features: &[f64]) -> Vec<f64> {
        (0..self.classes.len())
            .map(|c| self.log_likelihood(features, c))
            .collect()
    }

    /// The maximum-likelihood class; first class wins ties (and the
    /// degenerate all-`NEG_INFINITY` case), matching the workspace's
    /// first-tie-wins argmax convention.
    #[must_use]
    pub fn predict(&self, features: &[f64]) -> usize {
        let scores = self.log_likelihoods(features);
        let mut best = 0usize;
        for (c, score) in scores.iter().enumerate().skip(1) {
            if score.total_cmp(&scores[best]) == std::cmp::Ordering::Greater {
                best = c;
            }
        }
        best
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn two_blob_training() -> Vec<(Vec<f64>, usize)> {
        vec![
            (vec![0.0, 0.0], 0),
            (vec![0.2, -0.1], 0),
            (vec![-0.2, 0.1], 0),
            (vec![5.0, 5.0], 1),
            (vec![5.3, 4.8], 1),
            (vec![4.7, 5.2], 1),
        ]
    }

    #[test]
    fn separable_blobs_classify_exactly() {
        let nb = GaussianNb::fit(&two_blob_training(), 2).unwrap();
        assert_eq!(nb.class_count(), 2);
        assert_eq!(nb.dims(), 2);
        assert_eq!(nb.predict(&[0.1, 0.1]), 0);
        assert_eq!(nb.predict(&[4.9, 5.1]), 1);
    }

    #[test]
    fn absent_class_scores_neg_infinity_and_never_wins() {
        let nb = GaussianNb::fit(&two_blob_training(), 3).unwrap();
        assert_eq!(nb.log_likelihood(&[0.0, 0.0], 2), f64::NEG_INFINITY);
        assert_eq!(nb.predict(&[100.0, 100.0]), 1);
    }

    #[test]
    fn variance_floor_keeps_constant_features_finite() {
        let training = vec![(vec![1.0], 0), (vec![1.0], 0), (vec![2.0], 1)];
        let nb = GaussianNb::fit(&training, 2).unwrap();
        assert!(nb.log_likelihood(&[1.0], 0).is_finite());
        assert_eq!(nb.predict(&[1.0]), 0);
    }

    #[test]
    fn log_likelihoods_agrees_with_per_class_queries() {
        let nb = GaussianNb::fit(&two_blob_training(), 2).unwrap();
        let features = [1.3, 2.1];
        let scores = nb.log_likelihoods(&features);
        assert_eq!(scores.len(), 2);
        for (c, &s) in scores.iter().enumerate() {
            assert_eq!(s, nb.log_likelihood(&features, c));
        }
    }

    #[test]
    fn fit_rejects_degenerate_inputs() {
        assert!(GaussianNb::fit(&[], 2).is_err());
        assert!(GaussianNb::fit(&[(vec![1.0], 0)], 0).is_err());
        assert!(GaussianNb::fit(&[(vec![], 0)], 1).is_err());
        assert!(GaussianNb::fit(&[(vec![1.0], 0), (vec![1.0, 2.0], 0)], 1).is_err());
        assert!(GaussianNb::fit(&[(vec![1.0], 5)], 2).is_err());
    }

    #[test]
    fn serde_round_trip() {
        let nb = GaussianNb::fit(&two_blob_training(), 2).unwrap();
        let json = serde_json::to_string(&nb).unwrap();
        let back: GaussianNb = serde_json::from_str(&json).unwrap();
        assert_eq!(nb, back);
    }

    #[test]
    fn tie_breaks_to_the_first_class() {
        // Two identical classes: scores are bit-equal, so the argmax
        // must stay on class 0.
        let training = vec![(vec![0.0], 0), (vec![0.0], 1)];
        let nb = GaussianNb::fit(&training, 2).unwrap();
        assert_eq!(nb.predict(&[0.3]), 0);
    }
}
