//! People counting from synchronized WSN RSSI (ref \[66\]).
//!
//! Two synchronized observables drive the estimate:
//!
//! * the **inter-node RSSI** falls as bodies obstruct links;
//! * the **surrounding RSSI** rises with the number of personal devices.
//!
//! The estimator learns a Gaussian observation model per occupancy count
//! from labelled calibration data and predicts by maximum likelihood —
//! the paper reports ≈79 % exact accuracy with errors of at most two
//! people in a laboratory deployment.

use serde::{Deserialize, Serialize};
use zeiot_core::error::{ConfigError, Result};

/// The two-dimensional feature extracted from one synchronized
/// measurement round.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CountingFeatures {
    /// Mean inter-node RSSI across links (dBm).
    pub mean_inter_node_dbm: f64,
    /// Mean surrounding RSSI across nodes (dBm).
    pub mean_surrounding_dbm: f64,
}

impl CountingFeatures {
    /// Bundles the two means.
    pub fn new(mean_inter_node_dbm: f64, mean_surrounding_dbm: f64) -> Self {
        Self {
            mean_inter_node_dbm,
            mean_surrounding_dbm,
        }
    }

    /// Extracts features from a sampled inter-node matrix and
    /// surrounding vector (as produced by `zeiot_net::rssi`).
    ///
    /// Returns `None` when the matrix has no observed links.
    pub fn extract(inter_node: &[Vec<Option<f64>>], surrounding: &[f64]) -> Option<Self> {
        let links: Vec<f64> = inter_node
            .iter()
            .flat_map(|row| row.iter().flatten().copied())
            .collect();
        if links.is_empty() || surrounding.is_empty() {
            return None;
        }
        Some(Self {
            mean_inter_node_dbm: links.iter().sum::<f64>() / links.len() as f64,
            mean_surrounding_dbm: surrounding.iter().sum::<f64>() / surrounding.len() as f64,
        })
    }

    fn as_array(&self) -> [f64; 2] {
        [self.mean_inter_node_dbm, self.mean_surrounding_dbm]
    }
}

#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
struct ClassModel {
    count: usize,
    mean: [f64; 2],
    var: [f64; 2],
}

/// A maximum-likelihood people counter over per-count Gaussian models.
///
/// See the crate-level example.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PeopleCounter {
    models: Vec<ClassModel>,
}

impl PeopleCounter {
    /// Fits one diagonal Gaussian per occupancy count present in the
    /// calibration data. A minimum variance floor keeps single-sample
    /// classes usable.
    ///
    /// # Errors
    ///
    /// Returns an error if `training` is empty.
    pub fn fit(training: &[(CountingFeatures, usize)]) -> Result<Self> {
        if training.is_empty() {
            return Err(ConfigError::new("training", "must be non-empty"));
        }
        let max_count = training.iter().map(|&(_, c)| c).max().expect("non-empty");
        let mut models = Vec::new();
        for count in 0..=max_count {
            let samples: Vec<[f64; 2]> = training
                .iter()
                .filter(|&&(_, c)| c == count)
                .map(|(f, _)| f.as_array())
                .collect();
            if samples.is_empty() {
                continue;
            }
            let n = samples.len() as f64;
            let mut mean = [0.0; 2];
            for s in &samples {
                mean[0] += s[0] / n;
                mean[1] += s[1] / n;
            }
            let mut var = [0.0; 2];
            for s in &samples {
                var[0] += (s[0] - mean[0]).powi(2) / n;
                var[1] += (s[1] - mean[1]).powi(2) / n;
            }
            var[0] = var[0].max(0.25);
            var[1] = var[1].max(0.25);
            models.push(ClassModel { count, mean, var });
        }
        Ok(Self { models })
    }

    /// Occupancy counts the model can output.
    pub fn known_counts(&self) -> Vec<usize> {
        self.models.iter().map(|m| m.count).collect()
    }

    /// Log-likelihood of `features` under the model of `count`, `None`
    /// when the count was never calibrated.
    pub fn log_likelihood(&self, features: &CountingFeatures, count: usize) -> Option<f64> {
        let model = self.models.iter().find(|m| m.count == count)?;
        let x = features.as_array();
        let mut ll = 0.0;
        for ((xv, mean), var) in x.iter().zip(&model.mean).zip(&model.var) {
            let z = (xv - mean).powi(2) / var;
            ll += -0.5 * (z + var.ln());
        }
        Some(ll)
    }

    /// Maximum-likelihood occupancy estimate.
    pub fn predict(&self, features: &CountingFeatures) -> usize {
        self.models
            .iter()
            .map(|m| {
                (
                    m.count,
                    self.log_likelihood(features, m.count)
                        .expect("model exists"),
                )
            })
            .max_by(|a, b| a.1.partial_cmp(&b.1).expect("finite"))
            .map(|(c, _)| c)
            .expect("fitted model is non-empty")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use zeiot_core::rng::SeedRng;

    /// Synthetic calibration: inter-node RSSI falls ~0.8 dB per person,
    /// surrounding rises ~0.9 dB per device.
    fn calibration(
        rng: &mut SeedRng,
        per_count: usize,
        max: usize,
    ) -> Vec<(CountingFeatures, usize)> {
        let mut out = Vec::new();
        for count in 0..=max {
            for _ in 0..per_count {
                let inter = -60.0 - 0.8 * count as f64 + rng.normal_with(0.0, 0.5);
                let surr = -95.0 + 0.9 * count as f64 + rng.normal_with(0.0, 0.5);
                out.push((CountingFeatures::new(inter, surr), count));
            }
        }
        out
    }

    #[test]
    fn fit_requires_data() {
        assert!(PeopleCounter::fit(&[]).is_err());
    }

    #[test]
    fn predicts_calibrated_counts_well() {
        let mut rng = SeedRng::new(1);
        let train = calibration(&mut rng, 30, 10);
        let counter = PeopleCounter::fit(&train).unwrap();
        let test = calibration(&mut rng, 10, 10);
        let exact = test
            .iter()
            .filter(|(f, c)| counter.predict(f) == *c)
            .count();
        let acc = exact as f64 / test.len() as f64;
        assert!(acc > 0.6, "acc={acc}");
        // Errors are small even when not exact.
        let max_err = test
            .iter()
            .map(|(f, c)| counter.predict(f).abs_diff(*c))
            .max()
            .unwrap();
        assert!(max_err <= 3, "max_err={max_err}");
    }

    #[test]
    fn skips_uncalibrated_counts() {
        let train = vec![
            (CountingFeatures::new(-60.0, -95.0), 0),
            (CountingFeatures::new(-64.0, -91.0), 5),
        ];
        let counter = PeopleCounter::fit(&train).unwrap();
        assert_eq!(counter.known_counts(), vec![0, 5]);
        assert!(counter
            .log_likelihood(&CountingFeatures::new(-60.0, -95.0), 3)
            .is_none());
    }

    #[test]
    fn prediction_interpolates_between_classes() {
        let mut rng = SeedRng::new(2);
        let train = calibration(&mut rng, 50, 6);
        let counter = PeopleCounter::fit(&train).unwrap();
        // Exactly on the class-3 mean.
        let f = CountingFeatures::new(-60.0 - 2.4, -95.0 + 2.7);
        assert_eq!(counter.predict(&f), 3);
    }

    #[test]
    fn extract_from_matrices() {
        let inter = vec![
            vec![None, Some(-60.0), None],
            vec![Some(-62.0), None, Some(-64.0)],
            vec![None, Some(-66.0), None],
        ];
        let surrounding = vec![-94.0, -95.0, -96.0];
        let f = CountingFeatures::extract(&inter, &surrounding).unwrap();
        assert!((f.mean_inter_node_dbm - (-63.0)).abs() < 1e-9);
        assert!((f.mean_surrounding_dbm - (-95.0)).abs() < 1e-9);
    }

    #[test]
    fn extract_empty_is_none() {
        let inter: Vec<Vec<Option<f64>>> = vec![vec![None, None], vec![None, None]];
        assert!(CountingFeatures::extract(&inter, &[-95.0]).is_none());
        assert!(CountingFeatures::extract(&[vec![Some(-60.0)]], &[]).is_none());
    }

    #[test]
    fn serde_round_trip() {
        let train = vec![
            (CountingFeatures::new(-60.0, -95.0), 0),
            (CountingFeatures::new(-64.0, -91.0), 4),
        ];
        let counter = PeopleCounter::fit(&train).unwrap();
        let json = serde_json::to_string(&counter).unwrap();
        let back: PeopleCounter = serde_json::from_str(&json).unwrap();
        assert_eq!(counter, back);
    }
}
