//! The Percentage-of-nonzero-Elements (PEM) feature (ref \[29\],
//! "Electronic Frog Eye").
//!
//! PEM quantifies how strongly the propagation environment fluctuates:
//! take consecutive channel snapshots (CSI amplitude vectors, or any
//! per-link measurement vector), difference them, and report the fraction
//! of entries whose change exceeds a threshold. An empty room scores near
//! zero; each moving person perturbs more propagation paths and raises
//! the score — the raw feature behind crowd-counting estimators.

use zeiot_core::error::{ConfigError, Result};

/// PEM feature extractor.
///
/// # Example
///
/// ```
/// use zeiot_sensing::pem::Pem;
///
/// let pem = Pem::new(0.5).unwrap();
/// let quiet = vec![vec![1.0, 1.0, 1.0], vec![1.0, 1.1, 1.0]];
/// let busy = vec![vec![1.0, 1.0, 1.0], vec![3.0, -1.0, 2.0]];
/// assert_eq!(pem.score(&quiet).unwrap(), 0.0);
/// assert_eq!(pem.score(&busy).unwrap(), 1.0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Pem {
    threshold: f64,
}

impl Pem {
    /// Creates an extractor flagging element changes above `threshold`.
    ///
    /// # Errors
    ///
    /// Returns an error if `threshold` is not strictly positive.
    pub fn new(threshold: f64) -> Result<Self> {
        if !(threshold > 0.0 && threshold.is_finite()) {
            return Err(ConfigError::new("threshold", "must be positive"));
        }
        Ok(Self { threshold })
    }

    /// The change threshold.
    pub fn threshold(&self) -> f64 {
        self.threshold
    }

    /// PEM over a window of snapshots: mean fraction of elements whose
    /// successive difference exceeds the threshold. Returns `None` with
    /// fewer than two snapshots or inconsistent lengths.
    pub fn score(&self, snapshots: &[Vec<f64>]) -> Option<f64> {
        if snapshots.len() < 2 {
            return None;
        }
        let dim = snapshots[0].len();
        if dim == 0 || snapshots.iter().any(|s| s.len() != dim) {
            return None;
        }
        let mut fractions = Vec::with_capacity(snapshots.len() - 1);
        for pair in snapshots.windows(2) {
            let changed = pair[0]
                .iter()
                .zip(&pair[1])
                .filter(|(a, b)| (**a - **b).abs() > self.threshold)
                .count();
            fractions.push(changed as f64 / dim as f64);
        }
        Some(fractions.iter().sum::<f64>() / fractions.len() as f64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use zeiot_core::rng::SeedRng;

    #[test]
    fn construction_validation() {
        assert!(Pem::new(0.0).is_err());
        assert!(Pem::new(-1.0).is_err());
        assert!(Pem::new(f64::NAN).is_err());
        assert!(Pem::new(0.5).is_ok());
    }

    #[test]
    fn needs_two_snapshots_and_consistent_dims() {
        let pem = Pem::new(0.5).unwrap();
        assert!(pem.score(&[vec![1.0]]).is_none());
        assert!(pem.score(&[vec![1.0], vec![1.0, 2.0]]).is_none());
        assert!(pem.score(&[vec![], vec![]]).is_none());
    }

    #[test]
    fn static_environment_scores_zero() {
        let pem = Pem::new(0.2).unwrap();
        let snaps = vec![vec![2.0; 16]; 10];
        assert_eq!(pem.score(&snaps), Some(0.0));
    }

    #[test]
    fn score_grows_with_fluctuation_magnitude() {
        let pem = Pem::new(0.3).unwrap();
        let mut rng = SeedRng::new(1);
        let score_for = |sigma: f64, rng: &mut SeedRng| {
            let snaps: Vec<Vec<f64>> = (0..30)
                .map(|_| (0..64).map(|_| rng.normal_with(0.0, sigma)).collect())
                .collect();
            pem.score(&snaps).unwrap()
        };
        let calm = score_for(0.05, &mut rng);
        let lively = score_for(0.5, &mut rng);
        assert!(lively > calm + 0.3, "calm={calm} lively={lively}");
    }

    #[test]
    fn score_is_bounded() {
        let pem = Pem::new(0.1).unwrap();
        let mut rng = SeedRng::new(2);
        let snaps: Vec<Vec<f64>> = (0..20)
            .map(|_| (0..32).map(|_| rng.normal()).collect())
            .collect();
        let s = pem.score(&snaps).unwrap();
        assert!((0.0..=1.0).contains(&s));
    }

    #[test]
    fn monotone_in_threshold() {
        let mut rng = SeedRng::new(3);
        let snaps: Vec<Vec<f64>> = (0..20)
            .map(|_| (0..32).map(|_| rng.normal()).collect())
            .collect();
        let loose = Pem::new(0.1).unwrap().score(&snaps).unwrap();
        let strict = Pem::new(2.0).unwrap().score(&snaps).unwrap();
        assert!(strict <= loose);
    }
}
