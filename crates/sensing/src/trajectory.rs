//! Trajectory tracking and intruder classification from IR frames.
//!
//! The paper's scenario (iii): "grasping the movement trajectory of
//! people and detecting intrusion of wild animals" — here as a
//! lightweight per-frame blob tracker (thresholded centroid + extent)
//! feeding a rule-based classifier, the kind of computation a handful of
//! film-sensor microcontrollers can actually afford (no CNN required for
//! this task).

use serde::{Deserialize, Serialize};
use zeiot_core::error::{ConfigError, Result};
use zeiot_nn::tensor::Tensor;

/// One frame's detection.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Detection {
    /// Intensity-weighted horizontal centroid (cells).
    pub x: f64,
    /// Intensity-weighted vertical centroid (cells, 0 = top row).
    pub y: f64,
    /// Highest activated point above the floor (cells).
    pub height: f64,
    /// Total activated intensity.
    pub mass: f64,
}

/// A tracked crossing: detections per frame plus derived kinematics.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Trajectory {
    /// Per-frame detections (`None` = nothing above threshold).
    pub detections: Vec<Option<Detection>>,
}

impl Trajectory {
    /// Frames with a detection.
    pub fn present_frames(&self) -> usize {
        self.detections.iter().flatten().count()
    }

    /// Mean horizontal speed in cells/frame over the detected span,
    /// `None` with fewer than two detections.
    pub fn speed(&self) -> Option<f64> {
        let pts: Vec<(usize, f64)> = self
            .detections
            .iter()
            .enumerate()
            .filter_map(|(f, d)| d.map(|d| (f, d.x)))
            .collect();
        if pts.len() < 2 {
            return None;
        }
        let (f0, x0) = pts[0];
        let (f1, x1) = pts[pts.len() - 1];
        if f1 == f0 {
            return None;
        }
        Some((x1 - x0).abs() / (f1 - f0) as f64)
    }

    /// Crossing direction: positive = left→right, `None` with fewer
    /// than two detections.
    pub fn direction(&self) -> Option<f64> {
        let pts: Vec<f64> = self.detections.iter().flatten().map(|d| d.x).collect();
        if pts.len() < 2 {
            return None;
        }
        Some((pts[pts.len() - 1] - pts[0]).signum())
    }

    /// Mean blob height over detected frames, `None` when never
    /// detected.
    pub fn mean_height(&self) -> Option<f64> {
        let hs: Vec<f64> = self.detections.iter().flatten().map(|d| d.height).collect();
        if hs.is_empty() {
            None
        } else {
            Some(hs.iter().sum::<f64>() / hs.len() as f64)
        }
    }
}

/// Classification output of the perimeter monitor (label order matches
/// `zeiot_data::intruder::IntruderClass`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum IntruderVerdict {
    /// Nothing crossed.
    Empty,
    /// A person crossed.
    Human,
    /// An animal crossed.
    Animal,
}

impl IntruderVerdict {
    /// Dense label (0 = empty, 1 = human, 2 = animal).
    pub fn label(self) -> usize {
        match self {
            IntruderVerdict::Empty => 0,
            IntruderVerdict::Human => 1,
            IntruderVerdict::Animal => 2,
        }
    }
}

/// Per-frame blob tracker + intruder classifier.
///
/// # Example
///
/// ```
/// use zeiot_sensing::trajectory::BlobTracker;
/// use zeiot_nn::tensor::Tensor;
///
/// let tracker = BlobTracker::new(0.4, 2.0, 4.0).unwrap();
/// let empty = Tensor::zeros(vec![6, 8, 10]);
/// let t = tracker.track(&empty);
/// assert_eq!(t.present_frames(), 0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BlobTracker {
    /// Activation threshold for a cell to count.
    intensity_threshold: f64,
    /// Minimum total mass for a frame to count as a detection.
    min_mass: f64,
    /// Blob height (cells above floor) separating animals from humans.
    height_split: f64,
}

impl BlobTracker {
    /// Creates a tracker.
    ///
    /// # Errors
    ///
    /// Returns an error if any parameter is not strictly positive.
    pub fn new(intensity_threshold: f64, min_mass: f64, height_split: f64) -> Result<Self> {
        for (name, v) in [
            ("intensity_threshold", intensity_threshold),
            ("min_mass", min_mass),
            ("height_split", height_split),
        ] {
            if !(v > 0.0 && v.is_finite()) {
                return Err(ConfigError::new(name, "must be positive"));
            }
        }
        Ok(Self {
            intensity_threshold,
            min_mass,
            height_split,
        })
    }

    /// A profile tuned for the perimeter array.
    ///
    /// # Errors
    ///
    /// Never fails in practice; the signature matches
    /// [`BlobTracker::new`].
    pub fn perimeter() -> Result<Self> {
        Self::new(0.45, 2.5, 4.0)
    }

    /// Detects the blob in one `[rows, cols]` frame slice.
    fn detect(&self, frame: &[f32], rows: usize, cols: usize) -> Option<Detection> {
        let mut mass = 0.0f64;
        let mut mx = 0.0f64;
        let mut my = 0.0f64;
        let mut height = 0.0f64;
        for y in 0..rows {
            for x in 0..cols {
                let v = frame[y * cols + x] as f64;
                if v >= self.intensity_threshold {
                    mass += v;
                    mx += v * x as f64;
                    my += v * y as f64;
                    height = height.max((rows - 1 - y) as f64);
                }
            }
        }
        if mass < self.min_mass {
            return None;
        }
        Some(Detection {
            x: mx / mass,
            y: my / mass,
            height,
            mass,
        })
    }

    /// Tracks across a `[frames, rows, cols]` window.
    ///
    /// # Panics
    ///
    /// Panics if the window is not rank 3.
    pub fn track(&self, window: &Tensor) -> Trajectory {
        let shape = window.shape();
        assert_eq!(shape.len(), 3, "window must be [frames, rows, cols]");
        let (frames, rows, cols) = (shape[0], shape[1], shape[2]);
        let detections = (0..frames)
            .map(|f| {
                let slice = &window.data()[f * rows * cols..(f + 1) * rows * cols];
                self.detect(slice, rows, cols)
            })
            .collect();
        Trajectory { detections }
    }

    /// Classifies a window: empty if too few detections, otherwise
    /// human/animal by mean blob height.
    pub fn classify(&self, window: &Tensor) -> IntruderVerdict {
        let trajectory = self.track(window);
        if trajectory.present_frames() < 3 {
            return IntruderVerdict::Empty;
        }
        match trajectory.mean_height() {
            Some(h) if h >= self.height_split => IntruderVerdict::Human,
            Some(_) => IntruderVerdict::Animal,
            None => IntruderVerdict::Empty,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use zeiot_core::rng::SeedRng;
    use zeiot_data::intruder::{IntruderClass, IntruderGenerator};
    use zeiot_nn::eval::ConfusionMatrix;

    #[test]
    fn empty_windows_classified_empty() {
        let gen = IntruderGenerator::perimeter_array().unwrap();
        let tracker = BlobTracker::perimeter().unwrap();
        let mut rng = SeedRng::new(1);
        let mut correct = 0;
        for _ in 0..20 {
            let s = gen.sample(IntruderClass::Empty, &mut rng);
            if tracker.classify(&s.window) == IntruderVerdict::Empty {
                correct += 1;
            }
        }
        assert!(correct >= 18, "correct={correct}");
    }

    #[test]
    fn three_way_classification_accuracy() {
        let gen = IntruderGenerator::perimeter_array().unwrap();
        let tracker = BlobTracker::perimeter().unwrap();
        let mut rng = SeedRng::new(2);
        let mut cm = ConfusionMatrix::new(3);
        for s in gen.generate(150, &mut rng) {
            cm.record(s.class.label(), tracker.classify(&s.window).label());
        }
        assert!(cm.accuracy() > 0.85, "acc={}\n{cm}", cm.accuracy());
    }

    #[test]
    fn tracked_positions_follow_ground_truth() {
        let gen = IntruderGenerator::perimeter_array().unwrap();
        let tracker = BlobTracker::perimeter().unwrap();
        let mut rng = SeedRng::new(3);
        let mut total_err = 0.0;
        let mut n = 0.0;
        for _ in 0..20 {
            let s = gen.sample(IntruderClass::Human, &mut rng);
            let t = tracker.track(&s.window);
            for (truth, det) in s.trajectory.iter().zip(&t.detections) {
                if let (Some(tx), Some(d)) = (truth, det) {
                    // Only compare when the target is well inside the array.
                    if *tx > 1.0 && *tx < 8.0 {
                        total_err += (tx - d.x).abs();
                        n += 1.0;
                    }
                }
            }
        }
        let mae = total_err / n;
        assert!(mae < 1.0, "trajectory MAE {mae} cells");
    }

    #[test]
    fn speed_separates_humans_from_animals() {
        let gen = IntruderGenerator::perimeter_array().unwrap();
        let tracker = BlobTracker::perimeter().unwrap();
        let mut rng = SeedRng::new(4);
        let mean_speed = |class: IntruderClass, rng: &mut SeedRng| -> f64 {
            let mut total = 0.0f64;
            let mut n = 0.0f64;
            for _ in 0..25 {
                let s = gen.sample(class, rng);
                if let Some(v) = tracker.track(&s.window).speed() {
                    total += v;
                    n += 1.0;
                }
            }
            total / n.max(1.0)
        };
        let human = mean_speed(IntruderClass::Human, &mut rng);
        let animal = mean_speed(IntruderClass::Animal, &mut rng);
        assert!(animal > human, "animal={animal} human={human}");
    }

    #[test]
    fn direction_is_detected() {
        let gen = IntruderGenerator::perimeter_array().unwrap();
        let tracker = BlobTracker::perimeter().unwrap();
        let mut rng = SeedRng::new(5);
        let mut directed = 0;
        for _ in 0..20 {
            let s = gen.sample(IntruderClass::Human, &mut rng);
            if tracker.track(&s.window).direction().is_some() {
                directed += 1;
            }
        }
        assert!(directed >= 18, "directed={directed}");
    }

    #[test]
    fn validation() {
        assert!(BlobTracker::new(0.0, 1.0, 4.0).is_err());
        assert!(BlobTracker::new(0.5, 0.0, 4.0).is_err());
        assert!(BlobTracker::new(0.5, 1.0, f64::NAN).is_err());
    }

    #[test]
    #[should_panic]
    fn wrong_rank_panics() {
        let tracker = BlobTracker::perimeter().unwrap();
        let _ = tracker.track(&zeiot_nn::tensor::Tensor::zeros(vec![8, 10]));
    }
}
