//! # zeiot-sensing
//!
//! The paper's wireless-sensing estimators (§IV.B), implemented against
//! plain observation types so they run on either synthetic scenes
//! (`zeiot-data`) or real captures:
//!
//! - [`train`] — car-level positioning and three-level congestion
//!   estimation from Bluetooth RSSI (ref \[65\]): likelihood functions per
//!   car-hop distance, then reliability-weighted majority voting per car;
//! - [`counting`] — people counting from synchronized inter-node and
//!   surrounding RSSI on an 802.15.4 WSN (ref \[66\]);
//! - [`csi`] — device-free localization from 802.11ac compressed-CSI
//!   feature vectors (ref \[8\]): standardization + k-nearest-neighbour
//!   classification over the 624-feature space;
//! - [`pem`] — the Percentage-of-nonzero-Elements crowd feature
//!   (ref \[29\]), quantifying propagation-path fluctuation;
//! - [`sociogram`] — friendship-graph estimation from co-presence logs
//!   (the paper's scenario (iv): kindergarten sociograms from tag IDs
//!   collected by area-limited base stations);
//! - [`trajectory`] — blob tracking and human/animal intrusion
//!   classification from perimeter IR arrays (scenario (iii));
//! - [`knn`] — the shared k-NN machinery;
//! - [`nb`] — the diagonal-Gaussian naive-Bayes backbone whose
//!   additive class log-likelihoods make score-level modality fusion
//!   (paper Fig. 3, §III.B) a one-line sum.
//!
//! # Example: fit and apply a people counter
//!
//! ```
//! use zeiot_sensing::counting::{CountingFeatures, PeopleCounter};
//!
//! // Feature vectors (mean inter-node RSSI, mean surrounding RSSI)
//! // observed at known occupancy.
//! let training = vec![
//!     (CountingFeatures::new(-60.0, -95.0), 0),
//!     (CountingFeatures::new(-63.0, -90.0), 2),
//!     (CountingFeatures::new(-66.0, -86.0), 4),
//! ];
//! let counter = PeopleCounter::fit(&training).unwrap();
//! let estimate = counter.predict(&CountingFeatures::new(-62.8, -90.2));
//! assert_eq!(estimate, 2);
//! ```

pub mod counting;
pub mod csi;
pub mod knn;
pub mod nb;
pub mod pem;
pub mod sociogram;
pub mod train;
pub mod trajectory;

pub use counting::{CountingFeatures, PeopleCounter};
pub use csi::CsiLocalizer;
pub use knn::KnnClassifier;
pub use nb::GaussianNb;
pub use sociogram::{Sociogram, SociogramBuilder};
pub use train::{CongestionEstimator, TrainObservation};
pub use trajectory::{BlobTracker, IntruderVerdict, Trajectory};
