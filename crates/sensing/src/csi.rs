//! Device-free CSI localization (ref \[8\]).
//!
//! The learning system: capture 802.11ac explicit-feedback frames,
//! extract the 624 compressed-angle features, fit a supervised classifier
//! with labelled positions, then infer labels from live captures. This
//! module wraps the shared [`KnnClassifier`] with the CSI workflow and
//! evaluation helpers (accuracy per behaviour/antenna pattern).

use crate::knn::KnnClassifier;
use zeiot_core::error::Result;
use zeiot_nn::eval::ConfusionMatrix;

/// A fitted CSI localizer.
///
/// # Example
///
/// ```
/// use zeiot_sensing::csi::CsiLocalizer;
///
/// let train = vec![
///     (vec![0.0, 1.0, 0.0], 0),
///     (vec![0.1, 0.9, 0.0], 0),
///     (vec![1.0, 0.0, 1.0], 1),
///     (vec![0.9, 0.1, 1.1], 1),
/// ];
/// let loc = CsiLocalizer::fit(&train, 1).unwrap();
/// assert_eq!(loc.localize(&[0.05, 0.95, 0.0]), 0);
/// ```
#[derive(Debug, Clone)]
pub struct CsiLocalizer {
    knn: KnnClassifier,
}

impl CsiLocalizer {
    /// Fits the localizer on `(features, position)` pairs with a `k`-NN
    /// backend.
    ///
    /// # Errors
    ///
    /// Propagates [`KnnClassifier::fit`] validation errors.
    pub fn fit(training: &[(Vec<f64>, usize)], k: usize) -> Result<Self> {
        Ok(Self {
            knn: KnnClassifier::fit(training, k)?,
        })
    }

    /// Number of distinct positions seen during fitting.
    pub fn positions(&self) -> usize {
        self.knn.classes()
    }

    /// Infers the position label for one feature vector.
    ///
    /// # Panics
    ///
    /// Panics on a feature-dimension mismatch.
    pub fn localize(&self, features: &[f64]) -> usize {
        self.knn.predict(features)
    }

    /// Evaluates over a labelled test set, returning the confusion
    /// matrix.
    ///
    /// # Panics
    ///
    /// Panics if `test` is empty.
    pub fn evaluate(&self, test: &[(Vec<f64>, usize)]) -> ConfusionMatrix {
        assert!(!test.is_empty(), "empty test set");
        let mut cm = ConfusionMatrix::new(self.positions());
        for (f, truth) in test {
            cm.record(*truth, self.localize(f));
        }
        cm
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use zeiot_core::rng::SeedRng;
    use zeiot_data::csi::{CsiGenerator, CsiPattern};

    fn to_pairs(samples: Vec<zeiot_data::csi::CsiSample>) -> Vec<(Vec<f64>, usize)> {
        samples
            .into_iter()
            .map(|s| (s.features, s.position))
            .collect()
    }

    #[test]
    fn best_pattern_hits_paper_accuracy() {
        // Walking + divergent antennas: the paper's ≈96 % case.
        let gen = CsiGenerator::new(77).unwrap();
        let pattern = CsiPattern::all()[4];
        assert!(pattern.walking);
        let mut rng = SeedRng::new(1);
        let (train, test) = gen.split(pattern, 30, 12, &mut rng);
        let loc = CsiLocalizer::fit(&to_pairs(train), 5).unwrap();
        let cm = loc.evaluate(&to_pairs(test));
        assert!(cm.accuracy() > 0.9, "acc={}", cm.accuracy());
    }

    #[test]
    fn pattern_difficulty_ordering_holds() {
        let gen = CsiGenerator::new(78).unwrap();
        let acc_of = |pattern: CsiPattern, seed: u64| {
            let mut rng = SeedRng::new(seed);
            let (train, test) = gen.split(pattern, 30, 12, &mut rng);
            let loc = CsiLocalizer::fit(&to_pairs(train), 5).unwrap();
            loc.evaluate(&to_pairs(test)).accuracy()
        };
        let best = acc_of(
            CsiPattern {
                walking: true,
                antenna: zeiot_data::csi::AntennaOrientation::Divergent,
            },
            2,
        );
        let worst = acc_of(
            CsiPattern {
                walking: false,
                antenna: zeiot_data::csi::AntennaOrientation::Aligned,
            },
            2,
        );
        assert!(best >= worst, "best={best} worst={worst}");
    }

    #[test]
    fn positions_count_matches_data() {
        let gen = CsiGenerator::new(79).unwrap();
        let mut rng = SeedRng::new(3);
        let (train, _) = gen.split(CsiPattern::all()[4], 5, 1, &mut rng);
        let loc = CsiLocalizer::fit(&to_pairs(train), 3).unwrap();
        assert_eq!(loc.positions(), 7);
    }

    #[test]
    fn confusion_matrix_totals_match_test_size() {
        let gen = CsiGenerator::new(80).unwrap();
        let mut rng = SeedRng::new(4);
        let (train, test) = gen.split(CsiPattern::all()[4], 10, 5, &mut rng);
        let loc = CsiLocalizer::fit(&to_pairs(train), 3).unwrap();
        let cm = loc.evaluate(&to_pairs(test));
        assert_eq!(cm.total(), 35);
    }
}
