//! k-nearest-neighbour classification with feature standardization.
//!
//! The CSI learning system of ref \[8\] trains a supervised classifier on
//! 624-dimensional feature vectors; a standardized k-NN is a strong,
//! assumption-free choice at the paper's sample sizes and is what this
//! workspace uses wherever a generic vector classifier is needed.

use zeiot_core::error::{ConfigError, Result};

/// A k-NN classifier over `f64` feature vectors with per-dimension
/// z-score standardization learned from the training set.
///
/// # Example
///
/// ```
/// use zeiot_sensing::knn::KnnClassifier;
///
/// let train = vec![
///     (vec![0.0, 0.0], 0),
///     (vec![0.1, -0.1], 0),
///     (vec![5.0, 5.0], 1),
///     (vec![4.9, 5.2], 1),
/// ];
/// let knn = KnnClassifier::fit(&train, 3).unwrap();
/// assert_eq!(knn.predict(&[0.05, 0.0]), 0);
/// assert_eq!(knn.predict(&[5.1, 4.8]), 1);
/// ```
#[derive(Debug, Clone)]
pub struct KnnClassifier {
    k: usize,
    dims: usize,
    mean: Vec<f64>,
    inv_std: Vec<f64>,
    points: Vec<(Vec<f64>, usize)>,
    classes: usize,
}

impl KnnClassifier {
    /// Fits (memorizes + standardizes) the training set.
    ///
    /// # Errors
    ///
    /// Returns an error if the training set is empty, `k` is zero, or
    /// feature lengths are inconsistent.
    pub fn fit(training: &[(Vec<f64>, usize)], k: usize) -> Result<Self> {
        if training.is_empty() {
            return Err(ConfigError::new("training", "must be non-empty"));
        }
        if k == 0 {
            return Err(ConfigError::new("k", "must be non-zero"));
        }
        let dims = training[0].0.len();
        if dims == 0 {
            return Err(ConfigError::new("features", "must be non-empty"));
        }
        if training.iter().any(|(f, _)| f.len() != dims) {
            return Err(ConfigError::new("training", "inconsistent feature lengths"));
        }
        let n = training.len() as f64;
        let mut mean = vec![0.0; dims];
        for (f, _) in training {
            for (m, v) in mean.iter_mut().zip(f) {
                *m += v / n;
            }
        }
        let mut var = vec![0.0; dims];
        for (f, _) in training {
            for ((v, m), x) in var.iter_mut().zip(&mean).zip(f) {
                *v += (x - m).powi(2) / n;
            }
        }
        let inv_std: Vec<f64> = var.iter().map(|v| 1.0 / v.sqrt().max(1e-9)).collect();
        let points: Vec<(Vec<f64>, usize)> = training
            .iter()
            .map(|(f, label)| {
                let z: Vec<f64> = f
                    .iter()
                    .zip(&mean)
                    .zip(&inv_std)
                    .map(|((x, m), s)| (x - m) * s)
                    .collect();
                (z, *label)
            })
            .collect();
        let classes = training.iter().map(|&(_, l)| l).max().unwrap_or(0) + 1;
        Ok(Self {
            k,
            dims,
            mean,
            inv_std,
            points,
            classes,
        })
    }

    /// Number of classes seen during fitting.
    pub fn classes(&self) -> usize {
        self.classes
    }

    /// Predicts the majority class among the `k` nearest training points
    /// (ties broken toward the smaller class index).
    ///
    /// # Panics
    ///
    /// Panics if `features.len()` differs from the training dimension.
    pub fn predict(&self, features: &[f64]) -> usize {
        assert_eq!(features.len(), self.dims, "feature dimension mismatch");
        let z: Vec<f64> = features
            .iter()
            .zip(&self.mean)
            .zip(&self.inv_std)
            .map(|((x, m), s)| (x - m) * s)
            .collect();
        // Partial selection of the k nearest.
        let mut dists: Vec<(f64, usize)> = self
            .points
            .iter()
            .map(|(p, label)| {
                let d: f64 = p.iter().zip(&z).map(|(a, b)| (a - b).powi(2)).sum();
                (d, *label)
            })
            .collect();
        let k = self.k.min(dists.len());
        dists.select_nth_unstable_by(k - 1, |a, b| {
            a.0.partial_cmp(&b.0).expect("finite distances")
        });
        let mut votes = vec![0usize; self.classes];
        for &(_, label) in &dists[..k] {
            votes[label] += 1;
        }
        votes
            .iter()
            .enumerate()
            .max_by_key(|&(i, &v)| (v, usize::MAX - i))
            .map(|(i, _)| i)
            .expect("non-empty votes")
    }

    /// Accuracy over a labelled test set.
    ///
    /// # Panics
    ///
    /// Panics if `test` is empty.
    pub fn accuracy(&self, test: &[(Vec<f64>, usize)]) -> f64 {
        assert!(!test.is_empty(), "empty test set");
        let correct = test.iter().filter(|(f, l)| self.predict(f) == *l).count();
        correct as f64 / test.len() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use zeiot_core::rng::SeedRng;

    #[test]
    fn fit_validation() {
        assert!(KnnClassifier::fit(&[], 3).is_err());
        assert!(KnnClassifier::fit(&[(vec![1.0], 0)], 0).is_err());
        assert!(KnnClassifier::fit(&[(vec![], 0)], 1).is_err());
        assert!(KnnClassifier::fit(&[(vec![1.0], 0), (vec![1.0, 2.0], 1)], 1).is_err());
    }

    #[test]
    fn one_nn_memorizes_training_points() {
        let train = vec![
            (vec![0.0, 0.0], 0),
            (vec![1.0, 1.0], 1),
            (vec![2.0, 2.0], 2),
        ];
        let knn = KnnClassifier::fit(&train, 1).unwrap();
        for (f, l) in &train {
            assert_eq!(knn.predict(f), *l);
        }
        assert_eq!(knn.classes(), 3);
    }

    #[test]
    fn standardization_makes_scales_comparable() {
        // Dimension 0 has tiny scale but carries the class; dimension 1
        // is huge noise. Without standardization, 1-NN fails.
        let mut rng = SeedRng::new(1);
        let mut train = Vec::new();
        for _ in 0..50 {
            train.push((
                vec![0.001 + 0.0001 * rng.normal(), 1000.0 * rng.normal()],
                0,
            ));
            train.push((
                vec![-0.001 + 0.0001 * rng.normal(), 1000.0 * rng.normal()],
                1,
            ));
        }
        let knn = KnnClassifier::fit(&train, 5).unwrap();
        let mut correct = 0;
        for _ in 0..100 {
            if knn.predict(&[0.001, 1000.0 * rng.normal()]) == 0 {
                correct += 1;
            }
        }
        assert!(correct > 90, "correct={correct}");
    }

    #[test]
    fn majority_voting_overrides_single_outlier() {
        let train = vec![
            (vec![0.0], 0),
            (vec![0.2], 0),
            (vec![0.4], 0),
            (vec![0.1], 1), // outlier inside class-0 territory
            (vec![10.0], 1),
        ];
        let knn = KnnClassifier::fit(&train, 3).unwrap();
        assert_eq!(knn.predict(&[0.15]), 0);
    }

    #[test]
    fn accuracy_on_separable_gaussians() {
        let mut rng = SeedRng::new(2);
        let mut train = Vec::new();
        let mut test = Vec::new();
        for set in [&mut train, &mut test] {
            for _ in 0..100 {
                set.push((vec![rng.normal() - 3.0, rng.normal()], 0));
                set.push((vec![rng.normal() + 3.0, rng.normal()], 1));
            }
        }
        let knn = KnnClassifier::fit(&train, 5).unwrap();
        assert!(knn.accuracy(&test) > 0.95);
    }

    #[test]
    #[should_panic]
    fn dimension_mismatch_panics() {
        let knn = KnnClassifier::fit(&[(vec![1.0, 2.0], 0)], 1).unwrap();
        let _ = knn.predict(&[1.0]);
    }
}
