//! Offline stand-in for the `serde` crate.
//!
//! This container has no network access, so the workspace vendors a small
//! value-tree serialization framework exposing the subset of serde's API
//! the workspace uses: the [`Serialize`]/[`Deserialize`] traits (via an
//! intermediate [`Value`] tree rather than serde's visitor machinery),
//! derive macros re-exported from the vendored `serde_derive`, and impls
//! for the primitive/std types that appear in zeiot data structures.
//!
//! Encoding conventions match `serde_json` where the workspace can observe
//! them: newtype structs are transparent, unit enum variants serialize as
//! their name string, struct variants are externally tagged, map keys are
//! stringified, and non-finite floats serialize as `null`.

use std::collections::BTreeMap;
use std::fmt;

pub use serde_derive::{Deserialize, Serialize};

/// A parsed/serializable JSON-like value tree.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    Null,
    Bool(bool),
    Num(Number),
    Str(String),
    Array(Vec<Value>),
    /// Insertion-ordered key/value pairs (duplicates are not merged).
    Object(Vec<(String, Value)>),
}

/// A JSON number, preserving 64-bit integer precision.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Number {
    U(u64),
    I(i64),
    F(f64),
}

impl Number {
    /// The value as an `f64` (lossy for large integers).
    pub fn as_f64(self) -> f64 {
        match self {
            Number::U(u) => u as f64,
            Number::I(i) => i as f64,
            Number::F(f) => f,
        }
    }

    /// The value as a `u64` if exactly representable.
    pub fn as_u64(self) -> Option<u64> {
        match self {
            Number::U(u) => Some(u),
            Number::I(i) => u64::try_from(i).ok(),
            Number::F(f) if f >= 0.0 && f.fract() == 0.0 && f <= u64::MAX as f64 => Some(f as u64),
            Number::F(_) => None,
        }
    }

    /// The value as an `i64` if exactly representable.
    pub fn as_i64(self) -> Option<i64> {
        match self {
            Number::U(u) => i64::try_from(u).ok(),
            Number::I(i) => Some(i),
            Number::F(f) if f.fract() == 0.0 && f >= i64::MIN as f64 && f <= i64::MAX as f64 => {
                Some(f as i64)
            }
            Number::F(_) => None,
        }
    }
}

impl Value {
    /// The elements if this is an array.
    pub fn as_array(&self) -> Option<&[Value]> {
        match self {
            Value::Array(items) => Some(items),
            _ => None,
        }
    }

    /// The entries if this is an object.
    pub fn as_object(&self) -> Option<&[(String, Value)]> {
        match self {
            Value::Object(entries) => Some(entries),
            _ => None,
        }
    }

    /// Looks up a key in an object value.
    pub fn get(&self, key: &str) -> Option<&Value> {
        self.as_object()?
            .iter()
            .find(|(k, _)| k == key)
            .map(|(_, v)| v)
    }

    /// The numeric value as `f64`, if this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Num(n) => Some(n.as_f64()),
            _ => None,
        }
    }

    /// The string contents, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }
}

/// Serialization/deserialization error.
#[derive(Debug, Clone)]
pub struct Error {
    msg: String,
}

impl Error {
    /// Creates an error from a message.
    pub fn custom(msg: impl Into<String>) -> Self {
        Self { msg: msg.into() }
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.msg)
    }
}

impl std::error::Error for Error {}

/// Converts a type into a [`Value`] tree. Mirrors `serde::Serialize` in
/// role, not in mechanism.
pub trait Serialize {
    /// The value-tree encoding of `self`.
    fn to_value(&self) -> Value;
}

/// Reconstructs a type from a [`Value`] tree. Mirrors `serde::Deserialize`.
pub trait Deserialize: Sized {
    /// Parses `self` out of a value tree.
    fn from_value(value: &Value) -> Result<Self, Error>;
}

/// Extracts and deserializes object field `name` from `value`.
///
/// Used by the derive-generated code; exposed for hand-written impls.
pub fn de_field<T: Deserialize>(value: &Value, name: &str) -> Result<T, Error> {
    match value {
        Value::Object(entries) => match entries.iter().find(|(k, _)| k == name) {
            Some((_, v)) => {
                T::from_value(v).map_err(|e| Error::custom(format!("field `{name}`: {e}")))
            }
            None => Err(Error::custom(format!("missing field `{name}`"))),
        },
        _ => Err(Error::custom(format!(
            "expected object while reading field `{name}`"
        ))),
    }
}

// ---------------------------------------------------------------------------
// Primitive impls
// ---------------------------------------------------------------------------

macro_rules! unsigned_impl {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::Num(Number::U(*self as u64))
            }
        }
        impl Deserialize for $t {
            fn from_value(value: &Value) -> Result<Self, Error> {
                let n = match value {
                    Value::Num(n) => n.as_u64(),
                    _ => None,
                };
                n.and_then(|u| <$t>::try_from(u).ok()).ok_or_else(|| {
                    Error::custom(concat!("expected ", stringify!($t)))
                })
            }
        }
    )*};
}

macro_rules! signed_impl {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                let v = *self as i64;
                if v >= 0 {
                    Value::Num(Number::U(v as u64))
                } else {
                    Value::Num(Number::I(v))
                }
            }
        }
        impl Deserialize for $t {
            fn from_value(value: &Value) -> Result<Self, Error> {
                let n = match value {
                    Value::Num(n) => n.as_i64(),
                    _ => None,
                };
                n.and_then(|i| <$t>::try_from(i).ok()).ok_or_else(|| {
                    Error::custom(concat!("expected ", stringify!($t)))
                })
            }
        }
    )*};
}

unsigned_impl!(u8, u16, u32, u64, usize);
signed_impl!(i8, i16, i32, i64, isize);

macro_rules! float_impl {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                let f = *self as f64;
                if f.is_finite() {
                    Value::Num(Number::F(f))
                } else {
                    // serde_json serializes non-finite floats as null.
                    Value::Null
                }
            }
        }
        impl Deserialize for $t {
            fn from_value(value: &Value) -> Result<Self, Error> {
                match value {
                    Value::Num(n) => Ok(n.as_f64() as $t),
                    _ => Err(Error::custom(concat!("expected ", stringify!($t)))),
                }
            }
        }
    )*};
}

float_impl!(f32, f64);

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Deserialize for bool {
    fn from_value(value: &Value) -> Result<Self, Error> {
        match value {
            Value::Bool(b) => Ok(*b),
            _ => Err(Error::custom("expected bool")),
        }
    }
}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::Str(self.clone())
    }
}

impl Deserialize for String {
    fn from_value(value: &Value) -> Result<Self, Error> {
        match value {
            Value::Str(s) => Ok(s.clone()),
            _ => Err(Error::custom("expected string")),
        }
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            Some(v) => v.to_value(),
            None => Value::Null,
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_value(value: &Value) -> Result<Self, Error> {
        match value {
            Value::Null => Ok(None),
            other => T::from_value(other).map(Some),
        }
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        self.as_slice().to_value()
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn to_value(&self) -> Value {
        self.as_slice().to_value()
    }
}

impl<T: Deserialize, const N: usize> Deserialize for [T; N] {
    fn from_value(value: &Value) -> Result<Self, Error> {
        let items = value
            .as_array()
            .ok_or_else(|| Error::custom("expected array"))?;
        if items.len() != N {
            return Err(Error::custom(format!(
                "expected array of length {N}, got {}",
                items.len()
            )));
        }
        let mut parsed = Vec::with_capacity(N);
        for item in items {
            parsed.push(T::from_value(item)?);
        }
        parsed
            .try_into()
            .map_err(|_| Error::custom("array length mismatch"))
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_value(value: &Value) -> Result<Self, Error> {
        match value {
            Value::Array(items) => items.iter().map(T::from_value).collect(),
            _ => Err(Error::custom("expected array")),
        }
    }
}

macro_rules! tuple_impl {
    ($(($len:expr => $($name:ident : $idx:tt),+)),+ $(,)?) => {$(
        impl<$($name: Serialize),+> Serialize for ($($name,)+) {
            fn to_value(&self) -> Value {
                Value::Array(vec![$(self.$idx.to_value()),+])
            }
        }
        impl<$($name: Deserialize),+> Deserialize for ($($name,)+) {
            fn from_value(value: &Value) -> Result<Self, Error> {
                let items = value
                    .as_array()
                    .ok_or_else(|| Error::custom("expected tuple array"))?;
                if items.len() != $len {
                    return Err(Error::custom("wrong tuple length"));
                }
                Ok(($($name::from_value(&items[$idx])?,)+))
            }
        }
    )+};
}

tuple_impl! {
    (2 => A: 0, B: 1),
    (3 => A: 0, B: 1, C: 2),
    (4 => A: 0, B: 1, C: 2, D: 3),
}

/// Converts a serialized map key into its object-key string form.
fn key_to_string(value: Value) -> Result<String, Error> {
    match value {
        Value::Str(s) => Ok(s),
        Value::Num(Number::U(u)) => Ok(u.to_string()),
        Value::Num(Number::I(i)) => Ok(i.to_string()),
        Value::Num(Number::F(f)) => Ok(f.to_string()),
        Value::Bool(b) => Ok(b.to_string()),
        _ => Err(Error::custom("unsupported map key type")),
    }
}

/// Recovers a map key from its object-key string form, trying the string
/// representation first and then numeric reinterpretations (integer-keyed
/// maps round-trip through stringified keys, as in serde_json).
fn key_from_string<K: Deserialize>(key: &str) -> Result<K, Error> {
    if let Ok(k) = K::from_value(&Value::Str(key.to_string())) {
        return Ok(k);
    }
    if let Ok(u) = key.parse::<u64>() {
        if let Ok(k) = K::from_value(&Value::Num(Number::U(u))) {
            return Ok(k);
        }
    }
    if let Ok(i) = key.parse::<i64>() {
        if let Ok(k) = K::from_value(&Value::Num(Number::I(i))) {
            return Ok(k);
        }
    }
    if let Ok(f) = key.parse::<f64>() {
        if let Ok(k) = K::from_value(&Value::Num(Number::F(f))) {
            return Ok(k);
        }
    }
    Err(Error::custom(format!("cannot parse map key `{key}`")))
}

impl<K: Serialize, V: Serialize> Serialize for BTreeMap<K, V> {
    fn to_value(&self) -> Value {
        let mut entries = Vec::with_capacity(self.len());
        for (k, v) in self {
            let key = key_to_string(k.to_value()).expect("map key must serialize to a scalar");
            entries.push((key, v.to_value()));
        }
        Value::Object(entries)
    }
}

impl<K: Deserialize + Ord, V: Deserialize> Deserialize for BTreeMap<K, V> {
    fn from_value(value: &Value) -> Result<Self, Error> {
        let entries = value
            .as_object()
            .ok_or_else(|| Error::custom("expected object for map"))?;
        let mut map = BTreeMap::new();
        for (k, v) in entries {
            map.insert(key_from_string(k)?, V::from_value(v)?);
        }
        Ok(map)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn option_round_trip() {
        let some = Some(7u32).to_value();
        assert_eq!(Option::<u32>::from_value(&some).unwrap(), Some(7));
        assert_eq!(Option::<u32>::from_value(&Value::Null).unwrap(), None);
    }

    #[test]
    fn u64_precision_preserved() {
        let big = u64::MAX - 1;
        let v = big.to_value();
        assert_eq!(u64::from_value(&v).unwrap(), big);
    }

    #[test]
    fn negative_integers_round_trip() {
        let v = (-42i32).to_value();
        assert_eq!(i32::from_value(&v).unwrap(), -42);
        assert!(u32::from_value(&v).is_err());
    }

    #[test]
    fn integer_keyed_map_round_trips() {
        let mut map = BTreeMap::new();
        map.insert(3u32, "x".to_string());
        map.insert(11u32, "y".to_string());
        let v = map.to_value();
        let back: BTreeMap<u32, String> = Deserialize::from_value(&v).unwrap();
        assert_eq!(back, map);
    }

    #[test]
    fn de_field_reports_missing() {
        let obj = Value::Object(vec![("a".into(), Value::Bool(true))]);
        assert!(de_field::<bool>(&obj, "a").unwrap());
        assert!(de_field::<bool>(&obj, "b").is_err());
    }

    #[test]
    fn non_finite_floats_are_null() {
        assert_eq!(f64::NAN.to_value(), Value::Null);
        assert_eq!(f64::INFINITY.to_value(), Value::Null);
        assert!(f64::from_value(&Value::Null).is_err());
    }
}
