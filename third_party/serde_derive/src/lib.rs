//! Offline stand-in for `serde_derive`.
//!
//! The real `serde_derive` depends on `syn`/`quote`, which cannot be fetched
//! in this container, so this crate hand-parses the derive input token
//! stream and emits impls of the vendored `serde` stub's [`Serialize`] /
//! [`Deserialize`] traits (value-tree based, see `third_party/serde`).
//!
//! Supported shapes — exactly what the workspace uses:
//! - structs with named fields (`#[serde(skip)]` honored: skipped on
//!   serialize, `Default::default()` on deserialize)
//! - tuple structs (newtype structs serialize transparently as their inner
//!   value, matching serde; wider tuple structs as arrays)
//! - enums with unit variants (serialized as the variant-name string) and
//!   struct variants (externally tagged: `{"Variant": {fields...}}`)
//!
//! Generics, tuple enum variants, and serde attributes other than `skip`
//! are rejected with a compile-time panic rather than silently mishandled.

use proc_macro::{Delimiter, Group, TokenStream, TokenTree};

struct Field {
    name: String,
    skip: bool,
}

struct Variant {
    name: String,
    /// `None` for unit variants, `Some(fields)` for struct variants.
    fields: Option<Vec<Field>>,
}

enum Item {
    NamedStruct {
        name: String,
        fields: Vec<Field>,
    },
    TupleStruct {
        name: String,
        arity: usize,
    },
    Enum {
        name: String,
        variants: Vec<Variant>,
    },
}

impl Item {
    fn name(&self) -> &str {
        match self {
            Item::NamedStruct { name, .. }
            | Item::TupleStruct { name, .. }
            | Item::Enum { name, .. } => name,
        }
    }
}

/// Derives the vendored `serde::Serialize` (value-tree) trait.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    let body = match &item {
        Item::NamedStruct { fields, .. } => {
            let mut s = String::from(
                "let mut fields: ::std::vec::Vec<(::std::string::String, ::serde::Value)> = \
                 ::std::vec::Vec::new();\n",
            );
            for f in fields.iter().filter(|f| !f.skip) {
                s.push_str(&format!(
                    "fields.push((::std::string::String::from(\"{0}\"), \
                     ::serde::Serialize::to_value(&self.{0})));\n",
                    f.name
                ));
            }
            s.push_str("::serde::Value::Object(fields)");
            s
        }
        Item::TupleStruct { arity: 1, .. } => String::from("::serde::Serialize::to_value(&self.0)"),
        Item::TupleStruct { arity, .. } => {
            let mut s = String::from(
                "let mut items: ::std::vec::Vec<::serde::Value> = ::std::vec::Vec::new();\n",
            );
            for i in 0..*arity {
                s.push_str(&format!(
                    "items.push(::serde::Serialize::to_value(&self.{i}));\n"
                ));
            }
            s.push_str("::serde::Value::Array(items)");
            s
        }
        Item::Enum { name, variants } => {
            let mut s = String::from("match self {\n");
            for v in variants {
                match &v.fields {
                    None => s.push_str(&format!(
                        "{name}::{v} => ::serde::Value::Str(::std::string::String::from(\"{v}\")),\n",
                        v = v.name
                    )),
                    Some(fields) => {
                        let binders: Vec<&str> =
                            fields.iter().map(|f| f.name.as_str()).collect();
                        s.push_str(&format!(
                            "{name}::{v} {{ {b} }} => {{\n",
                            v = v.name,
                            b = binders.join(", ")
                        ));
                        s.push_str(
                            "let mut fields: ::std::vec::Vec<(::std::string::String, \
                             ::serde::Value)> = ::std::vec::Vec::new();\n",
                        );
                        for f in fields {
                            s.push_str(&format!(
                                "fields.push((::std::string::String::from(\"{0}\"), \
                                 ::serde::Serialize::to_value({0})));\n",
                                f.name
                            ));
                        }
                        s.push_str(&format!(
                            "let mut outer: ::std::vec::Vec<(::std::string::String, \
                             ::serde::Value)> = ::std::vec::Vec::new();\n\
                             outer.push((::std::string::String::from(\"{v}\"), \
                             ::serde::Value::Object(fields)));\n\
                             ::serde::Value::Object(outer)\n}},\n",
                            v = v.name
                        ));
                    }
                }
            }
            s.push('}');
            s
        }
    };
    let out = format!(
        "impl ::serde::Serialize for {} {{\n\
         fn to_value(&self) -> ::serde::Value {{\n{}\n}}\n}}\n",
        item.name(),
        body
    );
    out.parse()
        .expect("serde stub derive: generated Serialize impl failed to parse")
}

/// Derives the vendored `serde::Deserialize` (value-tree) trait.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    let body = match &item {
        Item::NamedStruct { fields, .. } => {
            let mut s = String::from("::std::result::Result::Ok(Self {\n");
            for f in fields {
                if f.skip {
                    s.push_str(&format!(
                        "{}: ::std::default::Default::default(),\n",
                        f.name
                    ));
                } else {
                    s.push_str(&format!(
                        "{0}: ::serde::de_field(value, \"{0}\")?,\n",
                        f.name
                    ));
                }
            }
            s.push_str("})");
            s
        }
        Item::TupleStruct { arity: 1, .. } => String::from(
            "::std::result::Result::Ok(Self(::serde::Deserialize::from_value(value)?))",
        ),
        Item::TupleStruct { name, arity } => {
            let mut s = format!(
                "let items = value.as_array().ok_or_else(|| \
                 ::serde::Error::custom(\"expected array for tuple struct {name}\"))?;\n\
                 if items.len() != {arity} {{\n\
                 return ::std::result::Result::Err(::serde::Error::custom(\
                 \"wrong tuple arity for {name}\"));\n}}\n\
                 ::std::result::Result::Ok(Self(\n"
            );
            for i in 0..*arity {
                s.push_str(&format!(
                    "::serde::Deserialize::from_value(&items[{i}])?,\n"
                ));
            }
            s.push_str("))");
            s
        }
        Item::Enum { name, variants } => {
            let mut s =
                String::from("match value {\n::serde::Value::Str(s) => match s.as_str() {\n");
            for v in variants.iter().filter(|v| v.fields.is_none()) {
                s.push_str(&format!(
                    "\"{v}\" => ::std::result::Result::Ok({name}::{v}),\n",
                    v = v.name
                ));
            }
            s.push_str(&format!(
                "other => ::std::result::Result::Err(::serde::Error::custom(\
                 format!(\"unknown {name} variant `{{other}}`\"))),\n}},\n"
            ));
            if variants.iter().any(|v| v.fields.is_some()) {
                s.push_str("::serde::Value::Object(entries) if entries.len() == 1 => {\n");
                s.push_str("let (tag, inner) = &entries[0];\nmatch tag.as_str() {\n");
                for v in variants.iter() {
                    if let Some(fields) = &v.fields {
                        s.push_str(&format!(
                            "\"{v}\" => ::std::result::Result::Ok({name}::{v} {{\n",
                            v = v.name
                        ));
                        for f in fields {
                            if f.skip {
                                s.push_str(&format!(
                                    "{}: ::std::default::Default::default(),\n",
                                    f.name
                                ));
                            } else {
                                s.push_str(&format!(
                                    "{0}: ::serde::de_field(inner, \"{0}\")?,\n",
                                    f.name
                                ));
                            }
                        }
                        s.push_str("}),\n");
                    }
                }
                s.push_str(&format!(
                    "other => ::std::result::Result::Err(::serde::Error::custom(\
                     format!(\"unknown {name} variant `{{other}}`\"))),\n}}\n}},\n"
                ));
            }
            s.push_str(&format!(
                "_ => ::std::result::Result::Err(::serde::Error::custom(\
                 \"expected string or single-key object for enum {name}\")),\n}}"
            ));
            s
        }
    };
    let out = format!(
        "impl ::serde::Deserialize for {} {{\n\
         fn from_value(value: &::serde::Value) -> \
         ::std::result::Result<Self, ::serde::Error> {{\n{}\n}}\n}}\n",
        item.name(),
        body
    );
    out.parse()
        .expect("serde stub derive: generated Deserialize impl failed to parse")
}

// ---------------------------------------------------------------------------
// Token-stream parsing
// ---------------------------------------------------------------------------

fn parse_item(input: TokenStream) -> Item {
    let tokens: Vec<TokenTree> = input.into_iter().collect();
    let mut i = 0;
    skip_attrs(&tokens, &mut i);
    skip_visibility(&tokens, &mut i);
    let kind = match tokens.get(i) {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => panic!("serde stub derive: expected `struct` or `enum`, got {other:?}"),
    };
    i += 1;
    let name = match tokens.get(i) {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => panic!("serde stub derive: expected type name, got {other:?}"),
    };
    i += 1;
    if let Some(TokenTree::Punct(p)) = tokens.get(i) {
        if p.as_char() == '<' {
            panic!("serde stub derive: generic types are not supported (type `{name}`)");
        }
    }
    match kind.as_str() {
        "struct" => match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => Item::NamedStruct {
                name,
                fields: parse_named_fields(g),
            },
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                Item::TupleStruct {
                    name,
                    arity: count_tuple_fields(g),
                }
            }
            _ => panic!("serde stub derive: unit structs are not supported (type `{name}`)"),
        },
        "enum" => match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => Item::Enum {
                name,
                variants: parse_variants(g),
            },
            other => panic!("serde stub derive: malformed enum body: {other:?}"),
        },
        other => panic!("serde stub derive: unsupported item kind `{other}`"),
    }
}

/// Advances `i` past any `#[...]` attribute groups, returning whether one of
/// them was `#[serde(skip)]`.
fn skip_attrs(tokens: &[TokenTree], i: &mut usize) -> bool {
    let mut skip = false;
    loop {
        match (tokens.get(*i), tokens.get(*i + 1)) {
            (Some(TokenTree::Punct(p)), Some(TokenTree::Group(g)))
                if p.as_char() == '#' && g.delimiter() == Delimiter::Bracket =>
            {
                if attr_is_serde_skip(g) {
                    skip = true;
                }
                *i += 2;
            }
            _ => return skip,
        }
    }
}

fn attr_is_serde_skip(attr: &Group) -> bool {
    let mut it = attr.stream().into_iter();
    match it.next() {
        Some(TokenTree::Ident(id)) if id.to_string() == "serde" => {}
        _ => return false,
    }
    match it.next() {
        Some(TokenTree::Group(inner)) => {
            let args: Vec<String> = inner.stream().into_iter().map(|t| t.to_string()).collect();
            if args.iter().any(|a| a == "skip") {
                true
            } else {
                panic!(
                    "serde stub derive: unsupported serde attribute `serde({})` — only \
                     `skip` is implemented",
                    args.join("")
                );
            }
        }
        _ => false,
    }
}

fn skip_visibility(tokens: &[TokenTree], i: &mut usize) {
    if let Some(TokenTree::Ident(id)) = tokens.get(*i) {
        if id.to_string() == "pub" {
            *i += 1;
            if let Some(TokenTree::Group(g)) = tokens.get(*i) {
                if g.delimiter() == Delimiter::Parenthesis {
                    *i += 1; // pub(crate) etc.
                }
            }
        }
    }
}

/// Advances `i` past a type expression, stopping at a top-level comma.
fn skip_type(tokens: &[TokenTree], i: &mut usize) {
    let mut angle_depth = 0i32;
    while *i < tokens.len() {
        if let TokenTree::Punct(p) = &tokens[*i] {
            match p.as_char() {
                '<' => angle_depth += 1,
                '>' => angle_depth -= 1,
                ',' if angle_depth == 0 => return,
                _ => {}
            }
        }
        *i += 1;
    }
}

fn parse_named_fields(group: &Group) -> Vec<Field> {
    let tokens: Vec<TokenTree> = group.stream().into_iter().collect();
    let mut i = 0;
    let mut fields = Vec::new();
    while i < tokens.len() {
        let skip = skip_attrs(&tokens, &mut i);
        skip_visibility(&tokens, &mut i);
        let name = match tokens.get(i) {
            Some(TokenTree::Ident(id)) => id.to_string(),
            other => panic!("serde stub derive: expected field name, got {other:?}"),
        };
        i += 1; // name
        i += 1; // ':'
        skip_type(&tokens, &mut i);
        if i < tokens.len() {
            i += 1; // ','
        }
        fields.push(Field { name, skip });
    }
    fields
}

fn count_tuple_fields(group: &Group) -> usize {
    let tokens: Vec<TokenTree> = group.stream().into_iter().collect();
    let mut i = 0;
    let mut arity = 0;
    while i < tokens.len() {
        skip_attrs(&tokens, &mut i);
        skip_visibility(&tokens, &mut i);
        if i >= tokens.len() {
            break; // trailing comma
        }
        skip_type(&tokens, &mut i);
        arity += 1;
        if i < tokens.len() {
            i += 1; // ','
        }
    }
    arity
}

fn parse_variants(group: &Group) -> Vec<Variant> {
    let tokens: Vec<TokenTree> = group.stream().into_iter().collect();
    let mut i = 0;
    let mut variants = Vec::new();
    while i < tokens.len() {
        skip_attrs(&tokens, &mut i);
        if i >= tokens.len() {
            break;
        }
        let name = match tokens.get(i) {
            Some(TokenTree::Ident(id)) => id.to_string(),
            other => panic!("serde stub derive: expected variant name, got {other:?}"),
        };
        i += 1;
        let fields = match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                i += 1;
                Some(parse_named_fields(g))
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                panic!(
                    "serde stub derive: tuple enum variant `{name}` is not supported — \
                     use a struct variant"
                );
            }
            _ => None,
        };
        if let Some(TokenTree::Punct(p)) = tokens.get(i) {
            if p.as_char() == '=' {
                panic!(
                    "serde stub derive: explicit discriminants are not supported \
                     (variant `{name}`)"
                );
            }
            if p.as_char() == ',' {
                i += 1;
            }
        }
        variants.push(Variant { name, fields });
    }
    variants
}
