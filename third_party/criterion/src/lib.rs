//! Offline stand-in for the `criterion` crate.
//!
//! Provides just enough surface for `cargo bench` targets to compile and run
//! in a container without network access: [`Criterion::bench_function`],
//! [`Bencher::iter`], and the [`criterion_group!`]/[`criterion_main!`]
//! macros. Instead of criterion's statistical sampling it runs each closure
//! a small fixed number of iterations and prints the mean wall-clock time —
//! a smoke-test harness, not a measurement-grade one.

use std::time::Instant;

/// The measurement one [`Criterion::bench_function`] call produced.
#[derive(Debug, Clone, PartialEq)]
pub struct BenchResult {
    /// The benchmark id.
    pub id: String,
    /// Mean wall-clock nanoseconds per iteration.
    pub mean_nanos: f64,
    /// Iterations timed.
    pub iterations: u32,
}

/// Benchmark driver, mirroring `criterion::Criterion`.
pub struct Criterion {
    iterations: u32,
    results: Vec<BenchResult>,
}

impl Default for Criterion {
    fn default() -> Self {
        Self {
            iterations: 10,
            results: Vec::new(),
        }
    }
}

impl Criterion {
    /// Overrides the fixed iteration count (smoke profiles use 1–2).
    pub fn with_iterations(mut self, iterations: u32) -> Self {
        self.iterations = iterations.max(1);
        self
    }

    /// Runs `f` once with a [`Bencher`], prints the mean iteration time,
    /// and records a [`BenchResult`].
    pub fn bench_function<F>(&mut self, id: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut bencher = Bencher {
            iterations: self.iterations,
            mean_nanos: 0.0,
        };
        f(&mut bencher);
        println!(
            "bench {id:<40} {:>12.1} ns/iter ({} iters)",
            bencher.mean_nanos, self.iterations
        );
        self.results.push(BenchResult {
            id: id.to_string(),
            mean_nanos: bencher.mean_nanos,
            iterations: self.iterations,
        });
        self
    }

    /// Every result recorded so far, in run order.
    pub fn results(&self) -> &[BenchResult] {
        &self.results
    }
}

/// Timing loop handle passed to benchmark closures.
pub struct Bencher {
    iterations: u32,
    mean_nanos: f64,
}

impl Bencher {
    /// Times `routine` over a fixed number of iterations.
    pub fn iter<O, R>(&mut self, mut routine: R)
    where
        R: FnMut() -> O,
    {
        let start = Instant::now();
        for _ in 0..self.iterations {
            std::hint::black_box(routine());
        }
        let elapsed = start.elapsed();
        self.mean_nanos = elapsed.as_nanos() as f64 / self.iterations.max(1) as f64;
    }
}

/// Declares a function that runs the listed benchmark targets.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Declares the benchmark binary's `main`, running each group.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_runs_closure() {
        let mut c = Criterion::default();
        let mut ran = false;
        c.bench_function("noop", |b| {
            ran = true;
            b.iter(|| 1 + 1);
        });
        assert!(ran);
    }

    #[test]
    fn results_are_collected_in_run_order() {
        let mut c = Criterion::default().with_iterations(2);
        c.bench_function("first", |b| b.iter(|| 1 + 1))
            .bench_function("second", |b| b.iter(|| 2 + 2));
        let ids: Vec<&str> = c.results().iter().map(|r| r.id.as_str()).collect();
        assert_eq!(ids, vec!["first", "second"]);
        assert!(c.results().iter().all(|r| r.iterations == 2));
    }
}
