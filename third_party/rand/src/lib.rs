//! Offline stand-in for the `rand` crate.
//!
//! This container builds without network access, so the workspace vendors a
//! minimal API-compatible subset of `rand` 0.8: the [`RngCore`] trait (which
//! `zeiot_core::rng::SeedRng` implements for interoperability) and the
//! [`Error`] type referenced by `try_fill_bytes`. Nothing else from `rand`
//! is used anywhere in the workspace.

use std::fmt;

/// Core random-number generation trait, mirroring `rand::RngCore`.
pub trait RngCore {
    /// The next `u32` from the stream.
    fn next_u32(&mut self) -> u32;

    /// The next `u64` from the stream.
    fn next_u64(&mut self) -> u64;

    /// Fills `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]);

    /// Fallible variant of [`RngCore::fill_bytes`]; infallible for every
    /// generator in this workspace.
    fn try_fill_bytes(&mut self, dest: &mut [u8]) -> Result<(), Error> {
        self.fill_bytes(dest);
        Ok(())
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }

    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }

    fn fill_bytes(&mut self, dest: &mut [u8]) {
        (**self).fill_bytes(dest)
    }

    fn try_fill_bytes(&mut self, dest: &mut [u8]) -> Result<(), Error> {
        (**self).try_fill_bytes(dest)
    }
}

/// Error type for fallible RNG operations, mirroring `rand::Error`.
#[derive(Debug)]
pub struct Error {
    msg: &'static str,
}

impl Error {
    /// Creates an error with a static message.
    pub fn new(msg: &'static str) -> Self {
        Self { msg }
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "rng error: {}", self.msg)
    }
}

impl std::error::Error for Error {}

#[cfg(test)]
mod tests {
    use super::*;

    struct Counting(u32);

    impl RngCore for Counting {
        fn next_u32(&mut self) -> u32 {
            self.0 = self.0.wrapping_add(1);
            self.0
        }

        fn next_u64(&mut self) -> u64 {
            let hi = self.next_u32() as u64;
            let lo = self.next_u32() as u64;
            (hi << 32) | lo
        }

        fn fill_bytes(&mut self, dest: &mut [u8]) {
            for chunk in dest.chunks_mut(4) {
                let bytes = self.next_u32().to_le_bytes();
                chunk.copy_from_slice(&bytes[..chunk.len()]);
            }
        }
    }

    #[test]
    fn default_try_fill_bytes_delegates() {
        let mut rng = Counting(0);
        let mut buf = [0u8; 5];
        rng.try_fill_bytes(&mut buf).unwrap();
        assert!(buf.iter().any(|&b| b != 0));
    }

    #[test]
    fn mut_ref_forwarding() {
        let mut rng = Counting(0);
        let r = &mut rng;
        fn takes_rng<R: RngCore>(mut r: R) -> u32 {
            r.next_u32()
        }
        assert_eq!(takes_rng(r), 1);
    }
}
