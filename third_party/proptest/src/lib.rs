//! Offline stand-in for the `proptest` crate.
//!
//! Implements the subset of proptest the workspace's property tests use:
//! the [`proptest!`] macro over `ident in strategy` arguments,
//! [`ProptestConfig::with_cases`], range/tuple/vec/bool strategies, and the
//! `prop_assert*` macros. Cases are generated from a deterministic
//! per-test RNG (seeded from the test name), so failures reproduce exactly;
//! there is no shrinking — a failing case panics with the assert message.

use std::ops::{Range, RangeInclusive};

/// Configuration accepted by `#![proptest_config(...)]`.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of random cases each property runs.
    pub cases: u32,
}

impl ProptestConfig {
    /// A config running `cases` random cases per property.
    pub fn with_cases(cases: u32) -> Self {
        Self { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        Self { cases: 64 }
    }
}

/// Deterministic generator used to produce test cases (xorshift64*).
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Seeds the generator from a test name (FNV-1a over the bytes).
    pub fn from_name(name: &str) -> Self {
        let mut hash: u64 = 0xcbf29ce484222325;
        for &b in name.as_bytes() {
            hash ^= b as u64;
            hash = hash.wrapping_mul(0x100000001b3);
        }
        Self {
            state: hash | 1, // xorshift state must be non-zero
        }
    }

    /// The next raw `u64`.
    pub fn next_u64(&mut self) -> u64 {
        let mut x = self.state;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.state = x;
        x.wrapping_mul(0x2545F4914F6CDD1D)
    }

    /// A uniform `f64` in `[0, 1)`.
    pub fn next_unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / 9007199254740992.0)
    }
}

/// A source of random values of one type. Mirrors `proptest::strategy::
/// Strategy` in role; generation is direct (no value trees or shrinking).
pub trait Strategy {
    /// The type of values this strategy produces.
    type Value;

    /// Generates one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;
}

macro_rules! int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let width = (self.end as i128 - self.start as i128) as u128;
                let offset = (rng.next_u64() as u128) % width;
                (self.start as i128 + offset as i128) as $t
            }
        }

        impl Strategy for RangeInclusive<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "empty range strategy");
                let width = (end as i128 - start as i128) as u128 + 1;
                let offset = (rng.next_u64() as u128) % width;
                (start as i128 + offset as i128) as $t
            }
        }
    )*};
}

int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! float_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let u = rng.next_unit_f64() as $t;
                self.start + u * (self.end - self.start)
            }
        }
    )*};
}

float_range_strategy!(f32, f64);

macro_rules! tuple_strategy {
    ($(($($name:ident : $idx:tt),+)),+ $(,)?) => {$(
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);

            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    )+};
}

tuple_strategy! {
    (A: 0, B: 1),
    (A: 0, B: 1, C: 2),
    (A: 0, B: 1, C: 2, D: 3),
}

/// Collection strategies (`proptest::collection::vec`).
pub mod collection {
    use super::{Strategy, TestRng};
    use std::ops::Range;

    /// Strategy producing `Vec`s with lengths drawn from `sizes`.
    pub struct VecStrategy<S> {
        element: S,
        sizes: Range<usize>,
    }

    /// Generates vectors whose elements come from `element` and whose
    /// length is uniform in `sizes`.
    pub fn vec<S: Strategy>(element: S, sizes: Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, sizes }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            let len = self.sizes.generate(rng);
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// Boolean strategies (`proptest::bool::ANY`).
pub mod bool {
    use super::{Strategy, TestRng};

    /// Strategy producing uniformly random booleans.
    #[derive(Debug, Clone, Copy)]
    pub struct Any;

    /// Uniformly random booleans.
    pub const ANY: Any = Any;

    impl Strategy for Any {
        type Value = bool;

        fn generate(&self, rng: &mut TestRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }
}

/// The conventional glob import for proptest users.
pub mod prelude {
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, proptest, ProptestConfig, Strategy,
    };
}

/// Declares property tests: each `#[test] fn name(arg in strategy, ...)`
/// body runs `cases` times over deterministically generated inputs.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { cfg = $cfg; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { cfg = $crate::ProptestConfig::default(); $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (cfg = $cfg:expr; $(
        $(#[$meta:meta])*
        fn $name:ident ( $( $arg:ident in $strat:expr ),+ $(,)? ) $body:block
    )*) => {$(
        $(#[$meta])*
        fn $name() {
            let config: $crate::ProptestConfig = $cfg;
            let mut rng = $crate::TestRng::from_name(stringify!($name));
            for _ in 0..config.cases {
                $( let $arg = $crate::Strategy::generate(&($strat), &mut rng); )+
                $body
            }
        }
    )*};
}

/// Asserts a property holds; panics with the failing condition otherwise.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => { assert!($cond) };
    ($cond:expr, $($fmt:tt)+) => { assert!($cond, $($fmt)+) };
}

/// Asserts two expressions are equal.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr) => { assert_eq!($left, $right) };
    ($left:expr, $right:expr, $($fmt:tt)+) => { assert_eq!($left, $right, $($fmt)+) };
}

/// Asserts two expressions are unequal.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr) => { assert_ne!($left, $right) };
    ($left:expr, $right:expr, $($fmt:tt)+) => { assert_ne!($left, $right, $($fmt)+) };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn int_range_stays_in_bounds() {
        let mut rng = TestRng::from_name("bounds");
        let strat = 3u64..17;
        for _ in 0..1000 {
            let v = strat.generate(&mut rng);
            assert!((3..17).contains(&v));
        }
    }

    #[test]
    fn float_range_stays_in_bounds() {
        let mut rng = TestRng::from_name("floats");
        let strat = -2.0f64..5.0;
        for _ in 0..1000 {
            let v = strat.generate(&mut rng);
            assert!((-2.0..5.0).contains(&v));
        }
    }

    #[test]
    fn vec_lengths_respect_sizes() {
        let mut rng = TestRng::from_name("vecs");
        let strat = collection::vec(0u8..10, 2..6);
        for _ in 0..200 {
            let v = strat.generate(&mut rng);
            assert!((2..6).contains(&v.len()));
            assert!(v.iter().all(|&x| x < 10));
        }
    }

    #[test]
    fn generation_is_deterministic_per_name() {
        let mut a = TestRng::from_name("same");
        let mut b = TestRng::from_name("same");
        for _ in 0..64 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(8))]

        #[test]
        fn macro_generates_cases(x in 0u32..100, flag in crate::bool::ANY) {
            prop_assert!(x < 100);
            let _ = flag;
        }
    }
}
