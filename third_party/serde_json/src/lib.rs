//! Offline stand-in for the `serde_json` crate.
//!
//! Renders and parses JSON text over the vendored `serde` stub's
//! [`Value`](serde::Value) tree. Supports the workspace's surface:
//! [`to_string`], [`to_string_pretty`], and [`from_str`]. The emitter
//! produces standard JSON (strings escaped per RFC 8259, non-finite floats
//! as `null`); the parser accepts standard JSON including `\uXXXX` escapes
//! and surrogate pairs, and rejects trailing garbage.

use serde::{Number, Value};
use std::fmt;

/// JSON serialization/parse error.
#[derive(Debug, Clone)]
pub struct Error {
    msg: String,
}

impl Error {
    fn new(msg: impl Into<String>) -> Self {
        Self { msg: msg.into() }
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.msg)
    }
}

impl std::error::Error for Error {}

/// Result alias matching `serde_json::Result`.
pub type Result<T> = std::result::Result<T, Error>;

/// Serializes `value` as compact JSON.
pub fn to_string<T: serde::Serialize + ?Sized>(value: &T) -> Result<String> {
    let mut out = String::new();
    write_value(&value.to_value(), &mut out, None, 0);
    Ok(out)
}

/// Serializes `value` as two-space-indented JSON.
pub fn to_string_pretty<T: serde::Serialize + ?Sized>(value: &T) -> Result<String> {
    let mut out = String::new();
    write_value(&value.to_value(), &mut out, Some(2), 0);
    Ok(out)
}

/// Parses a value of type `T` from JSON text.
pub fn from_str<T: serde::Deserialize>(s: &str) -> Result<T> {
    let value = parse_value_complete(s)?;
    T::from_value(&value).map_err(|e| Error::new(e.to_string()))
}

// ---------------------------------------------------------------------------
// Emitter
// ---------------------------------------------------------------------------

fn write_value(value: &Value, out: &mut String, indent: Option<usize>, depth: usize) {
    match value {
        Value::Null => out.push_str("null"),
        Value::Bool(true) => out.push_str("true"),
        Value::Bool(false) => out.push_str("false"),
        Value::Num(n) => write_number(*n, out),
        Value::Str(s) => write_string(s, out),
        Value::Array(items) => {
            if items.is_empty() {
                out.push_str("[]");
                return;
            }
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_newline_indent(out, indent, depth + 1);
                write_value(item, out, indent, depth + 1);
            }
            write_newline_indent(out, indent, depth);
            out.push(']');
        }
        Value::Object(entries) => {
            if entries.is_empty() {
                out.push_str("{}");
                return;
            }
            out.push('{');
            for (i, (key, item)) in entries.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_newline_indent(out, indent, depth + 1);
                write_string(key, out);
                out.push(':');
                if indent.is_some() {
                    out.push(' ');
                }
                write_value(item, out, indent, depth + 1);
            }
            write_newline_indent(out, indent, depth);
            out.push('}');
        }
    }
}

fn write_newline_indent(out: &mut String, indent: Option<usize>, depth: usize) {
    if let Some(width) = indent {
        out.push('\n');
        for _ in 0..width * depth {
            out.push(' ');
        }
    }
}

fn write_number(n: Number, out: &mut String) {
    match n {
        Number::U(u) => out.push_str(&u.to_string()),
        Number::I(i) => out.push_str(&i.to_string()),
        Number::F(f) if f.is_finite() => {
            // Round-trippable float formatting: Rust's Display for f64 is
            // shortest-representation, which JSON parsers read back exactly.
            let mut s = f.to_string();
            if !s.contains('.') && !s.contains('e') && !s.contains('E') {
                s.push_str(".0");
            }
            out.push_str(&s);
        }
        Number::F(_) => out.push_str("null"),
    }
}

fn write_string(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            '\u{08}' => out.push_str("\\b"),
            '\u{0c}' => out.push_str("\\f"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

// ---------------------------------------------------------------------------
// Parser
// ---------------------------------------------------------------------------

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

fn parse_value_complete(s: &str) -> Result<Value> {
    let mut p = Parser {
        bytes: s.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let value = p.parse_value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(Error::new(format!("trailing characters at byte {}", p.pos)));
    }
    Ok(value)
}

impl<'a> Parser<'a> {
    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if b == b' ' || b == b'\t' || b == b'\n' || b == b'\r' {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<()> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(Error::new(format!(
                "expected `{}` at byte {}",
                b as char, self.pos
            )))
        }
    }

    fn eat_keyword(&mut self, word: &str) -> bool {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            true
        } else {
            false
        }
    }

    fn parse_value(&mut self) -> Result<Value> {
        match self.peek() {
            Some(b'n') if self.eat_keyword("null") => Ok(Value::Null),
            Some(b't') if self.eat_keyword("true") => Ok(Value::Bool(true)),
            Some(b'f') if self.eat_keyword("false") => Ok(Value::Bool(false)),
            Some(b'"') => self.parse_string().map(Value::Str),
            Some(b'[') => self.parse_array(),
            Some(b'{') => self.parse_object(),
            Some(b) if b == b'-' || b.is_ascii_digit() => self.parse_number(),
            Some(b) => Err(Error::new(format!(
                "unexpected byte `{}` at {}",
                b as char, self.pos
            ))),
            None => Err(Error::new("unexpected end of input")),
        }
    }

    fn parse_array(&mut self) -> Result<Value> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.parse_value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                _ => {
                    return Err(Error::new(format!(
                        "expected `,` or `]` at byte {}",
                        self.pos
                    )))
                }
            }
        }
    }

    fn parse_object(&mut self) -> Result<Value> {
        self.expect(b'{')?;
        let mut entries = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Object(entries));
        }
        loop {
            self.skip_ws();
            let key = self.parse_string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.parse_value()?;
            entries.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Object(entries));
                }
                _ => {
                    return Err(Error::new(format!(
                        "expected `,` or `}}` at byte {}",
                        self.pos
                    )))
                }
            }
        }
    }

    fn parse_string(&mut self) -> Result<String> {
        self.expect(b'"')?;
        let mut s = String::new();
        loop {
            let start = self.pos;
            // Fast path: copy a run of plain UTF-8 bytes.
            while let Some(&b) = self.bytes.get(self.pos) {
                if b == b'"' || b == b'\\' || b < 0x20 {
                    break;
                }
                self.pos += 1;
            }
            if self.pos > start {
                let chunk = std::str::from_utf8(&self.bytes[start..self.pos])
                    .map_err(|_| Error::new("invalid UTF-8 in string"))?;
                s.push_str(chunk);
            }
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(s);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    s.push(self.parse_escape()?);
                }
                Some(_) => return Err(Error::new("control character in string")),
                None => return Err(Error::new("unterminated string")),
            }
        }
    }

    fn parse_escape(&mut self) -> Result<char> {
        let b = self
            .peek()
            .ok_or_else(|| Error::new("unterminated escape"))?;
        self.pos += 1;
        Ok(match b {
            b'"' => '"',
            b'\\' => '\\',
            b'/' => '/',
            b'b' => '\u{08}',
            b'f' => '\u{0c}',
            b'n' => '\n',
            b'r' => '\r',
            b't' => '\t',
            b'u' => {
                let hi = self.parse_hex4()?;
                if (0xD800..0xDC00).contains(&hi) {
                    // High surrogate: require a following \uXXXX low half.
                    if !self.eat_keyword("\\u") {
                        return Err(Error::new("unpaired surrogate"));
                    }
                    let lo = self.parse_hex4()?;
                    if !(0xDC00..0xE000).contains(&lo) {
                        return Err(Error::new("invalid low surrogate"));
                    }
                    let code = 0x10000 + ((hi - 0xD800) << 10) + (lo - 0xDC00);
                    char::from_u32(code).ok_or_else(|| Error::new("invalid surrogate pair"))?
                } else {
                    char::from_u32(hi).ok_or_else(|| Error::new("invalid \\u escape"))?
                }
            }
            other => return Err(Error::new(format!("invalid escape `\\{}`", other as char))),
        })
    }

    fn parse_hex4(&mut self) -> Result<u32> {
        let end = self.pos + 4;
        if end > self.bytes.len() {
            return Err(Error::new("truncated \\u escape"));
        }
        let hex = std::str::from_utf8(&self.bytes[self.pos..end])
            .map_err(|_| Error::new("invalid \\u escape"))?;
        let code = u32::from_str_radix(hex, 16).map_err(|_| Error::new("invalid \\u escape"))?;
        self.pos = end;
        Ok(code)
    }

    fn parse_number(&mut self) -> Result<Value> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(b) = self.peek() {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| Error::new("invalid number"))?;
        if !is_float {
            if let Ok(u) = text.parse::<u64>() {
                return Ok(Value::Num(Number::U(u)));
            }
            if let Ok(i) = text.parse::<i64>() {
                return Ok(Value::Num(Number::I(i)));
            }
        }
        text.parse::<f64>()
            .map(|f| Value::Num(Number::F(f)))
            .map_err(|_| Error::new(format!("invalid number `{text}`")))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalar_round_trips() {
        assert_eq!(to_string(&42u64).unwrap(), "42");
        assert_eq!(to_string(&-3i32).unwrap(), "-3");
        assert_eq!(to_string(&true).unwrap(), "true");
        assert_eq!(to_string(&1.5f64).unwrap(), "1.5");
        assert_eq!(from_str::<u64>("42").unwrap(), 42);
        assert_eq!(from_str::<f64>("2.5e3").unwrap(), 2500.0);
    }

    #[test]
    fn whole_floats_keep_decimal_point() {
        assert_eq!(to_string(&3.0f64).unwrap(), "3.0");
        assert_eq!(from_str::<f64>("3.0").unwrap(), 3.0);
    }

    #[test]
    fn string_escapes_round_trip() {
        let s = "line\n\"quoted\"\tüñíçødé \\ end".to_string();
        let json = to_string(&s).unwrap();
        assert_eq!(from_str::<String>(&json).unwrap(), s);
    }

    #[test]
    fn unicode_escape_parses() {
        assert_eq!(from_str::<String>(r#""A😀""#).unwrap(), "A😀");
    }

    #[test]
    fn vec_round_trips() {
        let v = vec![1u32, 2, 3];
        let json = to_string(&v).unwrap();
        assert_eq!(json, "[1,2,3]");
        assert_eq!(from_str::<Vec<u32>>(&json).unwrap(), v);
    }

    #[test]
    fn pretty_output_is_indented_and_parses() {
        let v = vec![vec![1u8], vec![2, 3]];
        let pretty = to_string_pretty(&v).unwrap();
        assert!(pretty.contains('\n'));
        assert_eq!(from_str::<Vec<Vec<u8>>>(&pretty).unwrap(), v);
    }

    #[test]
    fn trailing_garbage_rejected() {
        assert!(from_str::<u64>("42 junk").is_err());
        assert!(from_str::<Vec<u32>>("[1,2,]").is_err());
        assert!(from_str::<bool>("truex").is_err());
    }

    #[test]
    fn large_u64_survives() {
        let big = u64::MAX;
        let json = to_string(&big).unwrap();
        assert_eq!(from_str::<u64>(&json).unwrap(), big);
    }
}
