//! Offline stand-in for the `rayon` crate.
//!
//! This container builds without network access, so the workspace vendors a
//! minimal API-compatible subset of `rayon` 1.x backed by `std::thread`
//! scoped threads: [`join`], [`scope`] / [`Scope::spawn`], and
//! [`current_num_threads`]. That is the entire surface zeiot uses — the
//! bench `SweepRunner` and MicroDeep's parallel candidate scoring build
//! their deterministic fan-out/fan-in loops on top of these primitives,
//! so swapping in the real work-stealing `rayon` is a one-line
//! `Cargo.toml` change with no call-site edits.
//!
//! Unlike the real crate there is no persistent worker pool: each
//! [`scope`] spawns fresh OS threads. For the coarse-grained work zeiot
//! parallelizes (whole sweep points, whole candidate batches) the spawn
//! cost is noise; callers that might be handed fine-grained work gate on
//! batch size before fanning out.

use std::num::NonZeroUsize;

/// The number of threads the host can usefully run in parallel, mirroring
/// `rayon::current_num_threads` (the stub has no pool, so this is
/// [`std::thread::available_parallelism`] with a fallback of 1).
pub fn current_num_threads() -> usize {
    std::thread::available_parallelism()
        .map(NonZeroUsize::get)
        .unwrap_or(1)
}

/// Runs both closures, potentially in parallel, and returns both results,
/// mirroring `rayon::join`. `b` runs on a freshly spawned scoped thread
/// while `a` runs on the caller's thread.
pub fn join<A, B, RA, RB>(a: A, b: B) -> (RA, RB)
where
    A: FnOnce() -> RA,
    B: FnOnce() -> RB + Send,
    RA: Send,
    RB: Send,
{
    std::thread::scope(|s| {
        let handle = s.spawn(b);
        let ra = a();
        let rb = handle.join().expect("joined closure panicked");
        (ra, rb)
    })
}

/// A scope in which tasks can be spawned that borrow from the enclosing
/// stack frame, mirroring `rayon::Scope`.
pub struct Scope<'scope, 'env: 'scope> {
    inner: &'scope std::thread::Scope<'scope, 'env>,
}

impl<'scope, 'env> Scope<'scope, 'env> {
    /// Spawns a task into the scope, mirroring `rayon::Scope::spawn`.
    /// The task receives the scope again so it can spawn further tasks.
    pub fn spawn<F>(&self, f: F)
    where
        F: FnOnce(&Scope<'scope, 'env>) + Send + 'scope,
    {
        let inner = self.inner;
        inner.spawn(move || f(&Scope { inner }));
    }
}

/// Creates a scope, runs `f` inside it, and blocks until every task
/// spawned into the scope has finished, mirroring `rayon::scope`.
pub fn scope<'env, F, R>(f: F) -> R
where
    F: for<'scope> FnOnce(&Scope<'scope, 'env>) -> R,
{
    std::thread::scope(|s| f(&Scope { inner: s }))
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn join_returns_both_results() {
        let (a, b) = join(|| 2 + 2, || "ok".to_owned());
        assert_eq!(a, 4);
        assert_eq!(b, "ok");
    }

    #[test]
    fn scope_runs_every_spawned_task() {
        let counter = AtomicUsize::new(0);
        scope(|s| {
            for _ in 0..8 {
                s.spawn(|_| {
                    counter.fetch_add(1, Ordering::Relaxed);
                });
            }
        });
        assert_eq!(counter.load(Ordering::Relaxed), 8);
    }

    #[test]
    fn scope_tasks_can_spawn_nested_tasks() {
        let counter = AtomicUsize::new(0);
        scope(|s| {
            s.spawn(|s| {
                counter.fetch_add(1, Ordering::Relaxed);
                s.spawn(|_| {
                    counter.fetch_add(10, Ordering::Relaxed);
                });
            });
        });
        assert_eq!(counter.load(Ordering::Relaxed), 11);
    }

    #[test]
    fn scope_tasks_borrow_the_enclosing_frame() {
        let data = vec![1u64, 2, 3, 4];
        let mut out = vec![0u64; data.len()];
        scope(|s| {
            for (slot, &x) in out.iter_mut().zip(&data) {
                s.spawn(move |_| *slot = x * x);
            }
        });
        assert_eq!(out, vec![1, 4, 9, 16]);
    }

    #[test]
    fn current_num_threads_is_positive() {
        assert!(current_num_threads() >= 1);
    }
}
