//! # zeiot — zero-energy IoT context recognition
//!
//! A comprehensive Rust reproduction of *"Context Recognition of Humans
//! and Objects by Distributed Zero-Energy IoT Devices"* (Higashino,
//! Uchiyama, Saruwatari, Yamaguchi, Watanabe — IEEE ICDCS 2019).
//!
//! This facade crate re-exports the whole workspace:
//!
//! | Module | Crate | Contents |
//! |---|---|---|
//! | [`core`] | `zeiot-core` | ids, geometry, units, time, deterministic RNG |
//! | [`sim`] | `zeiot-sim` | discrete-event simulation kernel + metrics |
//! | [`rf`] | `zeiot-rf` | path loss, fading, noise, BER/PER, link budgets, body shadowing |
//! | [`energy`] | `zeiot-energy` | harvesters, capacitor store, power profiles, intermittent execution |
//! | [`backscatter`] | `zeiot-backscatter` | backscatter PHY, cycle registry, coexistence MAC |
//! | [`net`] | `zeiot-net` | WSN topologies, routing, traffic accounting, synchronized flooding, RSSI sampling |
//! | [`nn`] | `zeiot-nn` | tensors, CNN layers with backprop, training, unit-graph topology |
//! | [`microdeep`] | `zeiot-microdeep` | **the paper's contribution**: distributed CNN assignment, cost model, independent-update training, resilience |
//! | [`fault`] | `zeiot-fault` | deterministic fault injection: lossy links, brownout windows, corruption, recovery policies |
//! | [`serve`] | `zeiot-serve` | multi-tenant inference serving: sharded EDF queues, micro-batching, admission control, degraded-mode fallback |
//! | [`sensing`] | `zeiot-sensing` | train congestion/positioning, people counting, CSI localization, PEM, sociograms, trajectories |
//! | [`plan`] | `zeiot-plan` | design-support planner: collection trees, TDMA schedules, failure replanning |
//! | [`data`] | `zeiot-data` | synthetic datasets standing in for the paper's hardware captures |
//! | [`obs`] | `zeiot-obs` | observability: labeled metrics recorder, engine probe, tracing, JSONL export |
//!
//! # Quickstart
//!
//! ```
//! use zeiot::microdeep::{Assignment, CnnConfig, CostModel};
//! use zeiot::net::Topology;
//!
//! # fn main() -> Result<(), zeiot::core::ConfigError> {
//! // The motion-experiment CNN on a 4×4 sensor mesh.
//! let config = CnnConfig::new(1, 8, 8, 4, 3, 2, 16, 2)?;
//! let graph = config.unit_graph()?;
//! let topo = Topology::grid(4, 4, 2.0, 3.0)?;
//!
//! let central = Assignment::centralized(&graph, &topo);
//! let microdeep = Assignment::balanced_correspondence(&graph, &topo);
//!
//! let cost = CostModel::new(&topo);
//! let peak_ratio = cost.peak_cost_ratio(&graph, &microdeep, &central).expect("baseline has traffic");
//! assert!(peak_ratio < 1.0); // MicroDeep flattens the hottest node
//! # Ok(())
//! # }
//! ```
//!
//! See `examples/` for runnable end-to-end scenarios and `crates/bench`
//! for the harnesses regenerating every quantitative result in the
//! paper (EXPERIMENTS.md maps them).

pub use zeiot_backscatter as backscatter;
pub use zeiot_core as core;
pub use zeiot_data as data;
pub use zeiot_energy as energy;
pub use zeiot_fault as fault;
pub use zeiot_microdeep as microdeep;
pub use zeiot_net as net;
pub use zeiot_nn as nn;
pub use zeiot_obs as obs;
pub use zeiot_plan as plan;
pub use zeiot_rf as rf;
pub use zeiot_sensing as sensing;
pub use zeiot_serve as serve;
pub use zeiot_sim as sim;
